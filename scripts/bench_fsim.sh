#!/usr/bin/env bash
# Benchmarks the parallel fault-simulation engine.
#
# 1. Runs the repo's static-quality gate (scripts/check.sh: fmt, clippy
#    with warnings denied, tests).
# 2. Runs the `fsim` criterion bench (reference vs engine at several
#    thread counts).
# 3. Runs the `bench_fsim` binary, which writes machine-readable timings
#    (patterns/sec, speedup vs threads=1, speedup vs the unpruned
#    reference) to BENCH_fsim.json at the repo root.
#
# Usage: scripts/bench_fsim.sh
set -u
cd "$(dirname "$0")/.."

scripts/check.sh || exit 1

echo "== criterion bench: fsim =="
cargo bench -p warpstl-bench --bench fsim

echo "== BENCH_fsim.json =="
cargo run --release -q -p warpstl-bench --bin bench_fsim || exit 1

# A single-core host cannot exercise the multi-thread configurations;
# bench_fsim records that in the JSON — surface it loudly so nobody reads
# the thread-scaling rows as a measurement.
if grep -q '"threading_untested": true' BENCH_fsim.json; then
    echo "WARNING: single-core host — every multi-thread configuration was" >&2
    echo "WARNING: skipped; BENCH_fsim.json thread-scaling rows are untested." >&2
fi
