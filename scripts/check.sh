#!/usr/bin/env bash
# The repo's static-quality gate: formatting, lints (warnings denied), and
# the full test suite. CI and the bench scripts call this before anything
# expensive; run it locally before pushing.
#
# Usage: scripts/check.sh
set -u
cd "$(dirname "$0")/.."

echo "== rustfmt (check) =="
cargo fmt --all -- --check || exit 1

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings || exit 1

echo "== tests =="
cargo test -q || exit 1

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q || exit 1

echo "== trace-out smoke test =="
# End-to-end observability check: compact a small PTP with --trace-out and
# validate that the emitted file is real JSON with one complete span per
# pipeline stage (plus the fault-engine worker spans).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -q --release -p warpstl-cli -- generate IMM --sb-count 4 \
    --out "$SMOKE_DIR/imm.ptp" || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --trace-out "$SMOKE_DIR/trace.json" >/dev/null || exit 1
python3 - "$SMOKE_DIR/trace.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
complete = [e["name"] for e in events if e.get("ph") == "X"]
stages = ["stage.analyze", "stage.trace", "stage.fsim", "stage.label",
          "stage.reduce", "stage.verify", "stage.eval"]
for stage in stages:
    n = complete.count(stage)
    assert n == 1, f"expected exactly one {stage} span, found {n}"
assert complete.count("fsim.worker") >= 1, "missing fsim.worker spans"
assert "warpstlMetrics" in trace, "missing embedded metrics"
print(f"trace OK: {len(events)} events, all {len(stages)} stage spans present")
EOF

echo "== netlist analyzer smoke test =="
# The analyze command must produce valid JSON for a healthy bundled module
# and exit nonzero on the seeded combinational-loop fixture.
cargo run -q --release -p warpstl-cli -- analyze decoder_unit --json \
    > "$SMOKE_DIR/analyze.json" || exit 1
python3 - "$SMOKE_DIR/analyze.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["errors"] == 0, f"decoder_unit should lint clean: {report}"
print(f"analyze OK: {report['netlist']}, {report['gates']} gates, 0 errors")
EOF
if cargo run -q --release -p warpstl-cli -- analyze comb-loop >/dev/null 2>&1; then
    echo "analyze comb-loop should have exited nonzero" >&2
    exit 1
fi
echo "analyze comb-loop: nonzero exit as expected"

echo "== artifact-cache smoke test =="
# Cold run populates the cache, warm run must hit it (the cache summary
# line reports >= 1 hit) and reproduce the report JSON byte-for-byte; the
# cache subcommands must agree the entries are intact.
CACHE_DIR="$SMOKE_DIR/cache"
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --cache-dir "$CACHE_DIR" --json "$SMOKE_DIR/r1.json" \
    > "$SMOKE_DIR/cold.out" || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --cache-dir "$CACHE_DIR" --json "$SMOKE_DIR/r2.json" \
    > "$SMOKE_DIR/warm.out" || exit 1
cmp "$SMOKE_DIR/r1.json" "$SMOKE_DIR/r2.json" || {
    echo "cold and warm report JSON differ" >&2
    exit 1
}
grep -Eq '^cache +[1-9][0-9]* hit' "$SMOKE_DIR/warm.out" || {
    echo "warm run reported no cache hits:" >&2
    cat "$SMOKE_DIR/warm.out" >&2
    exit 1
}
cargo run -q --release -p warpstl-cli -- cache stats --cache-dir "$CACHE_DIR" || exit 1
cargo run -q --release -p warpstl-cli -- cache verify --cache-dir "$CACHE_DIR" || exit 1
echo "cache OK: warm rerun hit the cache with byte-identical report JSON"

echo "== implication-engine smoke test =="
# The redundant-logic fixture must yield a nonzero count of statically
# proven-untestable fault sites in the analyze JSON (and warn, not fail:
# exit code stays zero).
cargo run -q --release -p warpstl-cli -- analyze redundant-logic \
    --implications --json > "$SMOKE_DIR/redundant.json" || exit 1
python3 - "$SMOKE_DIR/redundant.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["errors"] == 0, f"redundant-logic should warn, not fail: {report}"
assert report["untestable"] > 0, f"no untestable proofs: {report}"
assert report["implication_edges"] > 0, f"no implication edges: {report}"
print(f"implications OK: {report['untestable']} proven untestable, "
      f"{report['implication_edges']} edges, {report['equiv_merges']} merges")
EOF

echo "== universe-pruning smoke test =="
# Dropping statically proven-untestable faults from the simulated universe
# must not change the deterministic report JSON (the proofs are sound, so
# pruned faults were never detectable). --no-cache keeps both runs honest.
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --no-cache --json "$SMOKE_DIR/pruned.json" >/dev/null || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --no-cache --no-prune --json "$SMOKE_DIR/unpruned.json" >/dev/null || exit 1
cmp "$SMOKE_DIR/pruned.json" "$SMOKE_DIR/unpruned.json" || {
    echo "pruned and unpruned report JSON differ" >&2
    exit 1
}
grep -q '"untestable"' "$SMOKE_DIR/pruned.json" || {
    echo "report JSON missing the untestable field" >&2
    exit 1
}
echo "pruning OK: pruned and unpruned reports byte-identical"

echo "== cache version-miss smoke test =="
# Patch the format-version byte of every cached entry: the next run must
# degrade every read to a version miss (visible as the cache.miss.version
# counter in the embedded trace metrics) and still complete.
python3 - "$CACHE_DIR" <<'EOF' || exit 1
import pathlib, sys

patched = 0
for p in pathlib.Path(sys.argv[1]).iterdir():
    if p.suffix.lstrip(".") in ("ana", "fsr"):
        b = bytearray(p.read_bytes())
        b[8] ^= 0xFF  # format version u32 LE at offset 8
        p.write_bytes(bytes(b))
        patched += 1
assert patched > 0, "no cache entries to patch"
print(f"patched format version of {patched} entries")
EOF
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --cache-dir "$CACHE_DIR" --trace-out "$SMOKE_DIR/vm-trace.json" \
    >/dev/null || exit 1
python3 - "$SMOKE_DIR/vm-trace.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
counters = trace["warpstlMetrics"]["counters"]
n = counters.get("cache.miss.version", 0)
assert n >= 1, f"expected version misses, counters: {counters}"
print(f"version-miss OK: {n} version miss(es) counted")
EOF

echo "== sim-backend smoke test =="
# One module through both engine backends (no cache, so both actually
# simulate): the report JSON must be byte-identical — the CLI-level face of
# the kernel/event bit-identity contract.
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --sim-backend event --json "$SMOKE_DIR/be-event.json" >/dev/null || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --sim-backend kernel --json "$SMOKE_DIR/be-kernel.json" >/dev/null || exit 1
cmp "$SMOKE_DIR/be-event.json" "$SMOKE_DIR/be-kernel.json" || {
    echo "event and kernel backend report JSON differ" >&2
    exit 1
}
echo "backend OK: event and kernel reports byte-identical"

echo "check.sh: all green"
