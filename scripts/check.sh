#!/usr/bin/env bash
# The repo's static-quality gate: formatting, lints (warnings denied), and
# the full test suite. CI and the bench scripts call this before anything
# expensive; run it locally before pushing.
#
# Usage: scripts/check.sh
set -u
cd "$(dirname "$0")/.."

echo "== rustfmt (check) =="
cargo fmt --all -- --check || exit 1

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings || exit 1

echo "== tests =="
cargo test -q || exit 1

echo "check.sh: all green"
