#!/usr/bin/env bash
# The repo's static-quality gate: formatting, lints (warnings denied), and
# the full test suite. CI and the bench scripts call this before anything
# expensive; run it locally before pushing.
#
# Usage: scripts/check.sh
set -u
cd "$(dirname "$0")/.."

echo "== rustfmt (check) =="
cargo fmt --all -- --check || exit 1

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings || exit 1

echo "== tests =="
cargo test -q || exit 1

echo "== xlint (workspace policy lint) =="
# Source-level policy rules (raw-sync, safety-comment, no-unwrap,
# timestamp-in-key); nonzero exit on any finding.
cargo run -q -p warpstl-cli -- xlint || exit 1

echo "== model checker (schedule exploration) =="
# The cfg(warpstl_model) build routes every warpstl-sync primitive through
# the schedule-exploring checker; these suites prove the serve-queue and
# store-commit invariants over all interleavings (own target dir so the
# RUSTFLAGS change does not invalidate the normal build's cache).
RUSTFLAGS="--cfg warpstl_model" CARGO_TARGET_DIR=target/model-cfg \
    cargo test -q -p warpstl-sync -p warpstl-serve -p warpstl-store \
    --test model || exit 1

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q || exit 1

echo "== trace-out smoke test =="
# End-to-end observability check: compact a small PTP with --trace-out and
# validate that the emitted file is real JSON with one complete span per
# pipeline stage (plus the fault-engine worker spans).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -q --release -p warpstl-cli -- generate IMM --sb-count 4 \
    --out "$SMOKE_DIR/imm.ptp" || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --trace-out "$SMOKE_DIR/trace.json" >/dev/null || exit 1
python3 - "$SMOKE_DIR/trace.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
complete = [e["name"] for e in events if e.get("ph") == "X"]
stages = ["stage.analyze", "stage.trace", "stage.fsim", "stage.label",
          "stage.reduce", "stage.verify", "stage.eval"]
for stage in stages:
    n = complete.count(stage)
    assert n == 1, f"expected exactly one {stage} span, found {n}"
assert complete.count("fsim.worker") >= 1, "missing fsim.worker spans"
assert "warpstlMetrics" in trace, "missing embedded metrics"
print(f"trace OK: {len(events)} events, all {len(stages)} stage spans present")
EOF

echo "== netlist analyzer smoke test =="
# The analyze command must produce valid JSON for a healthy bundled module
# and exit nonzero on the seeded combinational-loop fixture.
cargo run -q --release -p warpstl-cli -- analyze decoder_unit --json \
    > "$SMOKE_DIR/analyze.json" || exit 1
python3 - "$SMOKE_DIR/analyze.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["errors"] == 0, f"decoder_unit should lint clean: {report}"
print(f"analyze OK: {report['netlist']}, {report['gates']} gates, 0 errors")
EOF
if cargo run -q --release -p warpstl-cli -- analyze comb-loop >/dev/null 2>&1; then
    echo "analyze comb-loop should have exited nonzero" >&2
    exit 1
fi
echo "analyze comb-loop: nonzero exit as expected"

echo "== artifact-cache smoke test =="
# Cold run populates the cache, warm run must hit it (the cache summary
# line reports >= 1 hit) and reproduce the report JSON byte-for-byte; the
# cache subcommands must agree the entries are intact.
CACHE_DIR="$SMOKE_DIR/cache"
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --cache-dir "$CACHE_DIR" --json "$SMOKE_DIR/r1.json" \
    > "$SMOKE_DIR/cold.out" || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --cache-dir "$CACHE_DIR" --json "$SMOKE_DIR/r2.json" \
    > "$SMOKE_DIR/warm.out" || exit 1
cmp "$SMOKE_DIR/r1.json" "$SMOKE_DIR/r2.json" || {
    echo "cold and warm report JSON differ" >&2
    exit 1
}
grep -Eq '^cache +[1-9][0-9]* hit' "$SMOKE_DIR/warm.out" || {
    echo "warm run reported no cache hits:" >&2
    cat "$SMOKE_DIR/warm.out" >&2
    exit 1
}
cargo run -q --release -p warpstl-cli -- cache stats --cache-dir "$CACHE_DIR" || exit 1
cargo run -q --release -p warpstl-cli -- cache verify --cache-dir "$CACHE_DIR" || exit 1
echo "cache OK: warm rerun hit the cache with byte-identical report JSON"

echo "== implication-engine smoke test =="
# The redundant-logic fixture must yield a nonzero count of statically
# proven-untestable fault sites in the analyze JSON (and warn, not fail:
# exit code stays zero).
cargo run -q --release -p warpstl-cli -- analyze redundant-logic \
    --implications --json > "$SMOKE_DIR/redundant.json" || exit 1
python3 - "$SMOKE_DIR/redundant.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["errors"] == 0, f"redundant-logic should warn, not fail: {report}"
assert report["untestable"] > 0, f"no untestable proofs: {report}"
assert report["implication_edges"] > 0, f"no implication edges: {report}"
print(f"implications OK: {report['untestable']} proven untestable, "
      f"{report['implication_edges']} edges, {report['equiv_merges']} merges")
EOF

echo "== universe-pruning smoke test =="
# Dropping statically proven-untestable faults from the simulated universe
# must not change the deterministic report JSON (the proofs are sound, so
# pruned faults were never detectable). --no-cache keeps both runs honest.
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --no-cache --json "$SMOKE_DIR/pruned.json" >/dev/null || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --no-cache --no-prune --json "$SMOKE_DIR/unpruned.json" >/dev/null || exit 1
cmp "$SMOKE_DIR/pruned.json" "$SMOKE_DIR/unpruned.json" || {
    echo "pruned and unpruned report JSON differ" >&2
    exit 1
}
grep -q '"untestable"' "$SMOKE_DIR/pruned.json" || {
    echo "report JSON missing the untestable field" >&2
    exit 1
}
echo "pruning OK: pruned and unpruned reports byte-identical"

echo "== cache version-miss smoke test =="
# Patch the format-version byte of every cached entry: the next run must
# degrade every read to a version miss (visible as the cache.miss.version
# counter in the embedded trace metrics) and still complete.
python3 - "$CACHE_DIR" <<'EOF' || exit 1
import pathlib, sys

patched = 0
for p in pathlib.Path(sys.argv[1]).iterdir():
    if p.suffix.lstrip(".") in ("ana", "fsr"):
        b = bytearray(p.read_bytes())
        b[8] ^= 0xFF  # format version u32 LE at offset 8
        p.write_bytes(bytes(b))
        patched += 1
assert patched > 0, "no cache entries to patch"
print(f"patched format version of {patched} entries")
EOF
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --cache-dir "$CACHE_DIR" --trace-out "$SMOKE_DIR/vm-trace.json" \
    >/dev/null || exit 1
python3 - "$SMOKE_DIR/vm-trace.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
counters = trace["warpstlMetrics"]["counters"]
n = counters.get("cache.miss.version", 0)
assert n >= 1, f"expected version misses, counters: {counters}"
print(f"version-miss OK: {n} version miss(es) counted")
EOF

echo "== sim-backend smoke test =="
# One module through both engine backends (no cache, so both actually
# simulate): the report JSON must be byte-identical — the CLI-level face of
# the kernel/event bit-identity contract.
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --sim-backend event --json "$SMOKE_DIR/be-event.json" >/dev/null || exit 1
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --sim-backend kernel --json "$SMOKE_DIR/be-kernel.json" >/dev/null || exit 1
cmp "$SMOKE_DIR/be-event.json" "$SMOKE_DIR/be-kernel.json" || {
    echo "event and kernel backend report JSON differ" >&2
    exit 1
}
echo "backend OK: event and kernel reports byte-identical"

echo "== serve smoke test =="
# Start the daemon on an ephemeral port with a shared cache directory,
# probe /healthz and /metrics, then run two concurrent clients submitting
# the same module while `cache gc` runs against the same directory from
# separate processes. Both responses must be byte-identical to the solo
# CLI run's --json bytes, with no request errors, and POST /shutdown must
# drain cleanly (exit code 0).
SERVE_CACHE="$SMOKE_DIR/serve-cache"
cargo run -q --release -p warpstl-cli -- compact "$SMOKE_DIR/imm.ptp" \
    --no-cache --json "$SMOKE_DIR/serve-oracle.json" >/dev/null || exit 1
cargo run -q --release -p warpstl-cli -- serve --addr 127.0.0.1:0 \
    --workers 2 --cache-dir "$SERVE_CACHE" > "$SMOKE_DIR/serve.out" &
SERVE_PID=$!
SERVE_URL=""
for _ in $(seq 1 100); do
    SERVE_URL="$(sed -n 's/^serving on //p' "$SMOKE_DIR/serve.out")"
    [ -n "$SERVE_URL" ] && break
    sleep 0.1
done
if [ -z "$SERVE_URL" ]; then
    echo "serve did not print its URL" >&2
    kill "$SERVE_PID" 2>/dev/null
    exit 1
fi
python3 - "$SERVE_URL" "$SMOKE_DIR/imm.ptp" "$SMOKE_DIR/serve-oracle.json" <<'EOF' &
import json, sys, threading, urllib.request

url, ptp_path, oracle_path = sys.argv[1:4]
with open(ptp_path) as f:
    ptp = f.read()
with open(oracle_path, "rb") as f:
    oracle = f.read()

health = json.load(urllib.request.urlopen(url + "/healthz", timeout=30))
assert health["status"] == "ok", health

body = json.dumps({"ptp": ptp}).encode()
results = [None, None]
def client(i):
    req = urllib.request.Request(url + "/compact?format=report",
                                 data=body, method="POST")
    # urlopen raises on any non-2xx status, so an unexpected 4xx/5xx
    # fails the smoke here.
    results[i] = urllib.request.urlopen(req, timeout=300).read()
threads = [threading.Thread(target=client, args=(i,)) for i in range(2)]
for t in threads:
    t.start()
for t in threads:
    t.join()
for i, r in enumerate(results):
    assert r == oracle, f"client {i} response differs from the CLI --json bytes"

metrics = json.load(urllib.request.urlopen(url + "/metrics", timeout=30))
assert metrics["jobs"]["completed"] >= 2, metrics
assert metrics["jobs"]["failed"] == 0, metrics
assert metrics["jobs"]["rejected"] == 0, metrics
assert metrics["queue"]["workers"] == 2, metrics
assert metrics["cache"]["corrupt"] == 0, metrics
print(f"serve clients OK: 2 byte-identical responses, "
      f"{metrics['jobs']['completed']} job(s) completed")
EOF
CLIENTS_PID=$!
# Concurrent maintenance from separate processes against the same cache
# dir: must never disturb the in-flight jobs (the store's gc lock + temp
# age threshold are what this exercises).
for _ in 1 2 3; do
    cargo run -q --release -p warpstl-cli -- cache gc \
        --cache-dir "$SERVE_CACHE" >/dev/null || exit 1
done
wait "$CLIENTS_PID" || { echo "serve clients failed" >&2; exit 1; }
python3 - "$SERVE_URL" <<'EOF' || exit 1
import sys, urllib.request

req = urllib.request.Request(sys.argv[1] + "/shutdown", data=b"", method="POST")
reply = urllib.request.urlopen(req, timeout=30).read().decode()
assert "draining" in reply, reply
EOF
wait "$SERVE_PID" || { echo "serve exited nonzero" >&2; exit 1; }
grep -q '^drained$' "$SMOKE_DIR/serve.out" || {
    echo "serve did not report a clean drain:" >&2
    cat "$SMOKE_DIR/serve.out" >&2
    exit 1
}
echo "serve OK: concurrent clients byte-identical, gc concurrent, clean drain"

echo "== campaign smoke test =="
# A small matrix (2 modules x 2 lane shapes x both fault models) through
# the campaign runner twice against one cache directory: the second run
# is warm and uses a different pool width, yet the --json report must be
# byte-identical, and the warm run's cache summary must show hits.
CAMPAIGN_CACHE="$SMOKE_DIR/campaign-cache"
cat > "$SMOKE_DIR/campaign.json" <<'EOF'
{
    "name": "smoke",
    "modules": ["decoder_unit", "sfu"],
    "lanes": [8, 16],
    "fault_models": ["stuck-at", "bridging"],
    "sb_count": 3,
    "bridge_pairs": 32
}
EOF
cargo run -q --release -p warpstl-cli -- campaign "$SMOKE_DIR/campaign.json" \
    --cache-dir "$CAMPAIGN_CACHE" --jobs 1 --json "$SMOKE_DIR/c1.json" \
    > "$SMOKE_DIR/campaign-cold.out" || exit 1
cargo run -q --release -p warpstl-cli -- campaign "$SMOKE_DIR/campaign.json" \
    --cache-dir "$CAMPAIGN_CACHE" --jobs 4 --json "$SMOKE_DIR/c2.json" \
    > "$SMOKE_DIR/campaign-warm.out" || exit 1
cmp "$SMOKE_DIR/c1.json" "$SMOKE_DIR/c2.json" || {
    echo "campaign report JSON differs between jobs=1 and warm jobs=4" >&2
    exit 1
}
grep -Eq '^cache +[1-9][0-9]* hit' "$SMOKE_DIR/campaign-warm.out" || {
    echo "warm campaign run reported no cache hits:" >&2
    cat "$SMOKE_DIR/campaign-warm.out" >&2
    exit 1
}
grep -q '8 cell(s), 8 ok' "$SMOKE_DIR/campaign-warm.out" || {
    echo "campaign did not report 8 ok cells:" >&2
    cat "$SMOKE_DIR/campaign-warm.out" >&2
    exit 1
}
echo "campaign OK: 8-cell matrix byte-identical across pool widths, warm hits"

echo "check.sh: all green"
