#!/usr/bin/env bash
# Regenerates every paper table and ablation, collecting outputs under
# experiments/. Scale via WARPSTL_SCALE (default 32).
set -u
cd "$(dirname "$0")/.."
mkdir -p experiments
cargo build --release --workspace 2>/dev/null | tail -1
for bin in table1 table2 table3 method_vs_baseline ablation_dropping \
           ablation_order ablation_arc sweep_sp_cores scaling_rand extension_fpu extension_tdf extension_reorder; do
  echo "=== $bin ==="
  cargo run --release -q -p warpstl-bench --bin "$bin" 2>&1 | tee "experiments/$bin.txt"
done
