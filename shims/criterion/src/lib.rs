//! Offline shim for the [`criterion`](https://docs.rs/criterion/0.5) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: [`Criterion`] with
//! `bench_function` / `sample_size`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each bench runs a short
//! warm-up followed by `sample_size` timed iterations and prints the mean,
//! minimum and total wall-clock per iteration — enough to track relative
//! performance in this workspace's scripted benches.

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value or the work producing it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the shim re-runs setup per
/// iteration for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A named benchmark id (`BenchmarkId::new("group", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `{function_name}/{parameter}`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark's iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter`], with an untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

/// The bench driver: collects and prints per-bench timings.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per bench.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::with_sample_size(self.sample_size);
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {id:<40} mean {:>12.3?} min {:>12.3?} ({} samples, total {:.3?})",
            total / n,
            min,
            n,
            total
        );
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("shim/iter", |b| b.iter(|| black_box(2u64 + 2)));
        c.bench_function("shim/iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }

    criterion_group!(smoke, tiny_bench);

    #[test]
    fn groups_run_and_record() {
        smoke();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_sample_size(5);
        b.iter(|| black_box(1));
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fsim", 8).to_string(), "fsim/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
