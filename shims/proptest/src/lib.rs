//! Offline shim for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its property tests use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`], [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`any`](prelude::any), [`collection::vec`] and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: failing cases are *not* shrunk (the panic
//! message carries the case's seed so it can be replayed by rerunning the
//! test), and generation draws from the workspace's deterministic
//! xoshiro256++ shim rather than proptest's own RNG.

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies during generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A deterministic generator for case number `case` of seed `seed`.
        #[must_use]
        pub fn for_case(seed: u64, case: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(
                seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A generator of values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy returned by [`any`](crate::prelude::any): uniform over
    /// the type's whole domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: rand::Random> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.0.gen()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base seed mixed into every case's RNG.
        pub seed: u64,
    }

    /// The name the `proptest!` macro and prelude use.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                seed: 0xb4c0_ffee_0123_4567,
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, TestRng};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    use std::marker::PhantomData;

    /// A strategy uniform over `T`'s whole domain.
    #[must_use]
    pub fn any<T: rand::Random>() -> crate::strategy::Any<T> {
        crate::strategy::Any(PhantomData)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::strategy::TestRng::for_case(config.seed, case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} failed (seed {:#x})",
                        config.cases, config.seed
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property, like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn mapped_tuples_apply_the_map(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn any_bool_and_ints_generate(b in any::<bool>(), w in any::<u64>()) {
            // Smoke: both values exist and the test body sees them.
            let _ = (b, w);
            prop_assert_eq!(b as u64 & !1, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(1, 2);
        let mut b = TestRng::for_case(1, 2);
        let s = 0u64..100;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
