//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API subset it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha
//! stream the real `StdRng` uses, so seeded streams differ from upstream
//! `rand`, but every workspace consumer only relies on *deterministic*
//! pseudorandomness, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the shim's stand-in
/// for `rand::distributions::Standard`).
pub trait Random: Sized {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Integer types uniformly samplable between two bounds (the shim's
/// stand-in for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A uniform value in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (the shim's stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_biased_by_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
