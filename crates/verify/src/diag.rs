//! Diagnostics: rules, severities, and the verification report.

use std::fmt;

/// The verifier's rule set. Each diagnostic belongs to exactly one rule;
/// [`VerifyStats`] counts diagnostics per rule so reports can show where a
/// program went wrong at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Rule 1: a register or predicate is read with no reaching definition
    /// (error), or defined on only some paths to the use (warning).
    UseBeforeDef,
    /// Rule 2: Small-Block structural integrity — the load → operate →
    /// propagate shape (bare stores, operate runs whose results are never
    /// propagated nor consumed).
    SbStructure,
    /// Rule 3: ARC admissibility — instructions removed from basic blocks
    /// that participate in CFG cycles (parametric loops).
    ArcAdmissibility,
    /// Rule 4: `SSY`/`SYNC` divergence pairing and branch-target validity.
    DivergencePairing,
    /// Rule 5: warp-level memory alias/race detection on store address
    /// expressions.
    MemoryRace,
    /// Rule 6: relocation soundness — every surviving slot load must have a
    /// backing data word for every thread.
    Relocation,
}

impl Rule {
    /// The number of rules.
    pub const COUNT: usize = 6;

    /// All rules, in report order.
    pub const ALL: [Rule; Rule::COUNT] = [
        Rule::UseBeforeDef,
        Rule::SbStructure,
        Rule::ArcAdmissibility,
        Rule::DivergencePairing,
        Rule::MemoryRace,
        Rule::Relocation,
    ];

    /// The stable kebab-case rule name (used in human and JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::UseBeforeDef => "use-before-def",
            Rule::SbStructure => "sb-structure",
            Rule::ArcAdmissibility => "arc-admissibility",
            Rule::DivergencePairing => "divergence-pairing",
            Rule::MemoryRace => "memory-race",
            Rule::Relocation => "relocation",
        }
    }

    /// The rule's index into [`VerifyStats`] arrays.
    #[must_use]
    pub fn index(self) -> usize {
        Rule::ALL.iter().position(|&r| r == self).expect("listed")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How severe a diagnostic is. Errors gate the compaction pipeline (and
/// give `warpstl lint` a nonzero exit); warnings are reported but do not
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Reported, but does not gate the pipeline.
    Warning,
    /// Gates the pipeline: the CPTP is considered malformed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Error or warning.
    pub severity: Severity,
    /// The instruction index the finding anchors to, when there is one.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error diagnostic at `pc`.
    #[must_use]
    pub fn error(rule: Rule, pc: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            pc: Some(pc),
            message: message.into(),
        }
    }

    /// A warning diagnostic at `pc`.
    #[must_use]
    pub fn warning(rule: Rule, pc: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            pc: Some(pc),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(pc) = self.pc {
            write!(f, " pc {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Per-rule diagnostic counts — the structured summary recorded in
/// `CompactionReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Errors per rule, indexed by [`Rule::index`].
    pub errors: [usize; Rule::COUNT],
    /// Warnings per rule, indexed by [`Rule::index`].
    pub warnings: [usize; Rule::COUNT],
}

impl VerifyStats {
    /// Total errors across all rules.
    #[must_use]
    pub fn total_errors(&self) -> usize {
        self.errors.iter().sum()
    }

    /// Total warnings across all rules.
    #[must_use]
    pub fn total_warnings(&self) -> usize {
        self.warnings.iter().sum()
    }

    /// Element-wise sum (for combined report rows).
    #[must_use]
    pub fn merged(&self, other: &VerifyStats) -> VerifyStats {
        let mut out = *self;
        for i in 0..Rule::COUNT {
            out.errors[i] += other.errors[i];
            out.warnings[i] += other.warnings[i];
        }
        out
    }
}

impl fmt::Display for VerifyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for rule in Rule::ALL {
            let i = rule.index();
            write!(f, "{sep}{rule} {}/{}", self.errors[i], self.warnings[i])?;
            sep = " | ";
        }
        Ok(())
    }
}

/// The verifier's findings for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The verified PTP's name.
    pub name: String,
    /// The verified program's length in instructions.
    pub program_len: usize,
    /// Every finding, in rule order then program order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the program passed (no errors; warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// The per-rule counts.
    #[must_use]
    pub fn stats(&self) -> VerifyStats {
        let mut stats = VerifyStats::default();
        for d in &self.diagnostics {
            let i = d.rule.index();
            match d.severity {
                Severity::Error => stats.errors[i] += 1,
                Severity::Warning => stats.warnings[i] += 1,
            }
        }
        stats
    }

    /// Serializes the report as a single JSON object (hand-rolled: the
    /// build environment has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"program\":\"{}\",", escape_json(&self.name)));
        out.push_str(&format!("\"instructions\":{},", self.program_len));
        out.push_str(&format!("\"errors\":{},", self.error_count()));
        out.push_str(&format!("\"warnings\":{},", self.warning_count()));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
                d.rule,
                d.severity,
                d.pc.map_or_else(|| "null".to_string(), |pc| pc.to_string()),
                escape_json(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{}: {} error(s), {} warning(s) over {} instruction(s)",
            self.name,
            self.error_count(),
            self.warning_count(),
            self.program_len
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> VerifyReport {
        VerifyReport {
            name: "T".into(),
            program_len: 4,
            diagnostics: vec![
                Diagnostic::error(Rule::UseBeforeDef, 1, "read of R1 with no definition"),
                Diagnostic::warning(Rule::MemoryRace, 2, "uniform store base"),
            ],
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = report();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        let stats = r.stats();
        assert_eq!(stats.errors[Rule::UseBeforeDef.index()], 1);
        assert_eq!(stats.warnings[Rule::MemoryRace.index()], 1);
        assert_eq!(stats.total_errors(), 1);
        assert_eq!(stats.total_warnings(), 1);
    }

    #[test]
    fn stats_merge_elementwise() {
        let a = report().stats();
        let b = a.merged(&a);
        assert_eq!(b.total_errors(), 2);
        assert_eq!(b.total_warnings(), 2);
    }

    #[test]
    fn json_is_well_formed() {
        let j = report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"use-before-def\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"pc\":1"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn display_names_rule_and_severity() {
        let d = Diagnostic::error(Rule::Relocation, 7, "missing word");
        assert_eq!(d.to_string(), "error[relocation] pc 7: missing word");
        let s = report().to_string();
        assert!(s.contains("1 error(s)"));
    }

    #[test]
    fn rule_indices_are_stable() {
        for (i, rule) in Rule::ALL.iter().enumerate() {
            assert_eq!(rule.index(), i);
        }
    }
}
