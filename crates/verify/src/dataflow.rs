//! Dataflow analyses over the basic-block CFG: reachability, may/must
//! definedness, reaching definitions (def-use chains), and liveness.
//!
//! All analyses work on a flat *slot* space of 68 entries — one per GPR
//! (`R0..R63`) plus one per writable predicate (`P0..P3`) — so a whole
//! machine state fits in a `u128` bitset and the fixpoints are cheap.

use std::collections::BTreeSet;

use warpstl_isa::{Instruction, Pred, Reg};
use warpstl_programs::{BasicBlocks, ControlFlowGraph};

/// Number of dataflow slots: 64 GPRs + 4 writable predicates.
pub const SLOTS: usize = Reg::COUNT as usize + Pred::COUNT as usize;

/// The slot of a general-purpose register.
#[must_use]
pub fn reg_slot(r: Reg) -> usize {
    r.index() as usize
}

/// The slot of a writable predicate register (`PT` has no slot).
#[must_use]
pub fn pred_slot(p: Pred) -> usize {
    debug_assert!(!p.is_true(), "PT has no dataflow slot");
    Reg::COUNT as usize + p.index() as usize
}

/// The assembly name of a slot (`R12`, `P1`).
#[must_use]
pub fn slot_name(slot: usize) -> String {
    if slot < Reg::COUNT as usize {
        format!("R{slot}")
    } else {
        format!("P{}", slot - Reg::COUNT as usize)
    }
}

/// Bitmask of every slot `instr` defines (GPR destination and/or predicate
/// destination), regardless of guard.
#[must_use]
pub fn def_mask(instr: &Instruction) -> u128 {
    let mut mask = 0u128;
    if let Some(r) = instr.writes() {
        mask |= 1 << reg_slot(r);
    }
    if let Some(p) = instr.pdst {
        if !p.is_true() {
            mask |= 1 << pred_slot(p);
        }
    }
    mask
}

/// Like [`def_mask`], but only when the definition is unconditional (an
/// always-true guard). Guarded writes may not execute, so they neither kill
/// prior definitions nor establish must-definedness.
#[must_use]
pub fn strong_def_mask(instr: &Instruction) -> u128 {
    if instr.guard.is_always_true() {
        def_mask(instr)
    } else {
        0
    }
}

/// Every slot `instr` reads: source registers, memory base registers
/// (including store values), the guard predicate, and `SEL` selectors.
#[must_use]
pub fn use_slots(instr: &Instruction) -> Vec<usize> {
    let mut out: Vec<usize> = instr.reads().into_iter().map(reg_slot).collect();
    out.extend(instr.reads_preds().into_iter().map(pred_slot));
    out.sort_unstable();
    out.dedup();
    out
}

/// The results of the dataflow pass, indexed by basic block (bitsets) and
/// by instruction (def-use counts).
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Whether each block is reachable from the entry block.
    pub reachable: Vec<bool>,
    /// Slots defined on *some* path reaching each block's entry.
    pub may_in: Vec<u128>,
    /// Slots defined on *every* path reaching each block's entry.
    pub must_in: Vec<u128>,
    /// Slots live (read before any unconditional redefinition) at each
    /// block's entry.
    pub live_in: Vec<u128>,
    /// Slots live at each block's exit.
    pub live_out: Vec<u128>,
    /// Per-pc: how many reads any definition made at that pc reaches. Only
    /// meaningful where `def_mask` is nonzero; a defining pc with count 0
    /// is a dead definition.
    pub use_count: Vec<usize>,
}

impl Dataflow {
    /// Runs every analysis over `program` with its `bbs`/`cfg` structure.
    #[must_use]
    pub fn of(program: &[Instruction], bbs: &BasicBlocks, cfg: &ControlFlowGraph) -> Dataflow {
        let n = bbs.count();
        let reachable = reachability(cfg, n);
        let preds = predecessors(cfg, n);
        let (may_in, must_in) = definedness(program, bbs, &reachable, &preds);
        let (live_in, live_out) = liveness(program, bbs, cfg, &preds);
        let use_count = reaching_uses(program, bbs, &reachable, &preds);
        Dataflow {
            reachable,
            may_in,
            must_in,
            live_in,
            live_out,
            use_count,
        }
    }
}

/// Blocks reachable from the entry block (block 0).
fn reachability(cfg: &ControlFlowGraph, n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    if n == 0 {
        return seen;
    }
    let mut work = vec![0usize];
    seen[0] = true;
    while let Some(b) = work.pop() {
        for &s in cfg.successors(b) {
            if !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
    }
    seen
}

/// Predecessor lists, derived from the CFG's successor lists.
fn predecessors(cfg: &ControlFlowGraph, n: usize) -> Vec<Vec<usize>> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in 0..n {
        for &s in cfg.successors(b) {
            preds[s].push(b);
        }
    }
    preds
}

/// Forward may-/must-defined fixpoints. May: union over predecessors, every
/// write counts. Must: intersection over predecessors, only unguarded
/// writes count; unreachable-from-entry blocks keep ⊤ so they never weaken
/// a reachable join.
fn definedness(
    program: &[Instruction],
    bbs: &BasicBlocks,
    reachable: &[bool],
    preds: &[Vec<usize>],
) -> (Vec<u128>, Vec<u128>) {
    let n = bbs.count();
    let mut may_gen = vec![0u128; n];
    let mut must_gen = vec![0u128; n];
    for b in 0..n {
        for pc in bbs.range(b) {
            may_gen[b] |= def_mask(&program[pc]);
            must_gen[b] |= strong_def_mask(&program[pc]);
        }
    }

    let mut may_in = vec![0u128; n];
    let mut must_in = vec![u128::MAX; n];
    if n > 0 {
        must_in[0] = 0;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if !reachable[b] {
                continue;
            }
            let mut may = 0u128;
            let mut must = if b == 0 { 0 } else { u128::MAX };
            for &p in &preds[b] {
                if !reachable[p] {
                    continue;
                }
                may |= may_in[p] | may_gen[p];
                must &= must_in[p] | must_gen[p];
            }
            if b == 0 {
                // Entry also starts with nothing defined even if it has
                // back-edge predecessors.
                must = 0;
                may |= 0;
            }
            if may != may_in[b] || must != must_in[b] {
                may_in[b] = may;
                must_in[b] = must;
                changed = true;
            }
        }
    }
    (may_in, must_in)
}

/// Backward liveness fixpoint. Unguarded definitions kill; every read
/// (including guard predicates) generates.
fn liveness(
    program: &[Instruction],
    bbs: &BasicBlocks,
    cfg: &ControlFlowGraph,
    preds: &[Vec<usize>],
) -> (Vec<u128>, Vec<u128>) {
    let n = bbs.count();
    let mut live_in = vec![0u128; n];
    let mut live_out = vec![0u128; n];
    // Worklist seeded with every block; re-queue predecessors on change.
    let mut work: Vec<usize> = (0..n).rev().collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop() {
        queued[b] = false;
        let mut out = 0u128;
        for &s in cfg.successors(b) {
            out |= live_in[s];
        }
        let mut live = out;
        for pc in bbs.range(b).rev() {
            let instr = &program[pc];
            live &= !strong_def_mask(instr);
            for slot in use_slots(instr) {
                live |= 1 << slot;
            }
        }
        live_out[b] = out;
        if live != live_in[b] {
            live_in[b] = live;
            for &p in &preds[b] {
                if !queued[p] {
                    queued[p] = true;
                    work.push(p);
                }
            }
        }
    }
    (live_in, live_out)
}

/// Reaching definitions, reduced to what the rules need: for every defining
/// pc, the number of reads its definition reaches (def-use chain sizes).
fn reaching_uses(
    program: &[Instruction],
    bbs: &BasicBlocks,
    reachable: &[bool],
    preds: &[Vec<usize>],
) -> Vec<usize> {
    let n = bbs.count();
    // Per-block, per-slot sets of defining pcs at block entry.
    let mut ins: Vec<Vec<BTreeSet<usize>>> = vec![vec![BTreeSet::new(); SLOTS]; n];
    let transfer = |state: &mut Vec<BTreeSet<usize>>, pc: usize, instr: &Instruction| {
        let strong = strong_def_mask(instr);
        let any = def_mask(instr);
        for (slot, defs) in state.iter_mut().enumerate() {
            if strong >> slot & 1 == 1 {
                defs.clear();
            }
            if any >> slot & 1 == 1 {
                defs.insert(pc);
            }
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if !reachable[b] {
                continue;
            }
            let mut entry = vec![BTreeSet::new(); SLOTS];
            for &p in &preds[b] {
                if !reachable[p] {
                    continue;
                }
                // OUT[p] = transfer of IN[p] through p's instructions.
                let mut state = ins[p].clone();
                for pc in bbs.range(p) {
                    transfer(&mut state, pc, &program[pc]);
                }
                for slot in 0..SLOTS {
                    entry[slot].extend(state[slot].iter().copied());
                }
            }
            if entry != ins[b] {
                ins[b] = entry;
                changed = true;
            }
        }
    }

    let mut use_count = vec![0usize; program.len()];
    for b in 0..n {
        if !reachable[b] {
            continue;
        }
        let mut state = ins[b].clone();
        for pc in bbs.range(b) {
            let instr = &program[pc];
            for slot in use_slots(instr) {
                for &def_pc in &state[slot] {
                    use_count[def_pc] += 1;
                }
            }
            transfer(&mut state, pc, instr);
        }
    }
    use_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_isa::asm;

    fn analyse(src: &str) -> (Vec<Instruction>, BasicBlocks, Dataflow) {
        let p = asm::assemble(src).unwrap();
        let bbs = BasicBlocks::of(&p);
        let cfg = ControlFlowGraph::of(&p, &bbs);
        let df = Dataflow::of(&p, &bbs, &cfg);
        (p, bbs, df)
    }

    #[test]
    fn straight_line_definedness() {
        let (_, _, df) = analyse("MOV32I R1, 1;\nIADD R2, R1, R1;\nEXIT;");
        assert_eq!(df.may_in[0], 0);
        assert_eq!(df.must_in[0], 0);
        assert!(df.reachable[0]);
    }

    #[test]
    fn branch_join_must_is_intersection() {
        // R1 defined on both arms (must); R2 only on one (may, not must).
        let (_, bbs, df) = analyse(
            "ISETP.LT P0, R0, R0;\n\
             @P0 BRA else_;\n\
             MOV32I R1, 1;\n\
             MOV32I R2, 2;\n\
             BRA join;\n\
             else_: MOV32I R1, 3;\n\
             join: IADD R3, R1, R1;\n\
             EXIT;",
        );
        let join = bbs.block_of(6).unwrap();
        let r1 = 1u128 << reg_slot(Reg::new(1));
        let r2 = 1u128 << reg_slot(Reg::new(2));
        assert_eq!(df.must_in[join] & r1, r1, "R1 defined on every path");
        assert_eq!(df.must_in[join] & r2, 0, "R2 only on one path");
        assert_eq!(df.may_in[join] & r2, r2);
    }

    #[test]
    fn loop_back_edge_keeps_counter_live() {
        let (_, bbs, df) = analyse(
            "MOV32I R1, 0;\n\
             top: IADD R1, R1, 0x1;\n\
             ISETP.LT P0, R1, 0x8;\n\
             @P0 BRA top;\n\
             EXIT;",
        );
        let body = bbs.block_of(1).unwrap();
        let r1 = 1u128 << reg_slot(Reg::new(1));
        assert_eq!(
            df.live_in[body] & r1,
            r1,
            "loop counter live around back edge"
        );
    }

    #[test]
    fn dead_def_has_zero_uses() {
        let (_, _, df) = analyse(
            "MOV32I R1, 1;\n\
             MOV32I R2, 2;\n\
             IADD R3, R1, R1;\n\
             EXIT;",
        );
        assert!(df.use_count[0] > 0, "R1 def is read");
        assert_eq!(df.use_count[1], 0, "R2 def is dead");
        assert!(df.use_count[2] == 0, "R3 def is dead");
    }

    #[test]
    fn guarded_def_does_not_kill() {
        let (_, _, df) = analyse(
            "MOV32I R1, 1;\n\
             ISETP.LT P0, R1, 0x8;\n\
             @P0 MOV32I R1, 2;\n\
             STG [R6], R1;\n\
             EXIT;",
        );
        // Both the MOV32I at 0 and the guarded MOV32I at 2 reach the store.
        assert!(df.use_count[0] >= 2, "unguarded def survives guarded redef");
        assert!(df.use_count[2] >= 1, "guarded def also reaches");
    }

    #[test]
    fn empty_program_is_empty_analysis() {
        let (_, bbs, df) = analyse("");
        assert_eq!(bbs.count(), 0);
        assert!(df.reachable.is_empty());
        assert!(df.use_count.is_empty());
    }

    #[test]
    fn slot_names_round_trip() {
        assert_eq!(slot_name(reg_slot(Reg::new(12))), "R12");
        assert_eq!(slot_name(pred_slot(Pred::new(1))), "P1");
        assert_eq!(SLOTS, 68);
    }
}
