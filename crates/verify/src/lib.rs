//! Static PTP verifier: a dataflow-based lint pass over [`warpstl_isa`]
//! programs that gates the compaction flow before the expensive gate-level
//! fault simulation.
//!
//! The paper's reduction step (Fig. 3) removes Small Blocks and relocates
//! their input data — silently trusting that the surviving CPTP is still
//! well-formed. A malformed CPTP would otherwise only surface through the
//! final fault-simulation numbers. This crate catches the breakage
//! statically, in microseconds:
//!
//! | rule | checks |
//! |------|--------|
//! | `use-before-def` | every read has a reaching definition |
//! | `sb-structure` | SBs keep the load → operate → propagate shape |
//! | `arc-admissibility` | no removal touches loop (non-ARC) blocks |
//! | `divergence-pairing` | `SSY`/`SYNC` nest; branch targets in range |
//! | `memory-race` | no warp-uniform store addresses (intra-warp races) |
//! | `relocation` | surviving slot loads have backing data words |
//!
//! [`verify_ptp`] lints a standalone program; [`verify_reduction`]
//! additionally re-checks a reduction against its original (rule 3). The
//! core pipeline runs [`verify_reduction`] as a mandatory post-reduction
//! gate, and the `warpstl lint` subcommand exposes [`verify_ptp`] on PTP
//! files.
//!
//! # Examples
//!
//! ```
//! use warpstl_programs::generators::{generate_imm, ImmConfig};
//!
//! let ptp = generate_imm(&ImmConfig { sb_count: 8, ..ImmConfig::default() });
//! let report = warpstl_verify::verify_ptp(&ptp);
//! assert!(report.is_clean(), "{report}");
//! ```

mod dataflow;
mod diag;
mod rules;

pub use dataflow::Dataflow;
pub use diag::{Diagnostic, Rule, Severity, VerifyReport, VerifyStats};

use warpstl_obs::{Obs, ObsExt};
use warpstl_programs::{BasicBlocks, ControlFlowGraph, Ptp};

/// Options for [`verify_reduction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Severity of ARC-admissibility findings. Defaults to
    /// [`Severity::Error`]; flows that deliberately ignore the ARC (the
    /// `--no-arc` ablation) downgrade it to a warning.
    pub arc_severity: Severity,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            arc_severity: Severity::Error,
        }
    }
}

/// Lints a standalone PTP: rules 1, 2, 4, 5, and 6 (rule 3 needs the
/// original program and removal set — see [`verify_reduction`]).
#[must_use]
pub fn verify_ptp(ptp: &Ptp) -> VerifyReport {
    verify_ptp_observed(ptp, None)
}

/// [`verify_ptp`] with an observability handle: each rule pass gets a
/// `verify.rule.<name>` span and the report's per-rule hit counts land in
/// the recorder as `verify.hits.<name>` counters (plus `verify.errors` /
/// `verify.warnings` totals). `None` is exactly [`verify_ptp`].
#[must_use]
pub fn verify_ptp_observed(ptp: &Ptp, obs: Obs<'_>) -> VerifyReport {
    let _span = obs.span("verify", "verify.ptp");
    let (bbs, cfg, df) = {
        let _s = obs.span("verify", "verify.dataflow");
        let bbs = BasicBlocks::of(&ptp.program);
        let cfg = ControlFlowGraph::of(&ptp.program, &bbs);
        let df = Dataflow::of(&ptp.program, &bbs, &cfg);
        (bbs, cfg, df)
    };
    let ctx = rules::Ctx {
        program: &ptp.program,
        bbs: &bbs,
        cfg: &cfg,
        df: &df,
    };
    let mut diagnostics = Vec::new();
    let passes: [(&'static str, &dyn Fn() -> Vec<Diagnostic>); 5] = [
        ("verify.rule.use-before-def", &|| {
            rules::use_before_def(&ctx)
        }),
        ("verify.rule.sb-structure", &|| rules::sb_structure(&ctx)),
        ("verify.rule.divergence-pairing", &|| {
            rules::divergence_pairing(&ctx)
        }),
        ("verify.rule.memory-race", &|| rules::memory_race(&ctx)),
        ("verify.rule.relocation", &|| rules::relocation(ptp)),
    ];
    for (name, pass) in passes {
        let _s = obs.span("verify", name);
        diagnostics.extend(pass());
    }
    let report = VerifyReport {
        name: ptp.name.clone(),
        program_len: ptp.program.len(),
        diagnostics,
    };
    record_rule_hits(&report, obs);
    report
}

/// Verifies a reduction: lints the compacted PTP and re-checks that the
/// removal set respected the admissible reduction area of `original`
/// (rule 3, `removed_pcs` indexing the *original* program).
#[must_use]
pub fn verify_reduction(
    original: &Ptp,
    compacted: &Ptp,
    removed_pcs: &[usize],
    opts: &VerifyOptions,
) -> VerifyReport {
    verify_reduction_observed(original, compacted, removed_pcs, opts, None)
}

/// [`verify_reduction`] with an observability handle (see
/// [`verify_ptp_observed`] for what gets recorded).
#[must_use]
pub fn verify_reduction_observed(
    original: &Ptp,
    compacted: &Ptp,
    removed_pcs: &[usize],
    opts: &VerifyOptions,
    obs: Obs<'_>,
) -> VerifyReport {
    // The standalone lint records its own rule hits; suppress them here and
    // record once over the full diagnostic set so nothing double-counts.
    let mut report = verify_ptp_observed(compacted, None);
    let _span = obs.span("verify", "verify.reduction");
    {
        let _s = obs.span("verify", "verify.rule.arc-admissibility");
        report.diagnostics.extend(rules::arc_admissibility(
            original,
            removed_pcs,
            opts.arc_severity,
        ));
    }
    record_rule_hits(&report, obs);
    report
}

/// Feeds a report's per-rule error/warning counts into the recorder.
fn record_rule_hits(report: &VerifyReport, obs: Obs<'_>) {
    if !obs.enabled() {
        return;
    }
    let stats = report.stats();
    for rule in Rule::ALL {
        let hits = stats.errors[rule.index()] + stats.warnings[rule.index()];
        if hits > 0 {
            obs.add(&format!("verify.hits.{}", rule.name()), hits as u64);
        }
    }
    obs.add("verify.errors", stats.total_errors() as u64);
    obs.add("verify.warnings", stats.total_warnings() as u64);
    obs.add("verify.programs", 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_gpu::KernelConfig;
    use warpstl_isa::asm;
    use warpstl_netlist::modules::ModuleKind;
    use warpstl_programs::generators::{
        generate_cntrl, generate_fpu, generate_imm, generate_mem, generate_rand_sp, CntrlConfig,
        FpuConfig, ImmConfig, MemConfig, RandConfig,
    };
    use warpstl_programs::SbSlots;

    fn ptp_of(src: &str) -> Ptp {
        Ptp::new(
            "test",
            ModuleKind::DecoderUnit,
            KernelConfig::new(1, 32),
            asm::assemble(src).unwrap(),
        )
    }

    /// The hand-crafted broken CPTP from the acceptance criteria:
    /// use-before-def (R1, R6) plus an unpaired SSY.
    #[test]
    fn broken_cptp_is_flagged() {
        let ptp = ptp_of("SSY 0x3;\nIADD R4, R1, R1;\nSTG [R6], R4;\nEXIT;");
        let report = verify_ptp(&ptp);
        assert!(!report.is_clean());
        let stats = report.stats();
        assert!(stats.errors[Rule::UseBeforeDef.index()] >= 2, "{report}");
        assert!(
            stats.errors[Rule::DivergencePairing.index()] >= 1,
            "{report}"
        );
    }

    #[test]
    fn sync_without_ssy_is_error() {
        let ptp = ptp_of("MOV32I R1, 1;\nSYNC;\nEXIT;");
        let report = verify_ptp(&ptp);
        let stats = report.stats();
        assert_eq!(stats.errors[Rule::DivergencePairing.index()], 1, "{report}");
    }

    #[test]
    fn out_of_range_branch_target_is_error() {
        let ptp = ptp_of("MOV32I R1, 1;\nBRA 0x9;\nEXIT;");
        let report = verify_ptp(&ptp);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DivergencePairing
                && d.severity == Severity::Error
                && d.message.contains("outside the program")));
    }

    #[test]
    fn uniform_store_base_is_race_warning() {
        let ptp = ptp_of("MOV32I R6, 0x100;\nMOV32I R4, 7;\nSTG [R6], R4;\nEXIT;");
        let report = verify_ptp(&ptp);
        assert!(report.is_clean(), "warning must not gate: {report}");
        assert_eq!(report.stats().warnings[Rule::MemoryRace.index()], 1);
    }

    #[test]
    fn distinct_store_base_is_silent() {
        let ptp = ptp_of(
            "S2R R0, SR_TID_X;\n\
             SHL R7, R0, 0x2;\n\
             MOV32I R6, 0x100;\n\
             IADD R6, R6, R7;\n\
             MOV32I R4, 7;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        let report = verify_ptp(&ptp);
        assert_eq!(
            report.stats().warnings[Rule::MemoryRace.index()],
            0,
            "{report}"
        );
    }

    #[test]
    fn local_store_never_races() {
        let ptp = ptp_of("MOV32I R6, 0x10;\nMOV32I R4, 7;\nSTL [R6], R4;\nEXIT;");
        let report = verify_ptp(&ptp);
        assert_eq!(report.stats().warnings[Rule::MemoryRace.index()], 0);
    }

    #[test]
    fn bare_store_is_structure_warning() {
        let ptp = ptp_of(
            "S2R R0, SR_TID_X;\n\
             SHL R6, R0, 0x2;\n\
             MOV32I R4, 7;\n\
             STG [R6], R4;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        let report = verify_ptp(&ptp);
        assert!(report.is_clean(), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::SbStructure && d.message.contains("bare store")));
    }

    #[test]
    fn orphaned_operate_run_is_structure_warning() {
        let ptp = ptp_of(
            "S2R R0, SR_TID_X;\n\
             SHL R6, R0, 0x2;\n\
             MOV32I R4, 7;\n\
             STG [R6], R4;\n\
             MOV32I R3, 5;\n\
             IADD R4, R3, R3;\n\
             EXIT;",
        );
        let report = verify_ptp(&ptp);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::SbStructure && d.message.contains("orphaned")));
    }

    #[test]
    fn relocation_missing_word_is_error() {
        let mut ptp = ptp_of(
            "MOV32I R5, 0x1000;\n\
             S2R R0, SR_TID_X;\n\
             SHL R6, R0, 0x2;\n\
             LDG R1, [R5+0x0];\n\
             IADD R4, R1, R1;\n\
             STG [R6], R4;\n\
             EXIT;",
        );
        ptp.sb_slots = Some(SbSlots {
            base: 0x1000,
            base_reg: 5,
            words_per_sb: 2,
            sb_count: 1,
            stride_words: 2,
            threads: 2,
        });
        // Backing data only for thread 0.
        ptp.global_init.push((0x1000, 1));
        let report = verify_ptp(&ptp);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::Relocation && d.message.contains("1/2 thread(s)")));

        // Fill in thread 1 and the error disappears.
        ptp.global_init.push((0x1008, 1));
        assert_eq!(verify_ptp(&ptp).stats().errors[Rule::Relocation.index()], 0);
    }

    #[test]
    fn relocation_out_of_layout_sb_is_error() {
        let mut ptp = ptp_of(
            "MOV32I R5, 0x1000;\n\
             LDG R1, [R5+0x20];\n\
             EXIT;",
        );
        ptp.sb_slots = Some(SbSlots {
            base: 0x1000,
            base_reg: 5,
            words_per_sb: 2,
            sb_count: 2,
            stride_words: 4,
            threads: 1,
        });
        let report = verify_ptp(&ptp);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::Relocation && d.message.contains("beyond the relocated")));
    }

    #[test]
    fn arc_removal_is_flagged_in_reduction() {
        // A loop body: removing from it violates ARC admissibility.
        let original = ptp_of(
            "MOV32I R1, 0;\n\
             IADD R1, R1, 0x1;\n\
             ISETP.LT P0, R1, 0x8;\n\
             @P0 BRA 0x1;\n\
             EXIT;",
        );
        let compacted = ptp_of("MOV32I R1, 0;\nEXIT;");
        let report = verify_reduction(&original, &compacted, &[1, 2], &VerifyOptions::default());
        assert_eq!(
            report.stats().errors[Rule::ArcAdmissibility.index()],
            1,
            "{report}"
        );

        let relaxed = VerifyOptions {
            arc_severity: Severity::Warning,
        };
        let report = verify_reduction(&original, &compacted, &[1, 2], &relaxed);
        assert_eq!(report.stats().errors[Rule::ArcAdmissibility.index()], 0);
        assert_eq!(report.stats().warnings[Rule::ArcAdmissibility.index()], 1);
    }

    #[test]
    fn empty_program_verifies_without_panicking() {
        let ptp = Ptp::new(
            "empty",
            ModuleKind::DecoderUnit,
            KernelConfig::new(1, 32),
            Vec::new(),
        );
        let report = verify_ptp(&ptp);
        assert!(report.is_clean());
        assert_eq!(report.program_len, 0);
    }

    #[test]
    fn all_generators_verify_clean() {
        let ptps = [
            generate_imm(&ImmConfig {
                sb_count: 12,
                ..ImmConfig::default()
            }),
            generate_rand_sp(&RandConfig {
                sb_count: 12,
                ..RandConfig::default()
            }),
            generate_fpu(&FpuConfig {
                sb_count: 12,
                ..FpuConfig::default()
            }),
            generate_mem(&MemConfig {
                sb_count: 12,
                ..MemConfig::default()
            }),
            generate_cntrl(&CntrlConfig::default()),
        ];
        for ptp in &ptps {
            let report = verify_ptp(ptp);
            assert!(report.is_clean(), "{} not clean:\n{report}", ptp.name);
        }
    }
}
