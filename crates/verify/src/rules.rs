//! The diagnostic rule set.
//!
//! Each rule takes the shared analysis context (program + CFG + dataflow)
//! and returns its findings. Severities follow one principle: *errors* mean
//! the CPTP is malformed and running it would be meaningless or misleading;
//! *warnings* mean the shape is suspicious but the program still runs.

use std::collections::HashSet;

use warpstl_isa::{Instruction, Opcode, SpecialReg, SrcOperand};
use warpstl_programs::{segment_small_blocks, BasicBlocks, ControlFlowGraph, Ptp};

use crate::dataflow::{def_mask, slot_name, strong_def_mask, use_slots, Dataflow};
use crate::diag::{Diagnostic, Rule, Severity};

/// Shared per-program analysis state handed to every rule.
pub(crate) struct Ctx<'a> {
    pub program: &'a [Instruction],
    pub bbs: &'a BasicBlocks,
    pub cfg: &'a ControlFlowGraph,
    pub df: &'a Dataflow,
}

/// Rule 1: every read must have a reaching definition. A read with no
/// definition on *any* path is an error (the classic symptom of removing
/// the SB that produced an operand); a read defined on only *some* paths is
/// a warning.
pub(crate) fn use_before_def(ctx: &Ctx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for b in ctx.bbs.iter() {
        if !ctx.df.reachable[b] {
            continue;
        }
        let mut may = ctx.df.may_in[b];
        let mut must = ctx.df.must_in[b];
        for pc in ctx.bbs.range(b) {
            let instr = &ctx.program[pc];
            for slot in use_slots(instr) {
                let bit = 1u128 << slot;
                if may & bit == 0 {
                    out.push(Diagnostic::error(
                        Rule::UseBeforeDef,
                        pc,
                        format!("{} is read but never defined on any path", slot_name(slot)),
                    ));
                } else if must & bit == 0 {
                    out.push(Diagnostic::warning(
                        Rule::UseBeforeDef,
                        pc,
                        format!("{} may be undefined on some path", slot_name(slot)),
                    ));
                }
            }
            may |= def_mask(instr);
            must |= strong_def_mask(instr);
        }
    }
    out
}

/// Rule 2: Small-Block structural integrity. (a) An SB of a single
/// instruction is a bare store with no load/operate phase. (b) A store-less
/// run whose computed values are all dead at the end of the run is an
/// orphaned operate phase: it computes results that are never propagated —
/// typically the residue of a partial SB removal.
pub(crate) fn sb_structure(ctx: &Ctx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let sbs = segment_small_blocks(ctx.program, ctx.bbs);
    for sb in &sbs {
        if sb.len() == 1 {
            out.push(Diagnostic::warning(
                Rule::SbStructure,
                sb.start,
                "bare store: SB has no load/operate phase before the propagation".to_string(),
            ));
        }
    }

    for b in ctx.bbs.iter() {
        if !ctx.df.reachable[b] {
            continue;
        }
        let range = ctx.bbs.range(b);
        // Live slots immediately *after* each pc of the block.
        let mut live_after = vec![0u128; range.len()];
        let mut live = ctx.df.live_out[b];
        for pc in range.clone().rev() {
            live_after[pc - range.start] = live;
            let instr = &ctx.program[pc];
            live &= !strong_def_mask(instr);
            for slot in use_slots(instr) {
                live |= 1 << slot;
            }
        }
        // Re-walk the SB segmentation to find store-less runs.
        let mut run_start = range.start;
        let flush = |run: std::ops::Range<usize>, out: &mut Vec<Diagnostic>| {
            if run.is_empty() {
                return;
            }
            let defined: u128 = run
                .clone()
                .map(|pc| def_mask(&ctx.program[pc]))
                .fold(0, |a, m| a | m);
            if defined == 0 {
                return;
            }
            let end_live = live_after[run.end - 1 - range.start];
            if defined & end_live == 0 {
                out.push(Diagnostic::warning(
                    Rule::SbStructure,
                    run.start,
                    format!(
                        "orphaned operate run: {} instruction(s) compute values that are never propagated",
                        run.len()
                    ),
                ));
            }
        };
        for pc in range.clone() {
            let op = ctx.program[pc].opcode;
            if op.is_control_flow() || op == Opcode::Nop {
                flush(run_start..pc, &mut out);
                run_start = pc + 1;
            } else if op.is_store() {
                run_start = pc + 1; // a complete SB, not an orphan
            }
        }
        flush(run_start..range.end, &mut out);
    }
    out
}

/// Rule 3: ARC admissibility. Removed instructions must not come from
/// basic blocks that participate in CFG cycles (the paper excludes loop
/// bodies from the Area of Reduction Candidates). Runs of consecutive
/// removed pcs are reported as one diagnostic.
pub(crate) fn arc_admissibility(
    original: &Ptp,
    removed_pcs: &[usize],
    severity: Severity,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let bbs = BasicBlocks::of(&original.program);
    let cfg = ControlFlowGraph::of(&original.program, &bbs);
    let offending: Vec<(usize, usize)> = removed_pcs
        .iter()
        .filter_map(|&pc| {
            let b = bbs.block_of(pc)?;
            cfg.in_cycle(b).then_some((pc, b))
        })
        .collect();
    let mut i = 0;
    while i < offending.len() {
        let (start, block) = offending[i];
        let mut end = start;
        while i + 1 < offending.len()
            && offending[i + 1].0 == offending[i].0 + 1
            && offending[i + 1].1 == block
        {
            i += 1;
            end = offending[i].0;
        }
        let count = end - start + 1;
        out.push(Diagnostic {
            rule: Rule::ArcAdmissibility,
            severity,
            pc: Some(start),
            message: format!(
                "removed {count} instruction(s) at pc {start}..={end} from loop block {block}, \
                 outside the admissible reduction area"
            ),
        });
        i += 1;
    }
    out
}

/// Rule 4: divergence pairing and branch-target validity. Every explicit
/// target must land inside the program (`BasicBlocks::of` is deliberately
/// lenient about this; the verifier is where it surfaces). `SSY`/`SYNC`
/// must nest: an abstract divergence-stack depth is propagated over the
/// CFG, flagging pops of an empty stack, inconsistent depths at joins, and
/// exits inside an open region.
pub(crate) fn divergence_pairing(ctx: &Ctx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let len = ctx.program.len();
    for (pc, instr) in ctx.program.iter().enumerate() {
        if !instr.opcode.has_target() {
            continue;
        }
        match instr.target() {
            Some(t) if t >= len => out.push(Diagnostic::error(
                Rule::DivergencePairing,
                pc,
                format!(
                    "{} target {t} is outside the program (len {len})",
                    instr.opcode
                ),
            )),
            Some(t) if instr.opcode == Opcode::Ssy && ctx.program[t].opcode != Opcode::Sync => {
                out.push(Diagnostic::warning(
                    Rule::DivergencePairing,
                    pc,
                    format!("SSY reconvergence target pc {t} is not a SYNC"),
                ));
            }
            _ => {}
        }
    }

    let n = ctx.bbs.count();
    let mut depth_in: Vec<Option<usize>> = vec![None; n];
    if n == 0 {
        return out;
    }
    depth_in[0] = Some(0);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut depth = depth_in[b].expect("queued with depth");
        let mut poisoned = false;
        for pc in ctx.bbs.range(b) {
            match ctx.program[pc].opcode {
                Opcode::Ssy => depth += 1,
                Opcode::Sync => {
                    if depth == 0 {
                        out.push(Diagnostic::error(
                            Rule::DivergencePairing,
                            pc,
                            "SYNC with no matching SSY (divergence stack underflow)".to_string(),
                        ));
                        poisoned = true;
                        break;
                    }
                    depth -= 1;
                }
                Opcode::Exit if depth > 0 => {
                    out.push(Diagnostic::error(
                        Rule::DivergencePairing,
                        pc,
                        format!("EXIT inside {depth} unterminated SSY region(s)"),
                    ));
                }
                _ => {}
            }
        }
        if poisoned {
            continue;
        }
        for &s in ctx.cfg.successors(b) {
            match depth_in[s] {
                None => {
                    depth_in[s] = Some(depth);
                    work.push(s);
                }
                Some(d) if d != depth => out.push(Diagnostic::error(
                    Rule::DivergencePairing,
                    ctx.bbs.range(s).start,
                    format!("inconsistent divergence depth at join ({d} vs {depth})"),
                )),
                Some(_) => {}
            }
        }
    }
    out
}

/// Thread-uniformity class of a register value, for warp-level race
/// detection: `Uniform` — every lane holds the same value; `Distinct` —
/// every lane holds a different value (derived injectively from the thread
/// id); `Unknown` — anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cls {
    Uniform,
    Distinct,
    Unknown,
}

fn cls_join(a: Cls, b: Cls) -> Cls {
    if a == b {
        a
    } else {
        Cls::Unknown
    }
}

type UniState = [Cls; 64];

/// Abstract transfer of one instruction over the uniformity state.
fn uniformity_transfer(state: &mut UniState, instr: &Instruction) {
    let Some(dst) = instr.writes() else {
        return;
    };
    let src_cls = |s: &SrcOperand| match s {
        SrcOperand::Reg(r) => state[r.index() as usize],
        // Immediates and specials resolved below; predicates don't feed
        // address arithmetic.
        _ => Cls::Uniform,
    };
    let new = match instr.opcode {
        Opcode::S2r => match instr.srcs.iter().find_map(|s| match s {
            SrcOperand::Special(sr) => Some(*sr),
            _ => None,
        }) {
            // Per-lane identifiers are injective within the warp; block
            // and launch geometry are warp-uniform.
            Some(SpecialReg::TidX | SpecialReg::LaneId) => Cls::Distinct,
            _ => Cls::Uniform,
        },
        Opcode::Mov32i => Cls::Uniform,
        Opcode::Mov => instr.srcs.first().map_or(Cls::Unknown, src_cls),
        Opcode::Iadd | Opcode::Isub | Opcode::Iadd32i => {
            // Adding a uniform offset to an injective value stays injective.
            let classes: Vec<Cls> = instr.srcs.iter().map(src_cls).collect();
            let distinct = classes.iter().filter(|&&c| c == Cls::Distinct).count();
            if classes.contains(&Cls::Unknown) || distinct > 1 {
                Cls::Unknown
            } else if distinct == 1 {
                Cls::Distinct
            } else {
                Cls::Uniform
            }
        }
        Opcode::Shl => {
            // A left shift by a uniform immediate preserves injectivity.
            let base = instr.srcs.first().map_or(Cls::Unknown, src_cls);
            match (base, instr.srcs.get(1)) {
                (c, Some(SrcOperand::Imm(_))) => c,
                (Cls::Uniform, Some(SrcOperand::Reg(r)))
                    if state[r.index() as usize] == Cls::Uniform =>
                {
                    Cls::Uniform
                }
                _ => Cls::Unknown,
            }
        }
        Opcode::Ldg | Opcode::Lds | Opcode::Ldl | Opcode::Ldc => Cls::Unknown,
        _ => {
            if instr.srcs.iter().all(|s| src_cls(s) == Cls::Uniform) {
                Cls::Uniform
            } else {
                Cls::Unknown
            }
        }
    };
    let slot = dst.index() as usize;
    state[slot] = if instr.guard.is_always_true() {
        new
    } else {
        cls_join(state[slot], new)
    };
}

/// Rule 5: warp-level memory races. Threads of a warp execute stores in
/// lockstep; a global or shared store whose address is warp-uniform makes
/// every lane write the same location, so the observed word is
/// lane-order-dependent and the test's propagation is unreliable. Local
/// memory (`STL`) is per-thread and never races; `Unknown` bases stay
/// silent to avoid noise.
pub(crate) fn memory_race(ctx: &Ctx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = ctx.bbs.count();
    if n == 0 {
        return out;
    }
    // Forward fixpoint of per-register uniformity over the CFG. The GPR
    // file starts zeroed, i.e. warp-uniform.
    let mut entry: Vec<Option<UniState>> = vec![None; n];
    entry[0] = Some([Cls::Uniform; 64]);
    let mut work = vec![0usize];
    let mut queued = vec![false; n];
    queued[0] = true;
    while let Some(b) = work.pop() {
        queued[b] = false;
        let mut state = entry[b].expect("queued with state");
        for pc in ctx.bbs.range(b) {
            uniformity_transfer(&mut state, &ctx.program[pc]);
        }
        for &s in ctx.cfg.successors(b) {
            let merged = match entry[s] {
                None => state,
                Some(prev) => {
                    let mut m = prev;
                    for (slot, cls) in m.iter_mut().enumerate() {
                        *cls = cls_join(*cls, state[slot]);
                    }
                    m
                }
            };
            if entry[s] != Some(merged) {
                entry[s] = Some(merged);
                if !queued[s] {
                    queued[s] = true;
                    work.push(s);
                }
            }
        }
    }

    for b in ctx.bbs.iter() {
        let Some(mut state) = entry[b] else { continue };
        for pc in ctx.bbs.range(b) {
            let instr = &ctx.program[pc];
            if matches!(instr.opcode, Opcode::Stg | Opcode::Sts) {
                if let Some(m) = instr.mem_ref() {
                    if state[m.base.index() as usize] == Cls::Uniform {
                        out.push(Diagnostic::warning(
                            Rule::MemoryRace,
                            pc,
                            format!(
                                "{} base R{} is warp-uniform: every lane stores to the same \
                                 address (intra-warp write race)",
                                instr.opcode,
                                m.base.index()
                            ),
                        ));
                    }
                }
            }
            uniformity_transfer(&mut state, instr);
        }
    }
    out
}

/// Rule 6: relocation soundness. After SB removal relocates the input
/// region, every surviving slot load must still address a laid-out SB and
/// find a backing word in `global_init` for every thread.
pub(crate) fn relocation(ptp: &Ptp) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(slots) = ptp.sb_slots else {
        return out;
    };
    let have: HashSet<u64> = ptp.global_init.iter().map(|&(addr, _)| addr).collect();
    for (pc, instr) in ptp.program.iter().enumerate() {
        if instr.opcode != Opcode::Ldg {
            continue;
        }
        let Some(m) = instr.mem_ref() else { continue };
        if m.base.index() != slots.base_reg {
            continue;
        }
        let word = m.offset as usize / 4;
        let sb = word / slots.words_per_sb;
        let w = word % slots.words_per_sb;
        if sb >= slots.sb_count {
            out.push(Diagnostic::error(
                Rule::Relocation,
                pc,
                format!(
                    "slot load addresses SB {sb}, beyond the relocated layout of {} SB(s)",
                    slots.sb_count
                ),
            ));
            continue;
        }
        let missing = (0..slots.threads)
            .filter(|&t| !have.contains(&slots.addr(t, sb, w)))
            .count();
        if missing > 0 {
            out.push(Diagnostic::error(
                Rule::Relocation,
                pc,
                format!(
                    "slot load of SB {sb} word {w} has no backing data word for \
                     {missing}/{} thread(s)",
                    slots.threads
                ),
            ));
        }
    }
    out
}
