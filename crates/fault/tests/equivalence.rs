//! Parallel/serial equivalence: the threaded, cone-pruned engine must
//! produce **bit-identical** results to the serial reference — same
//! `FaultSimReport` (per-pattern stats and detection log, cc-stamps
//! included), same fault-list state, same coverage — for every thread
//! count, in drop and non-drop modes, on combinational and sequential
//! netlists.

use warpstl_fault::{
    fault_simulate, fault_simulate_reference, FaultList, FaultSimConfig, FaultUniverse,
};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Builder, Netlist, PatternSeq};

/// A combinational netlist with > 63 collapsed faults (multiple batches).
fn combinational() -> Netlist {
    ModuleKind::DecoderUnit.build()
}

/// A sequential netlist: an accumulator-style datapath with DFF feedback.
fn sequential() -> Netlist {
    let mut b = Builder::new("seq4");
    let d = b.input_bus("d", 4);
    let en = b.input("en");
    let q: Vec<_> = (0..4).map(|_| b.dff_placeholder()).collect();
    let x = b.xor_bus(&d, &q);
    for (i, &qi) in q.iter().enumerate() {
        let nxt = b.mux(en, x[i], qi);
        b.connect_dff(qi, nxt);
    }
    let inv = b.not_bus(&q);
    b.output_bus("q", &q);
    b.output_bus("nq", &inv);
    b.finish()
}

fn pseudorandom_patterns(width: usize, count: usize, mut seed: u64) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for cc in 0..count {
        let bits: Vec<bool> = (0..width)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & 1 == 1
            })
            .collect();
        p.push_bits(cc as u64 * 3 + 7, &bits);
    }
    p
}

/// Runs reference and parallel engines side by side and asserts everything
/// observable is identical.
fn assert_equivalent(netlist: &Netlist, patterns: &PatternSeq, base: FaultSimConfig) {
    let universe = FaultUniverse::enumerate(netlist);

    let mut ref_list = FaultList::new(&universe);
    let ref_cfg = FaultSimConfig { threads: 1, ..base };
    let ref_report = fault_simulate_reference(netlist, patterns, &mut ref_list, &ref_cfg);

    for threads in [1usize, 2, 8] {
        let mut list = FaultList::new(&universe);
        let cfg = FaultSimConfig { threads, ..base };
        let report = fault_simulate(netlist, patterns, &mut list, &cfg);
        assert_eq!(
            report, ref_report,
            "FaultSimReport diverged at {threads} threads (drop={}, early_exit={})",
            base.drop_detected, base.early_exit
        );
        assert_eq!(
            list.coverage(),
            ref_list.coverage(),
            "coverage diverged at {threads} threads"
        );
        assert_eq!(
            list.to_report_text(),
            ref_list.to_report_text(),
            "fault-list state diverged at {threads} threads"
        );
        let dets: Vec<_> = list.detected().collect();
        let ref_dets: Vec<_> = ref_list.detected().collect();
        assert_eq!(
            dets, ref_dets,
            "detection cc-stamps diverged at {threads} threads"
        );
    }
}

fn all_modes() -> [FaultSimConfig; 3] {
    [
        FaultSimConfig::default(), // drop + early exit
        FaultSimConfig {
            early_exit: false,
            ..FaultSimConfig::default()
        },
        FaultSimConfig {
            drop_detected: false,
            early_exit: false,
            ..FaultSimConfig::default()
        },
    ]
}

#[test]
fn combinational_module_is_equivalent_in_every_mode() {
    let n = combinational();
    let u = FaultUniverse::enumerate(&n);
    assert!(u.collapsed_len() > 63, "need multiple batches");
    let p = pseudorandom_patterns(n.inputs().width(), 48, 0x5eed_cafe_f00d_0001);
    for cfg in all_modes() {
        assert_equivalent(&n, &p, cfg);
    }
}

#[test]
fn sequential_netlist_is_equivalent_in_every_mode() {
    let n = sequential();
    assert!(!n.dffs().is_empty());
    let p = pseudorandom_patterns(n.inputs().width(), 96, 0x5eed_cafe_f00d_0002);
    for cfg in all_modes() {
        assert_equivalent(&n, &p, cfg);
    }
}

#[test]
fn dropping_across_two_runs_is_equivalent() {
    // The shared-list flow: a second run only targets survivors. Both
    // engines must agree after each run.
    let n = combinational();
    let u = FaultUniverse::enumerate(&n);
    let p1 = pseudorandom_patterns(n.inputs().width(), 20, 1);
    let p2 = pseudorandom_patterns(n.inputs().width(), 20, 2);

    let cfg_ref = FaultSimConfig::default();
    let mut ref_list = FaultList::new(&u);
    let ref_r1 = fault_simulate_reference(&n, &p1, &mut ref_list, &cfg_ref);
    let ref_r2 = fault_simulate_reference(&n, &p2, &mut ref_list, &cfg_ref);

    let cfg = FaultSimConfig {
        threads: 4,
        ..FaultSimConfig::default()
    };
    let mut list = FaultList::new(&u);
    let r1 = fault_simulate(&n, &p1, &mut list, &cfg);
    let r2 = fault_simulate(&n, &p2, &mut list, &cfg);

    assert_eq!(r1, ref_r1);
    assert_eq!(r2, ref_r2);
    assert_eq!(list.to_report_text(), ref_list.to_report_text());
}

#[test]
fn empty_pattern_and_saturated_list_edge_cases() {
    let n = combinational();
    let u = FaultUniverse::enumerate(&n);
    let empty = PatternSeq::new(n.inputs().width());
    let cfg = FaultSimConfig {
        threads: 8,
        ..FaultSimConfig::default()
    };

    let mut list = FaultList::new(&u);
    let mut ref_list = FaultList::new(&u);
    let r = fault_simulate(&n, &empty, &mut list, &cfg);
    let rr = fault_simulate_reference(&n, &empty, &mut ref_list, &cfg);
    assert_eq!(r, rr);
    assert_eq!(r.total_detected(), 0);

    // Saturate the list, then re-run with dropping: zero targets.
    let p = pseudorandom_patterns(n.inputs().width(), 64, 99);
    fault_simulate(&n, &p, &mut list, &cfg);
    let before = list.to_report_text();
    let again = fault_simulate(&n, &p, &mut list, &cfg);
    assert_eq!(
        again.total_detected(),
        0,
        "dropping must skip already-detected faults"
    );
    assert_eq!(list.to_report_text(), before);
}

#[test]
fn explicit_thread_count_overrides_env_but_clamps_to_host() {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = FaultSimConfig {
        threads: 3,
        ..FaultSimConfig::default()
    };
    assert_eq!(cfg.resolved_threads(), 3.min(host));
    // A request far beyond any host is capped, never oversubscribed.
    let huge = FaultSimConfig {
        threads: 4096,
        ..FaultSimConfig::default()
    };
    assert_eq!(huge.resolved_threads(), host);
    let auto = FaultSimConfig::default();
    let resolved = auto.resolved_threads();
    assert!(resolved >= 1 && resolved <= host);
}
