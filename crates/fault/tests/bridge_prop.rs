//! Bridging-model soundness properties:
//!
//! 1. On small random combinational netlists under **exhaustive** 2^n
//!    stimulus, the parallel bridge simulator's detected set and
//!    first-detection stamps match a trivial scalar oracle that re-evaluates
//!    the whole netlist per fault per assignment with the wired value
//!    forced at both endpoints.
//! 2. The event and kernel bridge paths are **bit-identical** — same
//!    report (detections, stamps, tallies) and same list state — in drop
//!    and non-drop mode.
//! 3. Non-drop per-pattern activation tallies equal the count of bridges
//!    whose endpoint values differ under that assignment.

use proptest::prelude::*;

use warpstl_fault::{
    bridge_simulate, BridgeConfig, BridgeFault, BridgeUniverse, FaultSimConfig, SimBackend,
};
use warpstl_netlist::{Builder, GateKind, NetId, Netlist, PatternSeq};

/// One random gate: `kind` selects the operator, `a`/`b`/`c` pick operands
/// among the already-built nets (mod current count) — the same construction
/// as `kernel_prop`.
type GateSpec = (u8, u8, u8, u8);

fn build_netlist(n_inputs: usize, specs: &[GateSpec]) -> Netlist {
    let mut b = Builder::new("prop");
    let mut nets: Vec<NetId> = (0..n_inputs).map(|i| b.input(&format!("i{i}"))).collect();
    for &(kind, a, bb, c) in specs {
        let pick = |sel: u8| nets[sel as usize % nets.len()];
        let (x, y, z) = (pick(a), pick(bb), pick(c));
        let net = match kind % 9 {
            0 => b.and(x, y),
            1 => b.or(x, y),
            2 => b.nand(x, y),
            3 => b.nor(x, y),
            4 => b.xor(x, y),
            5 => b.xnor(x, y),
            6 => b.not(x),
            7 => b.buf(x),
            _ => b.mux(x, y, z),
        };
        nets.push(net);
    }
    let n_out = nets.len().clamp(1, 4);
    for (k, &net) in nets.iter().rev().take(n_out).enumerate() {
        b.output(&format!("o{k}"), net);
    }
    b.finish()
}

fn exhaustive(width: usize) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for v in 0..(1u64 << width) {
        p.push_value(v, v);
    }
    p
}

/// Scalar single-assignment evaluation; `force` injects the wired value
/// `w` at both endpoint nets as their outputs are computed (exact for
/// non-feedback pairs — the only kind the sampler admits).
fn scalar_eval(
    netlist: &Netlist,
    assignment: u64,
    force: Option<(usize, usize, bool)>,
) -> Vec<bool> {
    let gates = netlist.gates();
    let mut vals = vec![false; gates.len()];
    for (bit_pos, net) in netlist.inputs().nets().iter().enumerate() {
        vals[net.index()] = (assignment >> bit_pos) & 1 == 1;
    }
    for i in 0..gates.len() {
        let g = &gates[i];
        let v = match g.kind {
            GateKind::Input => vals[i],
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Dff => unreachable!("combinational only"),
            kind => {
                let p = g.pins;
                let word = |b: bool| if b { !0u64 } else { 0 };
                let a = word(vals[p[0].index()]);
                let (b, c) = match kind.arity() {
                    2 => (word(vals[p[1].index()]), 0),
                    3 => (word(vals[p[1].index()]), word(vals[p[2].index()])),
                    _ => (0, 0),
                };
                kind.eval(a, b, c) & 1 == 1
            }
        };
        vals[i] = match force {
            Some((a, b, w)) if i == a || i == b => w,
            _ => v,
        };
    }
    vals
}

/// The oracle: the first assignment (in 0..2^n order) at which forcing the
/// bridge's wired value changes any output, or `None` if undetectable.
fn oracle_first_detection(netlist: &Netlist, f: BridgeFault, width: usize) -> Option<u64> {
    for v in 0..(1u64 << width) {
        let good = scalar_eval(netlist, v, None);
        let w = f.kind.wired(good[f.a.index()], good[f.b.index()]);
        let faulty = scalar_eval(netlist, v, Some((f.a.index(), f.b.index(), w)));
        let differs = netlist
            .outputs()
            .nets()
            .iter()
            .any(|o| good[o.index()] != faulty[o.index()]);
        if differs {
            return Some(v);
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bridge_simulation_matches_exhaustive_oracle(
        n_inputs in 2usize..6,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..32,
        ),
        seed in any::<u64>(),
    ) {
        let netlist = build_netlist(n_inputs, &specs);
        prop_assert!(netlist.is_combinational());
        let width = netlist.inputs().width();
        let cfg = BridgeConfig { pairs: 16, seed };
        let universe = BridgeUniverse::sample(&netlist, &cfg);
        let patterns = exhaustive(width);

        let mut list = universe.new_list();
        bridge_simulate(&netlist, &patterns, &mut list, &FaultSimConfig::default());

        for (id, &f) in universe.faults().iter().enumerate() {
            let expected = oracle_first_detection(&netlist, f, width);
            match (expected, list.status(id)) {
                (None, warpstl_fault::FaultStatus::Undetected) => {}
                (Some(v), warpstl_fault::FaultStatus::Detected { cc, pattern, .. }) => {
                    // Drop mode over an in-order sweep records the *first*
                    // detecting assignment; cc stamps are the assignment
                    // values here.
                    prop_assert_eq!(pattern as u64, v, "{} first-detection pattern", f);
                    prop_assert_eq!(cc, v, "{} first-detection cc", f);
                }
                (exp, got) => {
                    prop_assert!(false, "{}: oracle {:?}, simulator {:?}", f, exp, got);
                }
            }
        }
    }

    #[test]
    fn bridge_event_and_kernel_paths_are_bit_identical(
        n_inputs in 2usize..6,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..48,
        ),
        seed in any::<u64>(),
        drop in any::<bool>(),
    ) {
        let netlist = build_netlist(n_inputs, &specs);
        let universe = BridgeUniverse::sample(&netlist, &BridgeConfig { pairs: 48, seed });
        let patterns = exhaustive(netlist.inputs().width());
        let cfg = |backend| FaultSimConfig {
            drop_detected: drop,
            early_exit: drop,
            threads: 1,
            backend,
        };

        let mut event_list = universe.new_list();
        let event = bridge_simulate(&netlist, &patterns, &mut event_list, &cfg(SimBackend::Event));
        let mut kernel_list = universe.new_list();
        let kernel =
            bridge_simulate(&netlist, &patterns, &mut kernel_list, &cfg(SimBackend::Kernel));

        prop_assert_eq!(&kernel, &event, "report diverged");
        prop_assert_eq!(
            kernel_list.to_report_text(),
            event_list.to_report_text(),
            "list state diverged"
        );
    }

    #[test]
    fn non_drop_activation_counts_differing_endpoints(
        n_inputs in 2usize..5,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..24,
        ),
        seed in any::<u64>(),
    ) {
        let netlist = build_netlist(n_inputs, &specs);
        let width = netlist.inputs().width();
        let universe = BridgeUniverse::sample(&netlist, &BridgeConfig { pairs: 16, seed });
        let patterns = exhaustive(width);
        let cfg = FaultSimConfig {
            drop_detected: false,
            early_exit: false,
            threads: 1,
            backend: SimBackend::Event,
        };
        let mut list = universe.new_list();
        let report = bridge_simulate(&netlist, &patterns, &mut list, &cfg);

        for (t, stats) in report.patterns().iter().enumerate() {
            let good = scalar_eval(&netlist, t as u64, None);
            let expected = universe
                .faults()
                .iter()
                .filter(|f| good[f.a.index()] != good[f.b.index()])
                .count() as u32;
            prop_assert_eq!(stats.activated, expected, "pattern {}", t);
        }
    }
}
