//! Property: the levelized SoA batch kernel is **bit-identical** to the
//! event path on random combinational netlists and random pattern
//! sequences — same report (detections, stamps, tallies) and same fault
//! list state — at both block widths, in drop and non-drop mode, and
//! across pattern counts that exercise every block shape (narrow-only
//! spans, exact wide blocks, and wide blocks with a 64-bit remainder and a
//! masked tail word).

use proptest::prelude::*;

use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse, SimBackend};
use warpstl_netlist::{Builder, NetId, Netlist, PatternSeq};

/// One random gate: `kind` selects the operator, `a`/`b`/`c` pick
/// operands among the already-built nets (mod current count).
type GateSpec = (u8, u8, u8, u8);

/// Builds a random combinational netlist from a gate-spec list (same
/// construction as `dominance_prop`): every gate reads already-existing
/// nets, and the tail nets become outputs so late logic stays observable.
fn build_netlist(n_inputs: usize, specs: &[GateSpec]) -> Netlist {
    let mut b = Builder::new("prop");
    let mut nets: Vec<NetId> = (0..n_inputs).map(|i| b.input(&format!("i{i}"))).collect();
    for &(kind, a, bb, c) in specs {
        let pick = |sel: u8| nets[sel as usize % nets.len()];
        let (x, y, z) = (pick(a), pick(bb), pick(c));
        let net = match kind % 9 {
            0 => b.and(x, y),
            1 => b.or(x, y),
            2 => b.nand(x, y),
            3 => b.nor(x, y),
            4 => b.xor(x, y),
            5 => b.xnor(x, y),
            6 => b.not(x),
            7 => b.buf(x),
            _ => b.mux(x, y, z),
        };
        nets.push(net);
    }
    let n_out = nets.len().clamp(1, 4);
    for (k, &net) in nets.iter().rev().take(n_out).enumerate() {
        b.output(&format!("o{k}"), net);
    }
    b.finish()
}

fn pseudorandom_patterns(width: usize, count: usize, mut seed: u64) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for cc in 0..count {
        let bits: Vec<bool> = (0..width)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & 1 == 1
            })
            .collect();
        p.push_bits(cc as u64, &bits);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_is_bit_identical_to_event_path(
        n_inputs in 2usize..6,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..48,
        ),
        seed in any::<u64>(),
        n_pat in 1usize..96,
        drop in any::<bool>(),
    ) {
        let netlist = build_netlist(n_inputs, &specs);
        prop_assert!(netlist.is_combinational());
        let universe = FaultUniverse::enumerate(&netlist);
        let patterns = pseudorandom_patterns(netlist.inputs().width(), n_pat, seed | 1);
        let cfg = |backend| FaultSimConfig {
            drop_detected: drop,
            early_exit: drop,
            threads: 1,
            backend,
        };

        let mut event_list = FaultList::new(&universe);
        let event = fault_simulate(&netlist, &patterns, &mut event_list, &cfg(SimBackend::Event));

        for backend in [SimBackend::Kernel64, SimBackend::Kernel] {
            let mut list = FaultList::new(&universe);
            let report = fault_simulate(&netlist, &patterns, &mut list, &cfg(backend));
            prop_assert_eq!(&report, &event, "report diverged under {}", backend);
            prop_assert_eq!(
                list.to_report_text(),
                event_list.to_report_text(),
                "list state diverged under {}",
                backend
            );
        }
    }
}

/// The identity also survives multi-pattern spans that cross the wide
/// block boundary on a real module, with threading in the mix: 320
/// patterns = one 256-bit block + one masked narrow remainder.
#[test]
fn module_kernel_identity_across_block_shapes() {
    let netlist = warpstl_netlist::modules::ModuleKind::DecoderUnit.build();
    let universe = FaultUniverse::enumerate(&netlist);
    // 64 (narrow only), 256 (exactly one wide block), 320 (wide + narrow),
    // 100 (narrow + masked tail).
    for n_pat in [64usize, 256, 320, 100] {
        let patterns =
            pseudorandom_patterns(netlist.inputs().width(), n_pat, 0xb10c ^ n_pat as u64);
        for threads in [1usize, 3] {
            let cfg = |backend| FaultSimConfig {
                threads,
                backend,
                ..FaultSimConfig::default()
            };
            let mut event_list = FaultList::new(&universe);
            let event = fault_simulate(
                &netlist,
                &patterns,
                &mut event_list,
                &cfg(SimBackend::Event),
            );
            let mut kernel_list = FaultList::new(&universe);
            let kernel = fault_simulate(
                &netlist,
                &patterns,
                &mut kernel_list,
                &cfg(SimBackend::Kernel),
            );
            assert_eq!(kernel, event, "{n_pat} patterns, {threads} threads");
            assert_eq!(
                kernel_list.to_report_text(),
                event_list.to_report_text(),
                "{n_pat} patterns, {threads} threads"
            );
        }
    }
}
