//! Engine edge cases: degenerate inputs (no patterns, no target faults)
//! and the 63-fault lane-mask boundary, where a batch fills every faulty
//! lane of the 64-bit word and `lanes_mask` must be `!1` (the shifted-mask
//! formula `1 << 64` would overflow). Each case is checked against the
//! serial reference for bit-identity and, where relevant, against the
//! observability counters.

use warpstl_fault::{
    fault_simulate, fault_simulate_observed, fault_simulate_reference, FaultList, FaultSimConfig,
    FaultUniverse,
};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Netlist, PatternSeq};
use warpstl_obs::Recorder;

fn module() -> Netlist {
    ModuleKind::DecoderUnit.build()
}

fn pseudorandom_patterns(width: usize, count: usize, mut seed: u64) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for cc in 0..count as u64 {
        let bits: Vec<bool> = (0..width)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & 1 == 1
            })
            .collect();
        p.push_bits(cc, &bits);
    }
    p
}

/// Leaves exactly `n` faults undetected (the first `n` ids) so a drop-mode
/// run targets exactly one partial/full batch.
fn list_with_undetected(universe: &FaultUniverse, n: usize) -> FaultList {
    let mut list = FaultList::new(universe);
    list.begin_run();
    for id in n..list.len() {
        list.mark_detected(id, 0, 0);
    }
    assert_eq!(list.undetected().count(), n);
    list
}

#[test]
fn zero_patterns_record_an_empty_run() {
    let n = module();
    let universe = FaultUniverse::enumerate(&n);
    let empty = PatternSeq::new(n.inputs().width());
    let rec = Recorder::new();

    let mut list = FaultList::new(&universe);
    let report = fault_simulate_observed(
        &n,
        &empty,
        &mut list,
        &FaultSimConfig::default(),
        Some(&rec),
    );
    assert_eq!(report.total_detected(), 0);
    assert_eq!(list.detected().count(), 0);

    let m = rec.metrics();
    assert_eq!(m.counter("fsim.runs"), 1);
    assert_eq!(m.counter("fsim.patterns"), 0);
    assert_eq!(m.counter("fsim.detections"), 0);
    assert_eq!(m.counter("fsim.batch_steps"), 0);
    // The run and worker spans still bracket the (empty) work.
    let spans = rec.spans();
    assert!(spans.iter().any(|s| s.name == "fsim.run"));
    assert!(spans.iter().any(|s| s.name == "fsim.worker"));
}

#[test]
fn zero_target_faults_is_a_clean_noop() {
    let n = module();
    let universe = FaultUniverse::enumerate(&n);
    let pats = pseudorandom_patterns(n.inputs().width(), 16, 0xed6e_0001);
    let cfg = FaultSimConfig::default(); // drop mode: targets = undetected
    let rec = Recorder::new();

    // Every fault pre-detected: the engine plans zero batches.
    let mut list = list_with_undetected(&universe, 0);
    let before = list.to_report_text();
    let report = fault_simulate_observed(&n, &pats, &mut list, &cfg, Some(&rec));
    assert_eq!(report.total_detected(), 0);
    assert_eq!(list.to_report_text(), before);

    let mut ref_list = list_with_undetected(&universe, 0);
    let ref_report = fault_simulate_reference(&n, &pats, &mut ref_list, &cfg);
    assert_eq!(report, ref_report);

    let m = rec.metrics();
    assert_eq!(m.counter("fsim.target_faults"), 0);
    assert_eq!(m.counter("fsim.batches"), 0);
    assert_eq!(m.counter("fsim.detections"), 0);
}

/// Runs parallel and reference engines from identically prepared lists and
/// asserts bit-identical reports and list states.
fn assert_boundary_equivalent(undetected: usize) {
    let n = module();
    let universe = FaultUniverse::enumerate(&n);
    assert!(universe.collapsed_len() > 64, "need enough faults");
    let pats = pseudorandom_patterns(n.inputs().width(), 32, 0xed6e_0002);

    for threads in [1usize, 4] {
        let cfg = FaultSimConfig {
            threads,
            ..FaultSimConfig::default()
        };
        let mut list = list_with_undetected(&universe, undetected);
        let report = fault_simulate(&n, &pats, &mut list, &cfg);

        let mut ref_list = list_with_undetected(&universe, undetected);
        let ref_report = fault_simulate_reference(&n, &pats, &mut ref_list, &cfg);

        assert_eq!(
            report, ref_report,
            "report diverged at {undetected} targets, {threads} threads"
        );
        assert_eq!(
            list.to_report_text(),
            ref_list.to_report_text(),
            "list state diverged at {undetected} targets, {threads} threads"
        );
    }
}

#[test]
fn lane_mask_boundary_at_62_63_and_64_faults() {
    // 62: partial batch, shifted mask. 63: full batch, `lanes_mask = !1`
    // (the overflow-prone boundary). 64: a full batch plus a 1-fault batch.
    for undetected in [62usize, 63, 64] {
        assert_boundary_equivalent(undetected);
    }
}

#[test]
fn full_batch_records_63_lane_detections() {
    // Independent of the reference comparison, the 63-fault batch must be
    // able to *detect on every faulty lane*: lanes_mask covers bits 1..=63.
    let n = module();
    let universe = FaultUniverse::enumerate(&n);
    let pats = pseudorandom_patterns(n.inputs().width(), 64, 0xed6e_0003);
    let rec = Recorder::new();

    let mut list = list_with_undetected(&universe, 63);
    let cfg = FaultSimConfig {
        drop_detected: true,
        early_exit: false,
        threads: 1,
        ..FaultSimConfig::default()
    };
    fault_simulate_observed(&n, &pats, &mut list, &cfg, Some(&rec));

    let m = rec.metrics();
    assert_eq!(m.counter("fsim.target_faults"), 63);
    assert_eq!(m.counter("fsim.batches"), 1);
    // The DU saturates quickly under pseudorandom patterns: a healthy
    // majority of the 63 lanes must report detections through the mask.
    assert!(
        m.counter("fsim.detections") > 32,
        "only {} of 63 boundary-batch lanes detected",
        m.counter("fsim.detections")
    );
}
