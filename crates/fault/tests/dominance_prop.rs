//! Property: dominance-guided fault simulation reports coverage over the
//! full universe **identical** to the equivalence-only run — same detected
//! class set, same `FaultList::coverage()` — on random combinational
//! netlists and random pattern sequences. Detection *stamps* of inherited
//! dominators may legally differ (they take the supporter's earliest
//! stamp), so the property compares the detected id set, not stamps.

use proptest::prelude::*;

use warpstl_analyze::Scoap;
use warpstl_fault::{
    fault_simulate, fault_simulate_guided, FaultList, FaultSimConfig, FaultUniverse, SimGuide,
};
use warpstl_netlist::{Builder, NetId, Netlist, PatternSeq};

/// One random gate: `kind` selects the operator, `a`/`b`/`c` pick
/// operands among the already-built nets (mod current count).
type GateSpec = (u8, u8, u8, u8);

/// Builds a random combinational netlist from a gate-spec list. Every
/// gate reads already-existing nets, so the result is always valid; the
/// last few nets become outputs so late logic stays observable.
fn build_netlist(n_inputs: usize, specs: &[GateSpec]) -> Netlist {
    let mut b = Builder::new("prop");
    let mut nets: Vec<NetId> = (0..n_inputs).map(|i| b.input(&format!("i{i}"))).collect();
    for &(kind, a, bb, c) in specs {
        let pick = |sel: u8| nets[sel as usize % nets.len()];
        let (x, y, z) = (pick(a), pick(bb), pick(c));
        let net = match kind % 9 {
            0 => b.and(x, y),
            1 => b.or(x, y),
            2 => b.nand(x, y),
            3 => b.nor(x, y),
            4 => b.xor(x, y),
            5 => b.xnor(x, y),
            6 => b.not(x),
            7 => b.buf(x),
            _ => b.mux(x, y, z),
        };
        nets.push(net);
    }
    // Observe the tail: outputs cover the most recently built logic, so
    // deep gates are not trivially unobservable.
    let n_out = nets.len().clamp(1, 4);
    for (k, &net) in nets.iter().rev().take(n_out).enumerate() {
        b.output(&format!("o{k}"), net);
    }
    b.finish()
}

fn pseudorandom_patterns(width: usize, count: usize, mut seed: u64) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for cc in 0..count {
        let bits: Vec<bool> = (0..width)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & 1 == 1
            })
            .collect();
        p.push_bits(cc as u64, &bits);
    }
    p
}

fn detected_ids(list: &FaultList) -> Vec<usize> {
    list.detected().map(|(id, _, _, _)| id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dominance_run_matches_equivalence_only_coverage(
        n_inputs in 2usize..6,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..48,
        ),
        seed in any::<u64>(),
        n_pat in 1usize..24,
    ) {
        let netlist = build_netlist(n_inputs, &specs);
        prop_assert!(netlist.is_combinational());
        let universe = FaultUniverse::enumerate(&netlist);
        let dominance = universe.dominance(&netlist);
        let keys = Scoap::compute(&netlist).observability_keys();
        let patterns = pseudorandom_patterns(netlist.inputs().width(), n_pat, seed | 1);
        let cfg = FaultSimConfig::default();

        // Baseline: equivalence-collapsed list, every class simulated.
        let mut base_list = FaultList::new(&universe);
        fault_simulate(&netlist, &patterns, &mut base_list, &cfg);

        // Guided: dominance reduction + hardest-first ordering.
        let guide = SimGuide {
            dominance: Some(&dominance),
            order_keys: Some(&keys),
            ..SimGuide::default()
        };
        let mut guided_list = FaultList::new(&universe);
        let report =
            fault_simulate_guided(&netlist, &patterns, &mut guided_list, &cfg, None, &guide);

        prop_assert_eq!(guided_list.coverage(), base_list.coverage());
        prop_assert_eq!(detected_ids(&guided_list), detected_ids(&base_list));
        // The report's total agrees with the list (every detection was
        // tallied exactly once, inherited ones included).
        prop_assert_eq!(report.total_detected() as usize, detected_ids(&guided_list).len());
    }

    #[test]
    fn ordering_alone_is_fully_transparent(
        n_inputs in 2usize..5,
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            4..32,
        ),
        seed in any::<u64>(),
    ) {
        // With only order_keys set (no dominance), the detected set AND
        // the per-fault stamps must match: first detections are
        // batch-composition-independent.
        let netlist = build_netlist(n_inputs, &specs);
        let universe = FaultUniverse::enumerate(&netlist);
        let keys = Scoap::compute(&netlist).observability_keys();
        let patterns = pseudorandom_patterns(netlist.inputs().width(), 16, seed | 1);
        let cfg = FaultSimConfig::default();

        let mut base_list = FaultList::new(&universe);
        fault_simulate(&netlist, &patterns, &mut base_list, &cfg);

        let guide = SimGuide { order_keys: Some(&keys), ..SimGuide::default() };
        let mut guided_list = FaultList::new(&universe);
        fault_simulate_guided(&netlist, &patterns, &mut guided_list, &cfg, None, &guide);

        prop_assert_eq!(guided_list.to_report_text(), base_list.to_report_text());
    }
}

/// The same identity holds on a real module across two chained drop-mode
/// runs (the pipeline's shared-list flow).
#[test]
fn module_dominance_coverage_identity_across_runs() {
    let netlist = warpstl_netlist::modules::ModuleKind::DecoderUnit.build();
    let universe = FaultUniverse::enumerate(&netlist);
    let dominance = universe.dominance(&netlist);
    assert!(!dominance.is_identity());
    let keys = Scoap::compute(&netlist).observability_keys();
    let p1 = pseudorandom_patterns(netlist.inputs().width(), 24, 0xd0d0_0001);
    let p2 = pseudorandom_patterns(netlist.inputs().width(), 24, 0xd0d0_0002);
    let cfg = FaultSimConfig::default();

    let mut base_list = FaultList::new(&universe);
    fault_simulate(&netlist, &p1, &mut base_list, &cfg);
    fault_simulate(&netlist, &p2, &mut base_list, &cfg);

    let guide = SimGuide {
        dominance: Some(&dominance),
        order_keys: Some(&keys),
        ..SimGuide::default()
    };
    let mut guided_list = FaultList::new(&universe);
    fault_simulate_guided(&netlist, &p1, &mut guided_list, &cfg, None, &guide);
    fault_simulate_guided(&netlist, &p2, &mut guided_list, &cfg, None, &guide);

    assert_eq!(guided_list.coverage(), base_list.coverage());
    assert_eq!(detected_ids(&guided_list), detected_ids(&base_list));
}
