//! The Fault Sim Report: per-pattern activation and detection statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::FaultId;

/// Statistics for one injected test pattern (one clock cycle at the target
/// module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternStats {
    /// The clock-cycle stamp of the pattern.
    pub cc: u64,
    /// Faults *activated* by the pattern (site carries the opposite of the
    /// stuck value in the good machine).
    pub activated: u32,
    /// Faults newly *detected* at the module outputs by this pattern.
    pub detected: u32,
}

/// The paper's stage-3 output: "a detailed report which contains a list of
/// each test pattern injected, the number of activated faults, and the
/// number of detected faults per pattern."
///
/// # Examples
///
/// ```
/// use warpstl_fault::FaultSimReport;
///
/// let mut r = FaultSimReport::new();
/// r.record_pattern(10, 4, 1);
/// r.record_pattern(11, 3, 0);
/// assert_eq!(r.total_detected(), 1);
/// assert_eq!(r.detections_at_cc(10), 1);
/// assert_eq!(r.detections_at_cc(11), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSimReport {
    patterns: Vec<PatternStats>,
    detections: Vec<(FaultId, u64, usize)>,
    by_cc: BTreeMap<u64, u32>,
    untestable: u32,
}

impl FaultSimReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> FaultSimReport {
        FaultSimReport::default()
    }

    /// Appends a pattern's statistics. Patterns sharing a `cc` accumulate.
    pub fn record_pattern(&mut self, cc: u64, activated: u32, detected: u32) {
        self.patterns.push(PatternStats {
            cc,
            activated,
            detected,
        });
        if detected > 0 {
            *self.by_cc.entry(cc).or_insert(0) += detected;
        }
    }

    /// Appends an individual detection event.
    pub fn record_detection(&mut self, fault: FaultId, cc: u64, pattern: usize) {
        self.detections.push((fault, cc, pattern));
    }

    /// Records how many target faults the run excluded as statically
    /// proven untestable, so reports account for them explicitly instead
    /// of silently inflating the undetected count.
    pub fn set_untestable(&mut self, untestable: u32) {
        self.untestable = untestable;
    }

    /// Target faults excluded as statically proven untestable.
    #[must_use]
    pub fn untestable_count(&self) -> u32 {
        self.untestable
    }

    /// Merges another report (used when a module has several instances whose
    /// pattern streams are simulated separately).
    pub fn merge(&mut self, other: &FaultSimReport) {
        self.patterns.extend_from_slice(&other.patterns);
        self.detections.extend_from_slice(&other.detections);
        for (&cc, &d) in &other.by_cc {
            *self.by_cc.entry(cc).or_insert(0) += d;
        }
        // Instances of one module share its fault universe, so the
        // untestable set is common, not additive.
        self.untestable = self.untestable.max(other.untestable);
    }

    /// Per-pattern statistics in simulation order.
    #[must_use]
    pub fn patterns(&self) -> &[PatternStats] {
        &self.patterns
    }

    /// Individual `(fault, cc, pattern)` detection events.
    #[must_use]
    pub fn detections(&self) -> &[(FaultId, u64, usize)] {
        &self.detections
    }

    /// Total newly-detected faults.
    #[must_use]
    pub fn total_detected(&self) -> u32 {
        self.by_cc.values().sum()
    }

    /// Newly-detected faults at clock cycle `cc` — the quantity the
    /// instruction-labeling algorithm queries (`FSR_cc` in the paper's
    /// Fig. 2).
    #[must_use]
    pub fn detections_at_cc(&self, cc: u64) -> u32 {
        self.by_cc.get(&cc).copied().unwrap_or(0)
    }

    /// Newly-detected faults within `[start, end)` clock cycles.
    #[must_use]
    pub fn detections_in_range(&self, start: u64, end: u64) -> u32 {
        self.by_cc.range(start..end).map(|(_, &d)| d).sum()
    }

    /// The clock cycles at which at least one fault was newly detected.
    pub fn detecting_ccs(&self) -> impl Iterator<Item = u64> + '_ {
        self.by_cc.keys().copied()
    }

    /// The cumulative detection curve: `(cc, detections so far)` at every
    /// detecting clock cycle, in time order. Divide the counts by the
    /// fault-universe size for a coverage-versus-test-time curve — the plot
    /// behind the paper's duration/coverage trade-off and the reordering
    /// extension.
    ///
    /// # Examples
    ///
    /// ```
    /// use warpstl_fault::FaultSimReport;
    ///
    /// let mut r = FaultSimReport::new();
    /// r.record_pattern(10, 1, 3);
    /// r.record_pattern(20, 1, 0);
    /// r.record_pattern(30, 1, 2);
    /// assert_eq!(r.detection_curve(), vec![(10, 3), (30, 5)]);
    /// ```
    #[must_use]
    pub fn detection_curve(&self) -> Vec<(u64, u32)> {
        let mut acc = 0u32;
        self.by_cc
            .iter()
            .map(|(&cc, &d)| {
                acc += d;
                (cc, acc)
            })
            .collect()
    }
}

impl fmt::Display for FaultSimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Fault Sim Report: {} patterns", self.patterns.len())?;
        writeln!(f, "# cc activated detected")?;
        for p in &self.patterns {
            writeln!(f, "{} {} {}", p.cc, p.activated, p.detected)?;
        }
        writeln!(f, "# untestable (pruned): {}", self.untestable)?;
        writeln!(f, "# total detected: {}", self.total_detected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_queries() {
        let mut r = FaultSimReport::new();
        r.record_pattern(5, 1, 2);
        r.record_pattern(9, 1, 1);
        r.record_pattern(20, 1, 4);
        assert_eq!(r.detections_in_range(0, 10), 3);
        assert_eq!(r.detections_in_range(10, 30), 4);
        assert_eq!(r.detections_in_range(21, 30), 0);
        assert_eq!(r.detecting_ccs().collect::<Vec<_>>(), vec![5, 9, 20]);
    }

    #[test]
    fn same_cc_accumulates() {
        let mut r = FaultSimReport::new();
        r.record_pattern(7, 0, 1);
        r.record_pattern(7, 0, 2);
        assert_eq!(r.detections_at_cc(7), 3);
        assert_eq!(r.patterns().len(), 2);
    }

    #[test]
    fn merge_combines() {
        let mut a = FaultSimReport::new();
        a.record_pattern(1, 2, 1);
        a.record_detection(0, 1, 0);
        let mut b = FaultSimReport::new();
        b.record_pattern(1, 0, 2);
        b.record_pattern(3, 0, 1);
        a.merge(&b);
        assert_eq!(a.detections_at_cc(1), 3);
        assert_eq!(a.total_detected(), 4);
        assert_eq!(a.patterns().len(), 3);
    }

    #[test]
    fn detection_curve_is_monotone() {
        let mut r = FaultSimReport::new();
        r.record_pattern(5, 0, 2);
        r.record_pattern(1, 0, 1);
        r.record_pattern(9, 0, 4);
        let curve = r.detection_curve();
        assert_eq!(curve, vec![(1, 1), (5, 3), (9, 7)]);
        assert!(curve
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(curve.last().unwrap().1, r.total_detected());
    }

    #[test]
    fn display_is_parseable_text() {
        let mut r = FaultSimReport::new();
        r.record_pattern(2, 5, 1);
        let s = r.to_string();
        assert!(s.contains("2 5 1"));
        assert!(s.contains("total detected: 1"));
    }
}
