//! The parallel fault-simulation engine: batch-level threading plus
//! fanout-cone pruning.
//!
//! [`fault_simulate`](crate::fault_simulate) partitions its target faults
//! into 63-fault batches (63 faulty machines + the good machine per 64-bit
//! word). The batches are *fully independent*: the target snapshot is taken
//! once per run, every fault belongs to exactly one batch, and the
//! [`FaultList`] is only written after all batches finish. That independence
//! is exploited twice:
//!
//! 1. **Threading** — batches are split into contiguous ranges and fanned
//!    out over a scoped worker pool (`std::thread::scope`; worker count from
//!    [`FaultSimConfig::threads`](crate::FaultSimConfig::threads), the
//!    `WARPSTL_THREADS` environment variable, or the machine's available
//!    parallelism). Each worker fills private buffers which are merged in
//!    global batch order afterwards, so the resulting [`FaultSimReport`] is
//!    **bit-identical** to a serial run: serial detections are emitted
//!    batch-major, and per-pattern tallies are exact integer sums, which are
//!    order-independent.
//!
//! 2. **Fanout-cone pruning** — a gate's lanes can differ from the good
//!    machine only if the gate is an injection site or (transitively) reads
//!    one, i.e. only inside the union fanout cone
//!    ([`FanoutCones`]) of the batch's ≤ 63 injection sites. The engine
//!    therefore evaluates the good machine once per pattern per batch
//!    *group* and re-evaluates only cone gates per batch, instead of the
//!    whole netlist per batch.

use warpstl_netlist::{FanoutCones, Gate, GateKind, Levelization, Netlist, PatternSeq};
use warpstl_obs::{Metrics, Obs, ObsExt};

use crate::{
    Fault, FaultId, FaultList, FaultSimConfig, FaultSimReport, FaultSite, FaultStatus, Polarity,
    SimBackend, SimGuide,
};

/// How many batches a worker interleaves in one pattern sweep. Each batch in
/// a group costs a full-width value buffer, so the group bounds memory while
/// still amortizing the shared good-machine evaluation across its members.
const GROUP: usize = 16;

/// The host's available parallelism, queried **once per process** and
/// cached. The engine resolves its worker budget on every invocation, and a
/// long-running daemon resolves it once per job on top of that — re-querying
/// the OS each time is wasted syscall traffic and, worse, lets two layers
/// (a serve worker pool and the engine inside each worker) disagree about
/// the budget mid-flight. One cached value means every layer divides the
/// same number.
#[must_use]
pub fn host_parallelism() -> usize {
    static HOST: warpstl_sync::OnceLock<usize> = warpstl_sync::OnceLock::new();
    *HOST.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Resolves the worker count: explicit config, then `WARPSTL_THREADS`, then
/// the machine's available parallelism — always clamped to the host's
/// available parallelism (resolved once per process, see
/// [`host_parallelism`]). Oversubscribing OS threads on a smaller host only
/// adds scheduling overhead (up to 20 % on a 1-core host in `BENCH_fsim`),
/// and the engine's results are bit-identical for every worker count, so
/// capping is safe.
pub(crate) fn resolve_threads(config: &FaultSimConfig) -> usize {
    let host = host_parallelism();
    if config.threads > 0 {
        return config.threads.min(host);
    }
    // An invalid WARPSTL_THREADS warns once per process (the engine is
    // called in loops) via the shared helper, then falls back to auto.
    warpstl_sync::env::parsed_var(
        "WARPSTL_THREADS",
        "a positive integer",
        "available parallelism",
        |s| s.trim().parse::<usize>().ok().filter(|n| *n > 0),
    )
    .map_or(host, |n| n.min(host))
}

/// Resolves the simulation backend: explicit config, then
/// `WARPSTL_SIM_BACKEND`, then auto — and every kernel choice falls back to
/// the event path on sequential netlists, since only the event path carries
/// flip-flop state across patterns. Both paths produce bit-identical
/// results, so this is purely a performance knob (and, like the thread
/// count, it never enters artifact-cache keys).
pub(crate) fn resolve_backend(config: &FaultSimConfig, combinational: bool) -> SimBackend {
    let requested = if config.backend != SimBackend::Auto {
        config.backend
    } else {
        // An unknown WARPSTL_SIM_BACKEND warns once per process via the
        // shared helper, then runs on auto.
        warpstl_sync::env::parsed_var(
            "WARPSTL_SIM_BACKEND",
            "auto, event, or kernel",
            "auto",
            SimBackend::parse,
        )
        .unwrap_or(SimBackend::Auto)
    };
    match requested {
        SimBackend::Event => SimBackend::Event,
        SimBackend::Auto => {
            if combinational {
                SimBackend::Kernel
            } else {
                SimBackend::Event
            }
        }
        kernel => {
            if combinational {
                kernel
            } else {
                SimBackend::Event
            }
        }
    }
}

/// Read-only state shared by every worker.
pub(crate) struct Ctx<'a> {
    pub(crate) gates: &'a [Gate],
    pub(crate) patterns: &'a PatternSeq,
    pub(crate) cones: &'a FanoutCones,
    pub(crate) in_nets: &'a [usize],
    pub(crate) out_nets: &'a [usize],
    pub(crate) dff_nets: &'a [usize],
    pub(crate) config: FaultSimConfig,
    /// The resolved backend — never [`SimBackend::Auto`], and never a
    /// kernel variant when `dff_nets` is non-empty.
    pub(crate) backend: SimBackend,
    /// Rank-major netlist layout; present whenever `backend` is a kernel
    /// variant (borrowed from the guide or levelized per run).
    pub(crate) levels: Option<&'a Levelization>,
}

/// One 63-fault batch, fully resolved for simulation: injection masks are
/// stored per *cone position* so the pattern loop never touches full-width
/// mask tables.
struct BatchPlan {
    /// `(fault id, fault)` per lane; lane `i + 1` simulates `faults[i]`.
    faults: Vec<(FaultId, Fault)>,
    /// Bits of the faulty lanes (bit 0, the good machine, excluded).
    lanes_mask: u64,
    /// Union fanout cone of the injection sites, ascending gate indices
    /// (ascending is a topological order of the combinational logic).
    cone: Vec<u32>,
    /// Nets read by cone gates but not in the cone: they always carry the
    /// good-machine value and are copied in before each cone evaluation.
    boundary: Vec<u32>,
    /// Stuck-at output masks, aligned with `cone`.
    out_sa0: Vec<u64>,
    out_sa1: Vec<u64>,
    /// Stuck-at input-pin masks, aligned with `cone`.
    pin_sa0: Vec<[u64; 3]>,
    pin_sa1: Vec<[u64; 3]>,
    /// Cone flip-flops in cone order: `(q gate, d net, pin-0 sa0, pin-0 sa1)`.
    dffs: Vec<(u32, u32, u64, u64)>,
    /// Output nets inside the cone (the only ones that can observe a diff).
    outs: Vec<u32>,
}

impl BatchPlan {
    /// Resolves one batch: builds injection masks, the union cone, and its
    /// boundary. `in_cone` is caller-provided scratch of `gates.len()`,
    /// false on entry and restored to false on exit.
    fn build(ctx: &Ctx<'_>, faults: &[(FaultId, Fault)], in_cone: &mut [bool]) -> BatchPlan {
        let cone = ctx
            .cones
            .union_cone(faults.iter().map(|&(_, f)| f.site.gate().index()));
        for &g in &cone {
            in_cone[g as usize] = true;
        }

        let mut out_sa0 = vec![0u64; cone.len()];
        let mut out_sa1 = vec![0u64; cone.len()];
        let mut pin_sa0 = vec![[0u64; 3]; cone.len()];
        let mut pin_sa1 = vec![[0u64; 3]; cone.len()];
        for (lane0, &(_, f)) in faults.iter().enumerate() {
            let bit = 1u64 << (lane0 + 1);
            let g = f.site.gate().index() as u32;
            let j = cone.binary_search(&g).expect("site gate is a cone seed");
            match (f.site, f.polarity) {
                (FaultSite::Output(_), Polarity::Sa0) => out_sa0[j] |= bit,
                (FaultSite::Output(_), Polarity::Sa1) => out_sa1[j] |= bit,
                (FaultSite::InputPin(_, p), Polarity::Sa0) => pin_sa0[j][p as usize] |= bit,
                (FaultSite::InputPin(_, p), Polarity::Sa1) => pin_sa1[j][p as usize] |= bit,
            }
        }

        let mut boundary: Vec<u32> = Vec::new();
        let mut dffs = Vec::new();
        for (j, &gu) in cone.iter().enumerate() {
            let gate = &ctx.gates[gu as usize];
            for &pin in gate.inputs() {
                if !in_cone[pin.index()] {
                    boundary.push(pin.index() as u32);
                }
            }
            if gate.kind == GateKind::Dff {
                let d = gate.pins[0].index() as u32;
                dffs.push((gu, d, pin_sa0[j][0], pin_sa1[j][0]));
            }
        }
        boundary.sort_unstable();
        boundary.dedup();
        let outs = ctx
            .out_nets
            .iter()
            .filter(|&&o| in_cone[o])
            .map(|&o| o as u32)
            .collect();

        for &g in &cone {
            in_cone[g as usize] = false;
        }
        let lanes_mask: u64 = if faults.len() == 63 {
            !1u64
        } else {
            ((1u64 << (faults.len() + 1)) - 1) & !1
        };
        BatchPlan {
            faults: faults.to_vec(),
            lanes_mask,
            cone,
            boundary,
            out_sa0,
            out_sa1,
            pin_sa0,
            pin_sa1,
            dffs,
            outs,
        }
    }
}

/// Per-batch mutable simulation state.
struct BatchState {
    /// Full-width value buffer; only cone and boundary slots are live.
    vals: Vec<u64>,
    /// Flip-flop state, aligned with `BatchPlan::dffs`.
    state: Vec<u64>,
    detected_mask: u64,
    /// Cleared on early exit; mirrors the serial engine's `break`.
    active: bool,
    /// Detections in occurrence order: `(fault, cc, pattern index)`.
    detections: Vec<(FaultId, u64, usize)>,
}

/// What one worker hands back: per-batch detection logs (in the worker's
/// batch order) plus per-pattern tallies summed over its batches.
pub(crate) struct WorkerOut {
    pub(crate) detections: Vec<Vec<(FaultId, u64, usize)>>,
    pub(crate) activated: Vec<u32>,
    pub(crate) detected: Vec<u32>,
}

/// Dispatches one worker's contiguous batch range to the backend selected
/// in the context. Both runners honor the same contract — detections per
/// batch in serial `(pattern, lane)` order, exact per-pattern tallies — so
/// the merge in [`run_target_list`] is backend-agnostic.
fn run_range(
    ctx: &Ctx<'_>,
    batches: &[Vec<(FaultId, Fault)>],
    obs: Obs<'_>,
    first_batch: usize,
    pat_range: (usize, usize),
) -> WorkerOut {
    match ctx.backend {
        SimBackend::Kernel => crate::kernel::run_batches_kernel::<4>(
            ctx,
            ctx.levels.expect("kernel backend carries a levelization"),
            batches,
            obs,
            first_batch,
            pat_range,
        ),
        SimBackend::Kernel64 => crate::kernel::run_batches_kernel::<1>(
            ctx,
            ctx.levels.expect("kernel backend carries a levelization"),
            batches,
            obs,
            first_batch,
            pat_range,
        ),
        _ => run_batches(ctx, batches, obs, first_batch, pat_range),
    }
}

/// Simulates a contiguous range of batches, interleaving them in groups of
/// [`GROUP`] so the good machine is evaluated once per pattern per group.
///
/// When observability is live, the whole range is wrapped in a
/// `fsim.worker` span, each group gets a nested `fsim.group` span, and
/// per-batch counters (batches, cone sizes, executed batch-steps, early
/// exits) accumulate in a worker-local [`Metrics`] buffer flushed once at
/// the end — the pattern loop itself stays untouched.
fn run_batches(
    ctx: &Ctx<'_>,
    batches: &[Vec<(FaultId, Fault)>],
    obs: Obs<'_>,
    first_batch: usize,
    pat_range: (usize, usize),
) -> WorkerOut {
    let mut worker_span = obs.span("fsim", "fsim.worker");
    worker_span.arg("first_batch", first_batch);
    worker_span.arg("batches", batches.len());
    let mut local = Metrics::default();

    let n_pat = ctx.patterns.len();
    let n_gates = ctx.gates.len();
    let mut out = WorkerOut {
        detections: Vec::with_capacity(batches.len()),
        activated: vec![0u32; n_pat],
        detected: vec![0u32; n_pat],
    };
    let mut in_cone = vec![false; n_gates];
    let mut good = vec![0u64; n_gates];
    let mut good_state = vec![0u64; ctx.dff_nets.len()];

    for (gi, group) in batches.chunks(GROUP).enumerate() {
        let mut group_span = obs.span("fsim", "fsim.group");
        let plans: Vec<BatchPlan> = group
            .iter()
            .map(|b| BatchPlan::build(ctx, b, &mut in_cone))
            .collect();
        if obs.enabled() {
            let cone_gates: usize = plans.iter().map(|p| p.cone.len()).sum();
            group_span.arg("first_batch", first_batch + gi * GROUP);
            group_span.arg("batches", group.len());
            group_span.arg("cone_gates", cone_gates);
            local.add("fsim.batches", group.len() as u64);
            local.add("fsim.cone_gates", cone_gates as u64);
            local.add("fsim.cone_gate_slots", (n_gates * group.len()) as u64);
        }
        let mut states: Vec<BatchState> = plans
            .iter()
            .map(|p| BatchState {
                vals: vec![0u64; n_gates],
                state: vec![0u64; p.dffs.len()],
                detected_mask: 0,
                active: true,
                detections: Vec::new(),
            })
            .collect();
        // The serial engine starts every batch from all-zero values and
        // state; the good machine's trajectory is identical across batches,
        // so resetting once per group reproduces it.
        good.fill(0);
        good_state.fill(0);

        let mut steps: u64 = 0;
        for t in pat_range.0..pat_range.1 {
            if states.iter().all(|s| !s.active) {
                break;
            }
            // Good machine: inputs broadcast to every lane, no injections.
            for (bit_pos, &net) in ctx.in_nets.iter().enumerate() {
                good[net] = if ctx.patterns.bit(t, bit_pos) { !0 } else { 0 };
            }
            let mut dff_i = 0;
            for (i, g) in ctx.gates.iter().enumerate() {
                good[i] = match g.kind {
                    GateKind::Input => good[i],
                    GateKind::Const0 => 0,
                    GateKind::Const1 => !0,
                    GateKind::Dff => {
                        let s = good_state[dff_i];
                        dff_i += 1;
                        s
                    }
                    kind => {
                        let p = g.pins;
                        let a = good[p[0].index()];
                        let (b, c) = match kind.arity() {
                            2 => (good[p[1].index()], 0),
                            3 => (good[p[1].index()], good[p[2].index()]),
                            _ => (0, 0),
                        };
                        kind.eval(a, b, c)
                    }
                };
            }
            for (k, &q) in ctx.dff_nets.iter().enumerate() {
                good_state[k] = good[ctx.gates[q].pins[0].index()];
            }

            let cc = ctx.patterns.cc(t);
            for (plan, st) in plans.iter().zip(states.iter_mut()) {
                if !st.active {
                    continue;
                }
                step_batch(ctx, plan, st, &good, t, cc, &mut out);
                steps += 1;
            }
        }
        if obs.enabled() {
            let early = states.iter().filter(|s| !s.active).count();
            local.add("fsim.batch_steps", steps);
            local.add("fsim.early_exit_batches", early as u64);
        }
        for st in states {
            out.detections.push(st.detections);
        }
    }
    if let Some(rec) = obs {
        rec.merge_metrics(&local);
    }
    out
}

/// Advances one batch by one pattern: cone evaluation, flip-flop capture,
/// output observation, activation counting, and detection recording —
/// the same sequence, in the same order, as the serial reference.
fn step_batch(
    ctx: &Ctx<'_>,
    plan: &BatchPlan,
    st: &mut BatchState,
    good: &[u64],
    t: usize,
    cc: u64,
    out: &mut WorkerOut,
) {
    let vals = &mut st.vals;
    for &p in &plan.boundary {
        vals[p as usize] = good[p as usize];
    }
    let mut dff_i = 0;
    for (j, &gu) in plan.cone.iter().enumerate() {
        let i = gu as usize;
        let g = &ctx.gates[i];
        let mut v = match g.kind {
            // Inputs are driven broadcast, so the good word *is* the
            // 64-lane input word. Constants likewise.
            GateKind::Input => good[i],
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Dff => {
                let s = st.state[dff_i];
                dff_i += 1;
                s
            }
            kind => {
                let p = g.pins;
                let ps0 = &plan.pin_sa0[j];
                let ps1 = &plan.pin_sa1[j];
                let a = (vals[p[0].index()] & !ps0[0]) | ps1[0];
                let (b, c) = match kind.arity() {
                    2 => ((vals[p[1].index()] & !ps0[1]) | ps1[1], 0),
                    3 => (
                        (vals[p[1].index()] & !ps0[1]) | ps1[1],
                        (vals[p[2].index()] & !ps0[2]) | ps1[2],
                    ),
                    _ => (0, 0),
                };
                kind.eval(a, b, c)
            }
        };
        v = (v & !plan.out_sa0[j]) | plan.out_sa1[j];
        vals[i] = v;
    }
    // Capture cone flip-flops (pin-0 masks apply at the D input). A cone
    // DFF's D net is a cone-gate input, so it is in the cone or boundary
    // and `vals` holds its post-evaluation value.
    for (k, &(_, d, m0, m1)) in plan.dffs.iter().enumerate() {
        st.state[k] = (vals[d as usize] & !m0) | m1;
    }

    // Observe: only cone outputs can differ from the good machine.
    let mut diff: u64 = 0;
    for &o in &plan.outs {
        let v = vals[o as usize];
        let good_bcast = (v & 1).wrapping_neg();
        diff |= v ^ good_bcast;
    }
    diff &= plan.lanes_mask;

    // Activation counts read the good machine (lane 0 is unaffected by
    // injection masks, so `good` matches the serial engine's lane 0).
    let drop = ctx.config.drop_detected;
    let mut activated = 0u32;
    for (lane0, &(_, f)) in plan.faults.iter().enumerate() {
        if drop && st.detected_mask >> (lane0 + 1) & 1 == 1 {
            continue;
        }
        let good_bit = match f.site {
            FaultSite::Output(n) => good[n.index()] & 1 == 1,
            FaultSite::InputPin(n, p) => {
                let src = ctx.gates[n.index()].pins[p as usize].index();
                good[src] & 1 == 1
            }
        };
        if good_bit != f.polarity.value() {
            activated += 1;
        }
    }
    out.activated[t] += activated;

    if drop {
        let newly = diff & !st.detected_mask;
        if newly != 0 {
            let mut rest = newly;
            while rest != 0 {
                let lane = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                st.detections.push((plan.faults[lane - 1].0, cc, t));
            }
            out.detected[t] += newly.count_ones();
            st.detected_mask |= newly;
            if ctx.config.early_exit && st.detected_mask == plan.lanes_mask {
                st.active = false;
            }
        }
    } else {
        out.detected[t] += diff.count_ones();
        let mut rest = diff & !st.detected_mask;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            st.detections.push((plan.faults[lane - 1].0, cc, t));
        }
        st.detected_mask |= diff;
    }
}

/// Runs one explicit target list through the worker pool: plans batches,
/// fans them out, and merges detections into `list`/`report` and
/// per-pattern tallies into the caller's accumulators. Guided runs call
/// this several times (direct targets, residual dominators, and once per
/// repacking segment), so per-pattern stats are accumulated here and
/// turned into `record_pattern` rows exactly once by the caller.
/// `pat_range` is the half-open pattern window to simulate — `(0, n_pat)`
/// for a monolithic run.
#[allow(clippy::too_many_arguments)]
fn run_target_list(
    ctx: &Ctx<'_>,
    targets: &[FaultId],
    list: &mut FaultList,
    report: &mut FaultSimReport,
    activated_per_pattern: &mut [u32],
    detected_per_pattern: &mut [u32],
    obs: Obs<'_>,
    pat_range: (usize, usize),
) {
    if targets.is_empty() {
        return;
    }
    // Snapshot fault data so workers need no access to the list.
    let batches: Vec<Vec<(FaultId, Fault)>> = targets
        .chunks(63)
        .map(|c| c.iter().map(|&fid| (fid, list.fault(fid))).collect())
        .collect();
    let workers = resolve_threads(&ctx.config).min(batches.len()).max(1);
    if obs.enabled() {
        obs.add("fsim.target_faults", targets.len() as u64);
        obs.add("fsim.workers", workers as u64);
    }
    // `workers == 1` runs inline on the caller's thread: spawning an OS
    // thread for a single worker only costs (the threads=8-on-1-core
    // regression of BENCH_fsim).
    let outs: Vec<WorkerOut> = if workers <= 1 {
        obs.record("fsim.batches_per_worker", batches.len() as f64);
        vec![run_range(ctx, &batches, obs, 0, pat_range)]
    } else {
        // Contiguous ranges keep the merge order trivial: worker w owns
        // batches [w·k, (w+1)·k), so concatenating worker outputs in spawn
        // order is global batch order.
        let per = batches.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .chunks(per)
                .enumerate()
                .map(|(w, range)| {
                    obs.record("fsim.batches_per_worker", range.len() as f64);
                    s.spawn(move || run_range(ctx, range, obs, w * per, pat_range))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    // Merge. Serial detections are batch-major (the pattern loop nests
    // inside the batch loop), so replaying per-batch logs in global batch
    // order reproduces the serial report byte-for-byte; per-pattern tallies
    // are exact integer sums and thus order-independent.
    let n_pat = ctx.patterns.len();
    for w in &outs {
        for t in 0..n_pat {
            activated_per_pattern[t] += w.activated[t];
            detected_per_pattern[t] += w.detected[t];
        }
    }
    for w in outs {
        for batch_log in w.detections {
            for (fid, cc, t) in batch_log {
                list.mark_detected(fid, cc, t);
                report.record_detection(fid, cc, t);
            }
        }
    }
}

/// The parallel engine behind [`fault_simulate`](crate::fault_simulate):
/// plans batches, fans them out over a scoped worker pool, and merges the
/// results deterministically.
pub(crate) fn simulate(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
    obs: Obs<'_>,
) -> FaultSimReport {
    simulate_guided(netlist, patterns, list, config, obs, &SimGuide::default())
}

/// Reorders the target list at worker-group granularity: targets are
/// chunked into the 63-fault batches they will become, and the *chunks*
/// are stably sorted by descending mean observability cost. Batch contents
/// keep enumeration order — that adjacency is what keeps union fanout
/// cones small, and scattering faults by per-fault cost was measured to
/// cost more in cone bloat than homogeneity saves. Group order puts the
/// hardest (least observable) batches first, so multi-worker runs
/// schedule their longest jobs first and the dropping list sheds its
/// stubborn classes as early as possible. Per-fault first detections are
/// independent of batch composition and order, so stamps are unchanged.
fn order_groups_hardest_first(targets: &mut Vec<FaultId>, keys: &[f64], list: &FaultList) {
    if targets.is_empty() {
        return;
    }
    let key = |id: FaultId| {
        keys.get(list.fault(id).site.gate().index())
            .copied()
            .unwrap_or(0.0)
    };
    let mut groups: Vec<&[FaultId]> = targets.chunks(63).collect();
    let mean = |g: &[FaultId]| g.iter().map(|&id| key(id)).sum::<f64>() / g.len() as f64;
    // Descending mean cost; ties keep ascending first-id order so the
    // layout is deterministic.
    groups.sort_by(|a, b| mean(b).total_cmp(&mean(a)).then(a[0].cmp(&b[0])));
    let reordered: Vec<FaultId> = groups.into_iter().flatten().copied().collect();
    *targets = reordered;
}

/// How many patterns the first repacking segment of
/// [`run_dropping_repacked`] spans; each later segment doubles, so a run
/// of `n` patterns repacks `O(log n)` times. Detections concentrate in
/// the earliest patterns of a pseudorandom sequence, so short early
/// segments capture most drops while long late segments keep the
/// re-planning overhead negligible.
const REPACK_SEGMENT: usize = 64;

/// Drop-mode driver that makes fault dropping actually *converge*: the
/// target list is simulated in growing pattern segments, and between
/// segments the still-undetected faults are re-packed into fresh 63-fault
/// batches (enumeration order for cone locality, then hardest-first group
/// order). In the monolithic run a batch keeps paying its full union-cone
/// evaluation for every remaining pattern as long as *one* lane is
/// undetected; re-packing shrinks the batch count — and with it the
/// per-pattern cone work — as coverage accumulates.
///
/// Only sound when each pattern is independent of the last, so callers
/// gate this on combinational netlists (no flip-flop state to carry
/// across a re-pack). First-detection stamps are unchanged: every fault
/// still sees every pattern in order until it drops, and drop mode
/// ignores later detections anyway.
#[allow(clippy::too_many_arguments)]
fn run_dropping_repacked(
    ctx: &Ctx<'_>,
    mut targets: Vec<FaultId>,
    keys: &[f64],
    list: &mut FaultList,
    report: &mut FaultSimReport,
    activated_per_pattern: &mut [u32],
    detected_per_pattern: &mut [u32],
    obs: Obs<'_>,
) {
    debug_assert!(ctx.dff_nets.is_empty() && ctx.config.drop_detected);
    let n_pat = ctx.patterns.len();
    let mut segment = REPACK_SEGMENT;
    let mut start = 0usize;
    while start < n_pat && !targets.is_empty() {
        let end = n_pat.min(start + segment);
        // Re-pack in enumeration order (adjacent ids share fanout cones,
        // keeping union cones tight), then order groups hardest-first.
        targets.sort_unstable();
        order_groups_hardest_first(&mut targets, keys, list);
        run_target_list(
            ctx,
            &targets,
            list,
            report,
            activated_per_pattern,
            detected_per_pattern,
            obs,
            (start, end),
        );
        targets.retain(|&id| matches!(list.status(id), FaultStatus::Undetected));
        if obs.enabled() {
            obs.add("fsim.repack_segments", 1);
        }
        start = end;
        segment = segment.saturating_mul(2);
    }
}

/// Dispatches one guided target list: the segmented repacking driver when
/// the guide provides observability keys and the netlist is combinational
/// drop-mode, the monolithic path (with at most a one-shot group
/// reordering) otherwise. Without keys this is byte-identical to the
/// unguided engine.
#[allow(clippy::too_many_arguments)]
fn run_guided_list(
    ctx: &Ctx<'_>,
    targets: Vec<FaultId>,
    guide: &SimGuide<'_>,
    list: &mut FaultList,
    report: &mut FaultSimReport,
    activated_per_pattern: &mut [u32],
    detected_per_pattern: &mut [u32],
    obs: Obs<'_>,
) {
    match guide.order_keys {
        Some(keys) if ctx.config.drop_detected && ctx.dff_nets.is_empty() => {
            run_dropping_repacked(
                ctx,
                targets,
                keys,
                list,
                report,
                activated_per_pattern,
                detected_per_pattern,
                obs,
            );
        }
        keys => {
            let mut targets = targets;
            if let Some(keys) = keys {
                order_groups_hardest_first(&mut targets, keys, list);
            }
            run_target_list(
                ctx,
                &targets,
                list,
                report,
                activated_per_pattern,
                detected_per_pattern,
                obs,
                (0, ctx.patterns.len()),
            );
        }
    }
}

/// [`simulate`] with static-analysis guidance (see
/// [`fault_simulate_guided`](crate::fault_simulate_guided)):
///
/// - **Hardest-first group ordering** (`guide.order_keys`): the 63-fault
///   worker batches are reordered by descending mean observability cost
///   (see [`order_groups_hardest_first`]); batch contents keep enumeration
///   order, preserving the cone locality batching exploits. On
///   combinational netlists in drop mode the ordering is applied
///   *repeatedly*: the run proceeds in growing pattern segments and the
///   still-undetected faults are re-packed into fresh hardest-first
///   groups between segments (see [`run_dropping_repacked`]), so the
///   batch count shrinks as faults drop. The detected set and every
///   detection stamp are unchanged either way.
/// - **Dominance reduction** (`guide.dominance`, drop mode only): removed
///   dominator classes are excluded from direct simulation. After the
///   direct pass they *inherit* detection from their earliest-detected
///   supporter (iterated to a fixpoint — supporters may themselves be
///   inherited dominators), and whatever remains undetected gets an
///   explicit residual pass. The final detected set — and therefore the
///   reported coverage — is identical to simulating every class: a
///   supporter detection implies the dominator is detectable by that very
///   pattern, and undetected dominators are still simulated for real.
pub(crate) fn simulate_guided(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
    obs: Obs<'_>,
    guide: &SimGuide<'_>,
) -> FaultSimReport {
    assert_eq!(
        patterns.width(),
        netlist.inputs().width(),
        "pattern width must match netlist inputs"
    );
    let mut run_span = obs.span("fsim", "fsim.run");
    list.begin_run();
    let mut report = FaultSimReport::new();

    // Statically-proven-untestable classes are dropped from the target
    // list before batching: they can never be detected, so the detected
    // set is unchanged, but the engine stops paying for their cones.
    let testable = |id: FaultId| {
        guide
            .untestable
            .is_none_or(|u| !u.get(id).copied().unwrap_or(false))
    };
    let all_targets: Vec<FaultId> = if config.drop_detected {
        list.undetected().collect()
    } else {
        (0..list.len()).collect()
    };
    let targets: Vec<FaultId> = all_targets
        .iter()
        .copied()
        .filter(|&id| testable(id))
        .collect();
    report.set_untestable((all_targets.len() - targets.len()) as u32);

    let cones = netlist.fanout_cones();
    let in_nets: Vec<usize> = netlist.inputs().nets().iter().map(|n| n.index()).collect();
    let out_nets: Vec<usize> = netlist.outputs().nets().iter().map(|n| n.index()).collect();
    let dff_nets: Vec<usize> = netlist.dffs().iter().map(|n| n.index()).collect();
    let backend = resolve_backend(config, dff_nets.is_empty());
    // The kernel needs the rank-major layout; levelize here only when the
    // guide did not bring the module's cached copy (O(gates log gates),
    // negligible next to one pattern sweep).
    let owned_levels: Option<Levelization> = match (backend, guide.levels) {
        (SimBackend::Event, _) | (_, Some(_)) => None,
        _ => Some(netlist.levelize()),
    };
    let levels = guide.levels.or(owned_levels.as_ref());
    let ctx = Ctx {
        gates: netlist.gates(),
        patterns,
        cones: &cones,
        in_nets: &in_nets,
        out_nets: &out_nets,
        dff_nets: &dff_nets,
        config: *config,
        backend,
        levels,
    };

    let n_pat = patterns.len();
    let mut activated_per_pattern = vec![0u32; n_pat];
    let mut detected_per_pattern = vec![0u32; n_pat];
    if obs.enabled() {
        run_span.arg("faults", targets.len());
        run_span.arg("patterns", patterns.len());
        run_span.arg("backend", backend);
        obs.add("fsim.runs", 1);
        obs.add("fsim.patterns", patterns.len() as u64);
        obs.add(
            "fsim.untestable_pruned",
            u64::from(report.untestable_count()),
        );
        if backend != SimBackend::Event {
            obs.add("fsim.kernel.runs", 1);
        }
    }

    // Dominance is per-pattern reasoning over *first* detections; in
    // non-drop mode every pattern's observations are reported, so the
    // reduction would change the per-pattern stats. Apply it in drop mode
    // only (ordering is safe in both).
    let dominance = guide
        .dominance
        .filter(|d| !d.is_identity() && config.drop_detected);
    match dominance {
        None => {
            run_guided_list(
                &ctx,
                targets,
                guide,
                list,
                &mut report,
                &mut activated_per_pattern,
                &mut detected_per_pattern,
                obs,
            );
        }
        Some(dom) => {
            // Phase 1: simulate the non-dominator classes directly.
            let (direct, deferred): (Vec<FaultId>, Vec<FaultId>) =
                targets.iter().partition(|&&id| !dom.is_removed(id));
            run_guided_list(
                &ctx,
                direct,
                guide,
                list,
                &mut report,
                &mut activated_per_pattern,
                &mut detected_per_pattern,
                obs,
            );
            // Phase 2: removed dominators inherit detection from their
            // earliest-detected supporter. Iterate to a fixpoint:
            // supporters can themselves be dominators whose detection
            // only appears in a previous sweep.
            let mut inherited = 0u64;
            loop {
                let mut changed = false;
                for &id in &deferred {
                    if !matches!(list.status(id), FaultStatus::Undetected) {
                        continue;
                    }
                    let mut best: Option<(usize, u64)> = None;
                    for &s in dom.supporters(id) {
                        if let FaultStatus::Detected { cc, pattern, .. } = list.status(s) {
                            if best.is_none_or(|(bt, _)| pattern < bt) {
                                best = Some((pattern, cc));
                            }
                        }
                    }
                    if let Some((t, cc)) = best {
                        list.mark_detected(id, cc, t);
                        report.record_detection(id, cc, t);
                        // Supporters detected in a previous run carry that
                        // run's pattern index; only stamps from this
                        // sequence can be tallied per pattern.
                        if t < n_pat {
                            detected_per_pattern[t] += 1;
                        }
                        inherited += 1;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Phase 3: dominators nothing vouched for are simulated after
            // all — they may still be detectable by patterns that detect
            // none of their supporters.
            let residual: Vec<FaultId> = deferred
                .iter()
                .copied()
                .filter(|&id| matches!(list.status(id), FaultStatus::Undetected))
                .collect();
            if obs.enabled() {
                obs.add("fsim.dominance_removed", deferred.len() as u64);
                obs.add("fsim.dominance_inherited", inherited);
                obs.add("fsim.dominance_residual", residual.len() as u64);
            }
            run_guided_list(
                &ctx,
                residual,
                guide,
                list,
                &mut report,
                &mut activated_per_pattern,
                &mut detected_per_pattern,
                obs,
            );
        }
    }

    for t in 0..n_pat {
        report.record_pattern(
            patterns.cc(t),
            activated_per_pattern[t],
            detected_per_pattern[t],
        );
    }
    if obs.enabled() {
        obs.add(
            "fsim.detections",
            u64::from(detected_per_pattern.iter().sum::<u32>()),
        );
        obs.add(
            "fsim.activations",
            activated_per_pattern.iter().map(|&a| u64::from(a)).sum(),
        );
    }
    report
}
