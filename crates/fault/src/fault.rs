//! Single stuck-at faults and their sites.

use std::fmt;

use warpstl_netlist::NetId;

/// The stuck value of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// Stuck-at-0.
    Sa0,
    /// Stuck-at-1.
    Sa1,
}

impl Polarity {
    /// Both polarities.
    pub const BOTH: [Polarity; 2] = [Polarity::Sa0, Polarity::Sa1];

    /// The stuck logic value.
    #[must_use]
    pub fn value(self) -> bool {
        self == Polarity::Sa1
    }

    /// The opposite polarity.
    #[must_use]
    pub fn inverted(self) -> Polarity {
        match self {
            Polarity::Sa0 => Polarity::Sa1,
            Polarity::Sa1 => Polarity::Sa0,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Polarity::Sa0 => "SA0",
            Polarity::Sa1 => "SA1",
        })
    }
}

/// Where a fault sits: a net (gate-output stem) or a gate input pin
/// (fanout branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The output net of a gate (stem fault).
    Output(NetId),
    /// Input pin `pin` of the gate driving `NetId` (branch fault).
    InputPin(NetId, u8),
}

impl FaultSite {
    /// The gate the site belongs to.
    #[must_use]
    pub fn gate(self) -> NetId {
        match self {
            FaultSite::Output(n) | FaultSite::InputPin(n, _) => n,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Output(n) => write!(f, "{n}"),
            FaultSite::InputPin(n, p) => write!(f, "{n}.in{p}"),
        }
    }
}

/// A single stuck-at fault.
///
/// # Examples
///
/// ```
/// use warpstl_fault::{Fault, FaultSite, Polarity};
/// use warpstl_netlist::NetId;
///
/// let f = Fault::new(FaultSite::Output(NetId(3)), Polarity::Sa1);
/// assert_eq!(f.to_string(), "n3/SA1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// The fault site.
    pub site: FaultSite,
    /// The stuck value.
    pub polarity: Polarity,
}

impl Fault {
    /// Creates a fault.
    #[must_use]
    pub fn new(site: FaultSite, polarity: Polarity) -> Fault {
        Fault { site, polarity }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.site, self.polarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_helpers() {
        assert!(!Polarity::Sa0.value());
        assert!(Polarity::Sa1.value());
        assert_eq!(Polarity::Sa0.inverted(), Polarity::Sa1);
        assert_eq!(Polarity::Sa1.inverted(), Polarity::Sa0);
    }

    #[test]
    fn display_formats() {
        let f = Fault::new(FaultSite::InputPin(NetId(7), 1), Polarity::Sa0);
        assert_eq!(f.to_string(), "n7.in1/SA0");
        assert_eq!(f.site.gate(), NetId(7));
    }

    #[test]
    fn ordering_is_total() {
        let a = Fault::new(FaultSite::Output(NetId(1)), Polarity::Sa0);
        let b = Fault::new(FaultSite::Output(NetId(1)), Polarity::Sa1);
        let c = Fault::new(FaultSite::InputPin(NetId(0), 0), Polarity::Sa0);
        let mut v = vec![b, c, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }
}
