//! Parallel-fault stuck-at simulation over pattern sequences.

use warpstl_netlist::{GateKind, Levelization, Netlist, PatternSeq};

use crate::{DominanceView, FaultId, FaultList, FaultSimReport, FaultSite, Polarity};

/// Which simulation path the engine runs.
///
/// Both backends produce **bit-identical** results — same detection stamps,
/// same per-pattern tallies, same report — so the choice is purely a
/// performance knob and is deliberately excluded from the artifact-store
/// cache key (`key_fsim`): entries written by either backend replay
/// interchangeably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// Resolve via `WARPSTL_SIM_BACKEND` if set, else pick the levelized
    /// kernel for combinational netlists and the event path otherwise.
    #[default]
    Auto,
    /// The event-style engine: per-gate dispatch over 63-fault batch words,
    /// one pattern at a time. The only path that carries flip-flop state,
    /// so sequential netlists always use it.
    Event,
    /// The levelized SoA kernel: rank-major, kind-segmented evaluation over
    /// 256-bit pattern blocks (4×u64), one fault cone at a time, with a
    /// 64-bit remainder path. Combinational only — sequential netlists fall
    /// back to [`SimBackend::Event`].
    Kernel,
    /// The kernel restricted to 64-bit blocks (the remainder path for every
    /// block). Exists so benches and tests can compare block widths; `auto`
    /// never resolves to it.
    Kernel64,
}

impl SimBackend {
    /// Parses a backend name (`auto`, `event`, `kernel`, or the
    /// bench-oriented `kernel64`), case-insensitively. Returns `None` for
    /// anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<SimBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(SimBackend::Auto),
            "event" => Some(SimBackend::Event),
            "kernel" => Some(SimBackend::Kernel),
            "kernel64" => Some(SimBackend::Kernel64),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimBackend::Auto => "auto",
            SimBackend::Event => "event",
            SimBackend::Kernel => "kernel",
            SimBackend::Kernel64 => "kernel64",
        })
    }
}

/// Configuration of a fault-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSimConfig {
    /// Simulate only still-undetected faults and record first detections
    /// (the paper's fault-dropping mode). When `false`, every fault is
    /// simulated across the whole sequence and the per-pattern report counts
    /// *all* faults observed at each cycle, not just new ones.
    pub drop_detected: bool,
    /// Stop a fault batch early once all of its faults are detected
    /// (only meaningful with `drop_detected`).
    pub early_exit: bool,
    /// Worker threads for batch-level parallelism. `0` (the default) means
    /// auto: the `WARPSTL_THREADS` environment variable if set, otherwise
    /// the machine's available parallelism. Requests beyond the host's
    /// available parallelism are clamped to it (oversubscription only adds
    /// scheduling overhead), and results are bit-identical for every
    /// thread count.
    pub threads: usize,
    /// Simulation path selection. [`SimBackend::Auto`] (the default)
    /// consults `WARPSTL_SIM_BACKEND` and otherwise picks the levelized
    /// kernel for combinational netlists. Results are bit-identical across
    /// backends, and the choice is excluded from artifact-cache keys.
    pub backend: SimBackend,
}

impl FaultSimConfig {
    /// The worker count this configuration resolves to: `threads` if
    /// nonzero, else `WARPSTL_THREADS`, else the machine's available
    /// parallelism — clamped to the host's available parallelism in every
    /// case. Callers running several simulations concurrently can use this
    /// to split the budget across them.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        crate::engine::resolve_threads(self)
    }

    /// The backend this configuration resolves to for a netlist that is
    /// (`combinational == true`) or is not purely combinational: `backend`
    /// if not [`SimBackend::Auto`], else `WARPSTL_SIM_BACKEND`, else auto —
    /// with every kernel choice falling back to [`SimBackend::Event`] on
    /// sequential netlists (only the event path carries flip-flop state).
    /// Never returns `Auto`, `Kernel`, or `Kernel64` for sequential input.
    #[must_use]
    pub fn resolved_backend(&self, combinational: bool) -> SimBackend {
        crate::engine::resolve_backend(self, combinational)
    }
}

impl Default for FaultSimConfig {
    fn default() -> Self {
        FaultSimConfig {
            drop_detected: true,
            early_exit: true,
            threads: 0,
            backend: SimBackend::Auto,
        }
    }
}

/// Static-analysis guidance for a fault-simulation run — the bridge from
/// `warpstl-analyze` to the engine without a crate dependency: the
/// analyzer's SCOAP observability scores travel as a plain per-net slice,
/// and the universe's own [`DominanceView`] travels by reference.
///
/// Every field is optional and independent; the default (all `None`)
/// makes [`fault_simulate_guided`] behave exactly like [`fault_simulate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimGuide<'a> {
    /// Dominance-reduced view of the target universe: removed dominator
    /// classes inherit detection from their supporters instead of being
    /// simulated directly (drop mode only; identity views are ignored).
    pub dominance: Option<&'a DominanceView>,
    /// Per-fault untestability bitmap, indexed by [`FaultId`]: classes the
    /// static implication engine proved redundant are excluded from the
    /// target list entirely — they can never be detected, so the detected
    /// set is bit-identical to the unpruned run while the engine skips
    /// their batches. Because the *pattern tallies* of the report change
    /// with the target set, this field participates in cache keys
    /// (`key_fsim`), unlike `levels`.
    pub untestable: Option<&'a [bool]>,
    /// Per-net observability cost (higher = harder to observe), indexed
    /// by gate: targets are stably reordered hardest-first before
    /// batching so each batch holds faults of similar difficulty.
    pub order_keys: Option<&'a [f64]>,
    /// Precomputed [`Levelization`] of the netlist (rank-major SoA layout
    /// for the levelized kernel). Purely an accelerator: when `None` the
    /// engine levelizes on demand, and the results are identical either
    /// way, so — unlike the two fields above — this never enters cache
    /// keys. Callers holding a `ModuleContext` pass its cached copy.
    pub levels: Option<&'a Levelization>,
}

/// Runs one fault simulation of `patterns` against `netlist`, updating
/// `list` and returning the per-pattern Fault Sim Report.
///
/// The simulator packs 63 faulty machines plus the good machine into each
/// 64-bit word (parallel-fault simulation) and observes discrepancies at
/// the module outputs — the paper's *module-level fault observability*.
/// Sequential netlists are supported: each fault lane carries its own
/// flip-flop state.
///
/// Fault batches are independent, so the engine prunes each batch to the
/// fanout cone of its injection sites and fans batches out over
/// [`FaultSimConfig::threads`] workers (see [`crate::engine`] — the report
/// is bit-identical for every thread count, and to the serial
/// [`fault_simulate_reference`]).
///
/// # Panics
///
/// Panics if `patterns.width()` differs from the netlist's input width.
///
/// # Examples
///
/// ```
/// use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
/// use warpstl_netlist::{Builder, PatternSeq};
///
/// let mut b = Builder::new("xor2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.xor(x, y);
/// b.output("z", z);
/// let n = b.finish();
///
/// let universe = FaultUniverse::enumerate(&n);
/// let mut list = FaultList::new(&universe);
/// let mut pats = PatternSeq::new(2);
/// for (cc, v) in [(0, 0b00), (1, 0b01), (2, 0b10), (3, 0b11)] {
///     pats.push_value(cc, v);
/// }
/// let report = fault_simulate(&n, &pats, &mut list, &FaultSimConfig::default());
/// assert_eq!(list.coverage(), 1.0); // exhaustive patterns test XOR fully
/// assert_eq!(report.total_detected() as usize, list.len());
/// ```
pub fn fault_simulate(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
) -> FaultSimReport {
    crate::engine::simulate(netlist, patterns, list, config, None)
}

/// [`fault_simulate`] with an observability handle: when `obs` is
/// `Some(recorder)`, the engine emits `fsim.run` / `fsim.worker` /
/// `fsim.group` spans and its internal counters (batches, cone-prune
/// sizes, detections, activations, early exits) into the recorder. With
/// `None` this is exactly [`fault_simulate`] — the disabled path reads no
/// clock and takes no lock.
///
/// # Panics
///
/// Panics if `patterns.width()` differs from the netlist's input width.
pub fn fault_simulate_observed(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
    obs: warpstl_obs::Obs<'_>,
) -> FaultSimReport {
    crate::engine::simulate(netlist, patterns, list, config, obs)
}

/// [`fault_simulate`] guided by static analysis: a [`SimGuide`] carrying
/// an optional [`DominanceView`] (simulate fewer classes, inherit the
/// rest) and optional per-net observability keys (order targets
/// hardest-first so batches early-exit together).
///
/// The *detected fault set* — and therefore [`FaultList::coverage`] — is
/// identical to the unguided run over the same patterns: dominators
/// inherit detection only from supporters whose tests provably detect
/// them, and uninherited dominators are still simulated in a residual
/// pass. Detection stamps of inherited faults may differ (they take the
/// supporter's earliest stamp).
///
/// # Panics
///
/// Panics if `patterns.width()` differs from the netlist's input width.
///
/// # Examples
///
/// ```
/// use warpstl_fault::{
///     fault_simulate_guided, FaultList, FaultSimConfig, FaultUniverse, SimGuide,
/// };
/// use warpstl_netlist::{Builder, PatternSeq};
///
/// let mut b = Builder::new("and2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.and(x, y);
/// b.output("z", z);
/// let n = b.finish();
///
/// let universe = FaultUniverse::enumerate(&n);
/// let dominance = universe.dominance(&n);
/// let mut list = FaultList::new(&universe);
/// let mut pats = PatternSeq::new(2);
/// for (cc, v) in [(0, 0b11), (1, 0b01), (2, 0b10)] {
///     pats.push_value(cc, v);
/// }
/// let guide = SimGuide { dominance: Some(&dominance), ..SimGuide::default() };
/// fault_simulate_guided(&n, &pats, &mut list, &FaultSimConfig::default(), None, &guide);
/// assert_eq!(list.coverage(), 1.0); // identical to the unguided run
/// ```
pub fn fault_simulate_guided(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
    obs: warpstl_obs::Obs<'_>,
    guide: &SimGuide<'_>,
) -> FaultSimReport {
    crate::engine::simulate_guided(netlist, patterns, list, config, obs, guide)
}

/// The original single-threaded engine, kept as the oracle for the parallel
/// engine's equivalence tests and as the `threads = 1`, no-pruning baseline
/// for benchmarks. Evaluates the *whole* netlist once per pattern per batch.
///
/// Semantics are identical to [`fault_simulate`]; prefer that entry point.
///
/// # Panics
///
/// Panics if `patterns.width()` differs from the netlist's input width.
pub fn fault_simulate_reference(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut FaultList,
    config: &FaultSimConfig,
) -> FaultSimReport {
    assert_eq!(
        patterns.width(),
        netlist.inputs().width(),
        "pattern width must match netlist inputs"
    );
    list.begin_run();
    let mut report = FaultSimReport::new();

    let targets: Vec<FaultId> = if config.drop_detected {
        list.undetected().collect()
    } else {
        (0..list.len()).collect()
    };

    let n_pat = patterns.len();
    let mut activated_per_pattern = vec![0u32; n_pat];
    let mut detected_per_pattern = vec![0u32; n_pat];

    let gates = netlist.gates();
    let out_nets: Vec<usize> = netlist.outputs().nets().iter().map(|n| n.index()).collect();
    let in_nets: Vec<usize> = netlist.inputs().nets().iter().map(|n| n.index()).collect();
    let dff_nets: Vec<usize> = netlist.dffs().iter().map(|n| n.index()).collect();

    let mut values = vec![0u64; gates.len()];
    // Injection tables: per-gate output masks and per-pin masks. At most 63
    // gates per batch carry an injection, so `injected` gives the gate loop
    // a mask-free fast path for everything else.
    let mut out_sa0 = vec![0u64; gates.len()];
    let mut out_sa1 = vec![0u64; gates.len()];
    let mut pin_sa0 = vec![[0u64; 3]; gates.len()];
    let mut pin_sa1 = vec![[0u64; 3]; gates.len()];
    let mut injected = vec![false; gates.len()];
    let mut dirty: Vec<usize> = Vec::new();

    for batch in targets.chunks(63) {
        // Build injection masks; lane 0 is the good machine.
        for d in dirty.drain(..) {
            out_sa0[d] = 0;
            out_sa1[d] = 0;
            pin_sa0[d] = [0; 3];
            pin_sa1[d] = [0; 3];
            injected[d] = false;
        }
        let mut lane_fault: Vec<FaultId> = Vec::with_capacity(batch.len());
        for (lane0, &fid) in batch.iter().enumerate() {
            let lane = lane0 + 1;
            let bit = 1u64 << lane;
            let f = list.fault(fid);
            match f.site {
                FaultSite::Output(n) => {
                    let g = n.index();
                    match f.polarity {
                        Polarity::Sa0 => out_sa0[g] |= bit,
                        Polarity::Sa1 => out_sa1[g] |= bit,
                    }
                    injected[g] = true;
                    dirty.push(g);
                }
                FaultSite::InputPin(n, p) => {
                    let g = n.index();
                    match f.polarity {
                        Polarity::Sa0 => pin_sa0[g][p as usize] |= bit,
                        Polarity::Sa1 => pin_sa1[g][p as usize] |= bit,
                    }
                    injected[g] = true;
                    dirty.push(g);
                }
            }
            lane_fault.push(fid);
        }
        let lanes_mask: u64 = if batch.len() == 63 {
            !1u64
        } else {
            ((1u64 << (batch.len() + 1)) - 1) & !1
        };

        values.fill(0);
        let mut state = vec![0u64; dff_nets.len()];
        let mut detected_mask: u64 = 0;

        for t in 0..n_pat {
            // Drive inputs (same stimulus in every lane).
            for (bit_pos, &net) in in_nets.iter().enumerate() {
                values[net] = if patterns.bit(t, bit_pos) { !0 } else { 0 };
            }
            // Evaluate with injection; uninjected gates (all but <= 63)
            // take the mask-free fast path.
            let mut dff_i = 0;
            for (i, g) in gates.iter().enumerate() {
                let kind = g.kind;
                if !injected[i] {
                    let v = match kind {
                        GateKind::Input => values[i],
                        GateKind::Const0 => 0,
                        GateKind::Const1 => !0,
                        GateKind::Dff => {
                            let s = state[dff_i];
                            dff_i += 1;
                            s
                        }
                        _ => {
                            let p = g.pins;
                            let a = values[p[0].index()];
                            let (b, c) = match kind.arity() {
                                2 => (values[p[1].index()], 0),
                                3 => (values[p[1].index()], values[p[2].index()]),
                                _ => (0, 0),
                            };
                            kind.eval(a, b, c)
                        }
                    };
                    values[i] = v;
                    continue;
                }
                let mut v = match kind {
                    GateKind::Input => values[i],
                    GateKind::Const0 => 0,
                    GateKind::Const1 => !0,
                    GateKind::Dff => {
                        let s = state[dff_i];
                        dff_i += 1;
                        s
                    }
                    _ => {
                        let p = g.pins;
                        let ps0 = &pin_sa0[i];
                        let ps1 = &pin_sa1[i];
                        let a = (values[p[0].index()] & !ps0[0]) | ps1[0];
                        let (b, c) = match kind.arity() {
                            2 => ((values[p[1].index()] & !ps0[1]) | ps1[1], 0),
                            3 => (
                                (values[p[1].index()] & !ps0[1]) | ps1[1],
                                (values[p[2].index()] & !ps0[2]) | ps1[2],
                            ),
                            _ => (0, 0),
                        };
                        kind.eval(a, b, c)
                    }
                };
                v = (v & !out_sa0[i]) | out_sa1[i];
                values[i] = v;
            }
            // Capture flip-flops (pin-0 masks apply at the D input).
            for (k, &q) in dff_nets.iter().enumerate() {
                let d = gates[q].pins[0].index();
                let masked = (values[d] & !pin_sa0[q][0]) | pin_sa1[q][0];
                state[k] = masked;
            }

            // Observe outputs: lanes differing from the good machine.
            let mut diff: u64 = 0;
            for &o in &out_nets {
                let v = values[o];
                let good = (v & 1).wrapping_neg();
                diff |= v ^ good;
            }
            diff &= lanes_mask;

            // Activation counts (good-machine value opposite to stuck value
            // at the site).
            let mut activated = 0u32;
            for (lane0, &fid) in batch.iter().enumerate() {
                if config.drop_detected && detected_mask >> (lane0 + 1) & 1 == 1 {
                    continue;
                }
                let f = list.fault(fid);
                let good_bit = match f.site {
                    FaultSite::Output(n) => values[n.index()] & 1 == 1,
                    FaultSite::InputPin(n, p) => {
                        let src = gates[n.index()].pins[p as usize].index();
                        values[src] & 1 == 1
                    }
                };
                if good_bit != f.polarity.value() {
                    activated += 1;
                }
            }
            activated_per_pattern[t] += activated;

            let cc = patterns.cc(t);
            if config.drop_detected {
                let newly = diff & !detected_mask;
                if newly != 0 {
                    let mut rest = newly;
                    while rest != 0 {
                        let lane = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let fid = lane_fault[lane - 1];
                        list.mark_detected(fid, cc, t);
                        report.record_detection(fid, cc, t);
                    }
                    detected_per_pattern[t] += newly.count_ones();
                    detected_mask |= newly;
                    if config.early_exit && detected_mask == lanes_mask {
                        break;
                    }
                }
            } else {
                detected_per_pattern[t] += diff.count_ones();
                let mut rest = diff & !detected_mask;
                while rest != 0 {
                    let lane = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let fid = lane_fault[lane - 1];
                    list.mark_detected(fid, cc, t);
                    report.record_detection(fid, cc, t);
                }
                detected_mask |= diff;
            }
        }
    }

    for t in 0..n_pat {
        report.record_pattern(
            patterns.cc(t),
            activated_per_pattern[t],
            detected_per_pattern[t],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultUniverse;
    use warpstl_netlist::Builder;

    fn and2() -> Netlist {
        let mut b = Builder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        b.output("z", z);
        b.finish()
    }

    fn exhaustive(width: usize) -> PatternSeq {
        let mut p = PatternSeq::new(width);
        for v in 0..(1u64 << width) {
            p.push_value(v, v);
        }
        p
    }

    #[test]
    fn exhaustive_patterns_reach_full_coverage() {
        let n = and2();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let r = fault_simulate(&n, &exhaustive(2), &mut l, &FaultSimConfig::default());
        assert_eq!(l.coverage(), 1.0, "{l}");
        assert_eq!(r.total_detected() as usize, u.collapsed_len());
    }

    #[test]
    fn single_pattern_detects_expected_subset() {
        // x=1, y=1 detects z/SA0 (and its class) but not x/SA1 etc.
        let n = and2();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let mut p = PatternSeq::new(2);
        p.push_value(0, 0b11);
        fault_simulate(&n, &p, &mut l, &FaultSimConfig::default());
        assert!(l.coverage() > 0.0 && l.coverage() < 1.0);
        // The detected class is the big SA0 class (5 of 10 faults).
        assert!((l.coverage() - 0.5).abs() < 1e-9, "{}", l.coverage());
    }

    #[test]
    fn dropping_skips_already_detected() {
        let n = and2();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let cfg = FaultSimConfig::default();
        let r1 = fault_simulate(&n, &exhaustive(2), &mut l, &cfg);
        assert!(r1.total_detected() > 0);
        // Second run with dropping: nothing left to detect.
        let r2 = fault_simulate(&n, &exhaustive(2), &mut l, &cfg);
        assert_eq!(r2.total_detected(), 0);
    }

    #[test]
    fn non_dropping_counts_every_observation() {
        let n = and2();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let cfg = FaultSimConfig {
            drop_detected: false,
            early_exit: false,
            ..FaultSimConfig::default()
        };
        // Two identical detecting patterns: both report detections.
        let mut p = PatternSeq::new(2);
        p.push_value(0, 0b11);
        p.push_value(1, 0b11);
        let r = fault_simulate(&n, &p, &mut l, &cfg);
        assert_eq!(r.patterns()[0].detected, r.patterns()[1].detected);
        assert!(r.patterns()[1].detected > 0);
    }

    #[test]
    fn detections_carry_cc_stamps() {
        let n = and2();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let mut p = PatternSeq::new(2);
        p.push_value(100, 0b00);
        p.push_value(200, 0b11);
        fault_simulate(&n, &p, &mut l, &FaultSimConfig::default());
        for (_, cc, _, _) in l.detected() {
            assert!(cc == 100 || cc == 200);
        }
        // The SA0 class is detected by the second pattern.
        let at_200 = l.detected().filter(|&(_, cc, _, _)| cc == 200).count();
        assert!(at_200 >= 1);
    }

    #[test]
    fn sequential_faults_propagate_through_state() {
        // in -> DFF -> out: a fault on the input is observed one cycle later.
        let mut b = Builder::new("ff");
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let mut p = PatternSeq::new(1);
        p.push_value(0, 1);
        p.push_value(1, 0);
        p.push_value(2, 1);
        p.push_value(3, 0);
        fault_simulate(&n, &p, &mut l, &FaultSimConfig::default());
        // Both classes (x/SA0 ≡ d/SA0 ≡ q/SA0 and the SA1 dual) are
        // observable: SA1 directly at cc 0 (q stuck high while the state is
        // still 0), SA0 only after a 1 has been clocked through.
        assert_eq!(l.coverage(), 1.0, "{l}");
        assert!(
            l.detected().any(|(_, cc, _, _)| cc >= 1),
            "state propagation never exercised"
        );
    }

    #[test]
    fn activation_without_propagation_is_counted() {
        // z = AND(x, y); pattern x=1,y=0 activates z/SA1? good z=0, so z/SA1
        // activated and detected; x/SA0 activated (x=1) and... masked by y=0.
        let n = and2();
        let u = FaultUniverse::enumerate(&n);
        let mut l = FaultList::new(&u);
        let mut p = PatternSeq::new(2);
        p.push_value(0, 0b01); // x=1, y=0
        let r = fault_simulate(&n, &p, &mut l, &FaultSimConfig::default());
        let stats = r.patterns()[0];
        assert!(stats.activated > stats.detected, "{stats:?}");
    }

    #[test]
    fn large_module_batches_are_consistent() {
        // >63 faults forces multiple batches; drop mode coverage must equal
        // the union of per-batch detections.
        let n = warpstl_netlist::modules::ModuleKind::DecoderUnit.build();
        let u = FaultUniverse::enumerate(&n);
        assert!(u.collapsed_len() > 63);
        let mut l = FaultList::new(&u);
        let width = n.inputs().width();
        let mut p = PatternSeq::new(width);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for cc in 0..40 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let bits: Vec<bool> = (0..width).map(|b| (x >> (b % 64)) & 1 == 1).collect();
            p.push_bits(cc, &bits);
        }
        let r = fault_simulate(&n, &p, &mut l, &FaultSimConfig::default());
        let listed = l.detected().count() as u32;
        assert_eq!(listed, r.total_detected());
        assert!(l.coverage() > 0.1, "{l}");
    }
}
