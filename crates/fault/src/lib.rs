#![warn(missing_docs)]
//! # warpstl-fault
//!
//! Stuck-at fault modelling and fault simulation for the gate-level modules
//! of [`warpstl-netlist`](warpstl_netlist).
//!
//! The crate provides:
//!
//! - [`Fault`] / [`FaultSite`] — single stuck-at faults on gate outputs
//!   (stems) and gate input pins (fanout branches);
//! - [`FaultUniverse`] — exhaustive fault enumeration with structural
//!   equivalence collapsing;
//! - [`FaultList`] — the mutable detection ledger the compaction flow
//!   shares across test programs (the paper's *fault dropping* mechanism);
//! - [`fault_simulate`] — a parallel-fault (63 faults + 1 good machine per
//!   machine word) simulator over timestamped pattern sequences, producing
//!   the per-cycle *Fault Sim Report* the instruction-labeling stage
//!   consumes.
//!
//! # Examples
//!
//! ```
//! use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
//! use warpstl_netlist::{Builder, PatternSeq};
//!
//! let mut b = Builder::new("and2");
//! let x = b.input("x");
//! let y = b.input("y");
//! let z = b.and(x, y);
//! b.output("z", z);
//! let netlist = b.finish();
//!
//! let universe = FaultUniverse::enumerate(&netlist);
//! let mut list = FaultList::new(&universe);
//!
//! let mut patterns = PatternSeq::new(2);
//! patterns.push_value(0, 0b11); // detects all stuck-at-0 faults
//! patterns.push_value(1, 0b01); // x=1, y=0
//! patterns.push_value(2, 0b10);
//!
//! let report = fault_simulate(&netlist, &patterns, &mut list, &FaultSimConfig::default());
//! assert_eq!(list.coverage(), 1.0); // the AND gate is fully testable
//! assert!(report.total_detected() > 0);
//! ```

mod bridge;
mod dominance;
pub mod engine;
mod fault;
mod kernel;
mod list;
mod report;
mod sim;
pub mod tdf;
mod universe;

pub use bridge::{
    bridge_simulate, bridge_simulate_observed, BridgeConfig, BridgeFault, BridgeKind, BridgeList,
    BridgeUniverse, FaultModel,
};
pub use dominance::DominanceView;
pub use engine::host_parallelism;
pub use fault::{Fault, FaultSite, Polarity};
pub use list::{FaultId, FaultList, FaultStatus};
pub use report::{FaultSimReport, PatternStats};
pub use sim::{
    fault_simulate, fault_simulate_guided, fault_simulate_observed, fault_simulate_reference,
    FaultSimConfig, SimBackend, SimGuide,
};
pub use universe::FaultUniverse;
