//! The levelized SoA batch kernel: pattern-parallel fault simulation over
//! rank-major gate arrays.
//!
//! Where the event path ([`crate::engine::run_batches`]) packs 63 faulty
//! machines into each 64-bit word and walks one pattern at a time, the
//! kernel turns the word the other way: **bit lanes are patterns**. A block
//! is `W` consecutive 64-bit lane words — `W = 4` (256 patterns) on the main
//! path, autovectorizable as plain `[u64; 4]` arithmetic, with `W = 1` kept
//! as the remainder path for spans that don't fill a wide block.
//!
//! The 2D batching then looks like this:
//!
//! - **Pattern-parallel within a block.** The good machine is evaluated once
//!   per worker for the whole pattern span, rank by rank over the
//!   [`Levelization`] segments — each segment is one branch-free loop over
//!   gates of one kind, reading and writing a flat `net × word` span
//!   buffer.
//! - **Fault-parallel across the existing 63-fault groups.** Batches keep
//!   the engine's exact composition (that is what fixes the report order);
//!   within a batch each fault is propagated alone: its faulty machine
//!   differs from the good one only where the fault's effect survives, so
//!   the kernel forces the site word and chases the **difference frontier**
//!   through the levelization's rank buckets — a gate is (re)evaluated for
//!   a block only if one of its inputs actually changed, and the frontier
//!   dies wherever the faulty word equals the good word. Fanout-cone
//!   pruning is implicit: the frontier is confined to the site's cone and
//!   is usually far smaller.
//!
//! Two screens keep per-fault work near zero for inert blocks: an
//! activation screen (a fault whose site sees no opposing good value in a
//! block cannot change anything) and the frontier itself (a pin fault whose
//! effect is absorbed by the seed gate propagates nowhere). Detection,
//! activation, and per-pattern tallies are extracted per pattern, and the
//! per-batch detection log is sorted back into the serial
//! `(pattern, lane)` order — making the report **bit-identical** to the
//! event path (the equivalence suite asserts this).
//!
//! Fault dropping maps naturally: a dropped fault simply stops after the
//! block containing its first detection — the pattern-block analogue of the
//! event path's early exit, but per fault rather than per batch. In drop
//! mode the first `W` words of each fault are probed as narrow blocks
//! (most faults detect within the first few dozen patterns; evaluating a
//! full 256-lane block to find a detection in lane 3 wastes the width) and
//! only faults that survive the probe graduate to wide blocks.

use warpstl_netlist::{GateKind, Levelization};
use warpstl_obs::{Metrics, Obs, ObsExt};

use crate::engine::{Ctx, WorkerOut};
use crate::{Fault, FaultId, FaultSite};

/// Evaluates one run of same-kind gates over the gate-major span buffer
/// (`row` words per net, block at word offset `base`). Operands are staged
/// through fixed-size arrays so each access is one bounds-checked slice
/// copy instead of `BW` indexed loads.
#[inline]
fn eval_run_strided<const BW: usize>(
    kind: GateKind,
    nodes: &[u32],
    pins: &[[u32; 3]],
    vals: &mut [u64],
    row: usize,
    base: usize,
) {
    macro_rules! unary {
        ($f:expr) => {
            for (k, &g) in nodes.iter().enumerate() {
                let mut a = [0u64; BW];
                a.copy_from_slice(&vals[pins[k][0] as usize * row + base..][..BW]);
                let o0 = g as usize * row + base;
                for (w, dst) in vals[o0..o0 + BW].iter_mut().enumerate() {
                    *dst = $f(a[w]);
                }
            }
        };
    }
    macro_rules! binary {
        ($f:expr) => {
            for (k, &g) in nodes.iter().enumerate() {
                let mut a = [0u64; BW];
                a.copy_from_slice(&vals[pins[k][0] as usize * row + base..][..BW]);
                let mut b = [0u64; BW];
                b.copy_from_slice(&vals[pins[k][1] as usize * row + base..][..BW]);
                let o0 = g as usize * row + base;
                for (w, dst) in vals[o0..o0 + BW].iter_mut().enumerate() {
                    *dst = $f(a[w], b[w]);
                }
            }
        };
    }
    match kind {
        GateKind::Buf => unary!(|a: u64| a),
        GateKind::Not => unary!(|a: u64| !a),
        GateKind::And => binary!(|a: u64, b: u64| a & b),
        GateKind::Or => binary!(|a: u64, b: u64| a | b),
        GateKind::Nand => binary!(|a: u64, b: u64| !(a & b)),
        GateKind::Nor => binary!(|a: u64, b: u64| !(a | b)),
        GateKind::Xor => binary!(|a: u64, b: u64| a ^ b),
        GateKind::Xnor => binary!(|a: u64, b: u64| !(a ^ b)),
        GateKind::Mux => {
            for (k, &g) in nodes.iter().enumerate() {
                let mut s = [0u64; BW];
                s.copy_from_slice(&vals[pins[k][0] as usize * row + base..][..BW]);
                let mut a = [0u64; BW];
                a.copy_from_slice(&vals[pins[k][1] as usize * row + base..][..BW]);
                let mut b = [0u64; BW];
                b.copy_from_slice(&vals[pins[k][2] as usize * row + base..][..BW]);
                let o0 = g as usize * row + base;
                for (w, dst) in vals[o0..o0 + BW].iter_mut().enumerate() {
                    *dst = (s[w] & a[w]) | (!s[w] & b[w]);
                }
            }
        }
        // Sources never appear in logic segments: the good pass handles
        // them explicitly, and DFFs never reach the kernel.
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => {
            unreachable!("source/state kinds are not evaluated by segment runs")
        }
    }
}

/// Evaluates the good machine for one `BW`-word block of the span, writing
/// into the gate-major span buffer `good` (`stride` words per gate, block at
/// word offset `base`). Inputs come from the transposed pattern words.
fn good_block<const BW: usize>(
    levels: &Levelization,
    in_slot: &[u32],
    in_words: &[u64],
    good: &mut [u64],
    stride: usize,
    base: usize,
) {
    for seg in levels.segments() {
        let nodes = &levels.order()[seg.range()];
        match seg.kind {
            GateKind::Input => {
                for &g in nodes {
                    let o0 = g as usize * stride + base;
                    let slot = in_slot[g as usize];
                    if slot == u32::MAX {
                        // An input gate absent from the port map is never
                        // driven; the event path leaves it at 0.
                        good[o0..o0 + BW].fill(0);
                    } else {
                        let s0 = slot as usize * stride + base;
                        good[o0..o0 + BW].copy_from_slice(&in_words[s0..s0 + BW]);
                    }
                }
            }
            GateKind::Const0 | GateKind::Const1 => {
                let v = if seg.kind == GateKind::Const1 {
                    !0u64
                } else {
                    0
                };
                for &g in nodes {
                    let o0 = g as usize * stride + base;
                    good[o0..o0 + BW].fill(v);
                }
            }
            kind => {
                let pins = &levels.pins()[seg.range()];
                eval_run_strided::<BW>(kind, nodes, pins, good, stride, base);
            }
        }
    }
}

/// Adds 1 to `tally[t_base + bit]` for every set bit of `word`.
#[inline]
fn tally_bits(mut word: u64, t_base: usize, tally: &mut [u32]) {
    while word != 0 {
        let b = word.trailing_zeros() as usize;
        word &= word - 1;
        tally[t_base + b] += 1;
    }
}

/// Per-fault cross-block state.
struct FaultRun {
    fid: FaultId,
    fault: Fault,
    /// 1-based batch lane (serial tie-break within a pattern).
    lane: usize,
    /// Activation is counted where the good site value opposes the stuck
    /// value; `invert` is true for SA1 (activated when the good bit is 0).
    invert: bool,
    /// Gate-major row of the activation source net in the good span buffer.
    src: usize,
    /// First-detection pattern, once found.
    detected_at: Option<usize>,
}

/// Reusable difference-frontier state, epoch-stamped so nothing is cleared
/// between faults or blocks.
struct Frontier {
    /// Faulty words of perturbed nets, `W` words per net (narrow blocks use
    /// the first word of a row).
    faulty: Vec<u64>,
    /// `stamp_val[net] == epoch` means `faulty` holds net's block words;
    /// otherwise the net carries the good value.
    stamp_val: Vec<u32>,
    /// Queue de-duplication stamp.
    stamp_queued: Vec<u32>,
    epoch: u32,
    /// One pending-gate bucket per levelization rank; gates are drained in
    /// ascending rank order, which is a valid evaluation order.
    buckets: Vec<Vec<u32>>,
    /// Whether a net is a module output (a detection observation point).
    is_out: Vec<bool>,
}

impl Frontier {
    fn new(ctx: &Ctx<'_>, levels: &Levelization) -> Frontier {
        let n = ctx.gates.len();
        let mut is_out = vec![false; n];
        for &o in ctx.out_nets {
            is_out[o] = true;
        }
        Frontier {
            faulty: vec![0u64; n * 4],
            stamp_val: vec![0u32; n],
            stamp_queued: vec![0u32; n],
            epoch: 0,
            buckets: vec![Vec::new(); levels.ranks()],
            is_out,
        }
    }
}

/// Propagates one fault's difference frontier through one block, returning
/// the diff word(s) observed at the module outputs (already confined to the
/// span's valid lanes) and counting evaluated gates into `gate_evals`.
#[allow(clippy::too_many_arguments)]
fn propagate<const BW: usize>(
    ctx: &Ctx<'_>,
    levels: &Levelization,
    fr: &mut Frontier,
    run: &FaultRun,
    good: &[u64],
    word_mask: &[u64],
    stride: usize,
    base: usize,
    gate_evals: &mut u64,
) -> [u64; BW] {
    fr.epoch += 1;
    let epoch = fr.epoch;
    let seed = run.fault.site.gate().index();
    let forced = if run.invert { !0u64 } else { 0 };

    // Seed word: the injected faulty value, masked to the valid lanes so
    // the frontier never chases garbage in a span's tail bits.
    let g0 = seed * stride + base;
    let mut diff = [0u64; BW];
    match run.fault.site {
        // Output stem: the net is stuck regardless of the gate's inputs —
        // exactly the event path's `(v & !sa0) | sa1`.
        FaultSite::Output(_) => {
            for w in 0..BW {
                diff[w] = (forced ^ good[g0 + w]) & word_mask[base + w];
            }
        }
        // Branch fault: evaluate the seed gate with the stuck pin forced;
        // its inputs are upstream of the cone, so they carry good values.
        FaultSite::InputPin(_, p) => {
            let gate = &ctx.gates[seed];
            let arity = gate.kind.arity();
            let pin = |q: usize, w: usize| -> u64 {
                if q == p as usize {
                    forced
                } else {
                    good[gate.pins[q].index() * stride + base + w]
                }
            };
            for w in 0..BW {
                let a = pin(0, w);
                let (b, c) = match arity {
                    2 => (pin(1, w), 0),
                    3 => (pin(1, w), pin(2, w)),
                    _ => (0, 0),
                };
                diff[w] = (gate.kind.eval(a, b, c) ^ good[g0 + w]) & word_mask[base + w];
            }
        }
    }
    if diff.iter().all(|&d| d == 0) {
        // The seed gate absorbed the fault in every lane of this block
        // (possible for pin faults when another input is controlling).
        return diff;
    }

    let mut d_acc = [0u64; BW];
    let store = |fr: &mut Frontier, net: usize, words: &[u64; BW]| {
        fr.faulty[net * 4..net * 4 + BW].copy_from_slice(words);
        fr.stamp_val[net] = epoch;
    };
    let mut fw = [0u64; BW];
    for w in 0..BW {
        fw[w] = good[g0 + w] ^ diff[w];
    }
    store(fr, seed, &fw);
    if fr.is_out[seed] {
        d_acc = diff;
    }

    let mut max_rank = levels.rank_of(seed) as usize;
    let push = |fr: &mut Frontier, levels: &Levelization, max_rank: &mut usize, from: usize| {
        for &r in ctx.cones.successors(from) {
            let ri = r as usize;
            if fr.stamp_queued[ri] != epoch {
                fr.stamp_queued[ri] = epoch;
                let rank = levels.rank_of(ri) as usize;
                fr.buckets[rank].push(r);
                if rank > *max_rank {
                    *max_rank = rank;
                }
            }
        }
    };
    push(fr, levels, &mut max_rank, seed);

    let mut rank = levels.rank_of(seed) as usize + 1;
    while rank <= max_rank {
        if fr.buckets[rank].is_empty() {
            rank += 1;
            continue;
        }
        let mut bucket = std::mem::take(&mut fr.buckets[rank]);
        for &gi in &bucket {
            let gi = gi as usize;
            let gate = &ctx.gates[gi];
            // Operands: faulty where perturbed this epoch, good otherwise.
            let mut ops = [[0u64; BW]; 3];
            for (q, &p) in gate.inputs().iter().enumerate() {
                let pi = p.index();
                if fr.stamp_val[pi] == epoch {
                    ops[q].copy_from_slice(&fr.faulty[pi * 4..pi * 4 + BW]);
                } else {
                    let s0 = pi * stride + base;
                    ops[q].copy_from_slice(&good[s0..s0 + BW]);
                }
            }
            let o0 = gi * stride + base;
            let mut out = [0u64; BW];
            let mut changed = 0u64;
            for w in 0..BW {
                out[w] = gate.kind.eval(ops[0][w], ops[1][w], ops[2][w]);
                changed |= out[w] ^ good[o0 + w];
            }
            *gate_evals += 1;
            if changed != 0 {
                store(fr, gi, &out);
                if fr.is_out[gi] {
                    for w in 0..BW {
                        d_acc[w] |= out[w] ^ good[o0 + w];
                    }
                }
                push(fr, levels, &mut max_rank, gi);
            }
        }
        bucket.clear();
        fr.buckets[rank] = bucket;
        rank += 1;
    }
    d_acc
}

/// Folds one evaluated block into the tallies and detection log, preserving
/// the event path's exact semantics: activation is counted per pattern up
/// to and including a dropped fault's detecting pattern; detections record
/// only the first observation in drop mode, every observation otherwise.
/// Both `d` and `a` arrive masked to the span's valid lanes.
#[allow(clippy::too_many_arguments)]
fn absorb_block<const BW: usize>(
    d: [u64; BW],
    mut a: [u64; BW],
    run: &mut FaultRun,
    base: usize,
    p0: usize,
    drop: bool,
    out: &mut WorkerOut,
    det: &mut Vec<(usize, usize, FaultId)>,
) {
    if drop {
        let mut hit: Option<(usize, u32)> = None;
        for (w, &dw) in d.iter().enumerate() {
            if dw != 0 {
                hit = Some((w, dw.trailing_zeros()));
                break;
            }
        }
        if let Some((hw, hb)) = hit {
            let t = p0 + (base + hw) * 64 + hb as usize;
            // The fault is skipped from the pattern after its detection on:
            // clip activation to bits <= the detecting pattern.
            for aw in a.iter_mut().skip(hw + 1) {
                *aw = 0;
            }
            a[hw] &= if hb == 63 { !0 } else { (1u64 << (hb + 1)) - 1 };
            run.detected_at = Some(t);
            det.push((t, run.lane, run.fid));
            out.detected[t] += 1;
        }
        for (w, &aw) in a.iter().enumerate() {
            tally_bits(aw, p0 + (base + w) * 64, &mut out.activated);
        }
    } else {
        for w in 0..BW {
            let t_base = p0 + (base + w) * 64;
            tally_bits(a[w], t_base, &mut out.activated);
            tally_bits(d[w], t_base, &mut out.detected);
        }
        if run.detected_at.is_none() {
            for (w, &dw) in d.iter().enumerate() {
                if dw != 0 {
                    let t = p0 + (base + w) * 64 + dw.trailing_zeros() as usize;
                    run.detected_at = Some(t);
                    det.push((t, run.lane, run.fid));
                    break;
                }
            }
        }
    }
}

/// Runs one block for one fault: activation screen, frontier propagation,
/// tally/detection fold. Returns 1 if the cone was actually propagated.
#[allow(clippy::too_many_arguments)]
fn fault_block<const BW: usize>(
    ctx: &Ctx<'_>,
    levels: &Levelization,
    fr: &mut Frontier,
    run: &mut FaultRun,
    good: &[u64],
    word_mask: &[u64],
    stride: usize,
    base: usize,
    p0: usize,
    drop: bool,
    det: &mut Vec<(usize, usize, FaultId)>,
    out: &mut WorkerOut,
    gate_evals: &mut u64,
) -> u64 {
    // Activation screen: lanes where the good site value opposes the stuck
    // value. All-zero means the faulty machine is identical in this block —
    // no detection, no activation, nothing to do.
    let g0 = run.src * stride + base;
    let mut a = [0u64; BW];
    let mut any = 0u64;
    for w in 0..BW {
        let g = good[g0 + w];
        a[w] = (if run.invert { !g } else { g }) & word_mask[base + w];
        any |= a[w];
    }
    if any == 0 {
        return 0;
    }
    let d = propagate::<BW>(
        ctx, levels, fr, run, good, word_mask, stride, base, gate_evals,
    );
    absorb_block::<BW>(d, a, run, base, p0, drop, out, det);
    1
}

/// The kernel's counterpart of [`crate::engine::run_batches`]: simulates a
/// contiguous range of batches over the pattern window and returns the same
/// per-batch detection logs (serial `(pattern, lane)` order within each
/// batch) and exact per-pattern tallies. `W` is the block width in words;
/// spans that don't fill a wide block fall through to the 64-bit remainder
/// path, and drop mode probes each fault's first `W` words as narrow
/// blocks before graduating to wide ones.
pub(crate) fn run_batches_kernel<const W: usize>(
    ctx: &Ctx<'_>,
    levels: &Levelization,
    batches: &[Vec<(FaultId, Fault)>],
    obs: Obs<'_>,
    first_batch: usize,
    pat_range: (usize, usize),
) -> WorkerOut {
    debug_assert!(
        ctx.dff_nets.is_empty(),
        "the levelized kernel is combinational-only"
    );
    let mut worker_span = obs.span("fsim", "fsim.worker");
    worker_span.arg("first_batch", first_batch);
    worker_span.arg("batches", batches.len());
    let mut local = Metrics::default();

    let n_pat = ctx.patterns.len();
    let n_gates = ctx.gates.len();
    let (p0, p1) = pat_range;
    let span = p1 - p0;
    let mut out = WorkerOut {
        detections: Vec::with_capacity(batches.len()),
        activated: vec![0u32; n_pat],
        detected: vec![0u32; n_pat],
    };
    if span == 0 || n_gates == 0 {
        out.detections.extend(batches.iter().map(|_| Vec::new()));
        return out;
    }

    let stride = span.div_ceil(64);
    // Valid-pattern masks: all-ones except the span's tail word.
    let mut word_mask = vec![!0u64; stride];
    if span % 64 != 0 {
        word_mask[stride - 1] = (1u64 << (span % 64)) - 1;
    }

    // Transpose the pattern window: one `stride`-word row per input bit.
    let mut in_words = vec![0u64; ctx.in_nets.len() * stride];
    for bit_pos in 0..ctx.in_nets.len() {
        let row = &mut in_words[bit_pos * stride..][..stride];
        for t in 0..span {
            if ctx.patterns.bit(p0 + t, bit_pos) {
                row[t >> 6] |= 1u64 << (t & 63);
            }
        }
    }
    let mut in_slot = vec![u32::MAX; n_gates];
    for (i, &net) in ctx.in_nets.iter().enumerate() {
        in_slot[net] = i as u32;
    }

    // Good machine once for the whole span: wide blocks, then remainders.
    let mut kernel_span = obs.span("fsim", "fsim.kernel");
    let mut good = vec![0u64; n_gates * stride];
    let wide_end = stride - stride % W;
    let mut base = 0usize;
    while base < wide_end {
        good_block::<W>(levels, &in_slot, &in_words, &mut good, stride, base);
        base += W;
    }
    while base < stride {
        good_block::<1>(levels, &in_slot, &in_words, &mut good, stride, base);
        base += 1;
    }
    let blocks = (wide_end / W) + (stride - wide_end);
    if obs.enabled() {
        kernel_span.arg("width", W * 64);
        kernel_span.arg("blocks", blocks);
        kernel_span.arg("rank_count", levels.ranks());
        local.add("fsim.batches", batches.len() as u64);
        local.add("fsim.kernel.blocks", blocks as u64);
    }

    let drop = ctx.config.drop_detected;
    let mut fr = Frontier::new(ctx, levels);
    let mut fault_blocks = 0u64;
    let mut gate_evals = 0u64;

    for batch in batches {
        let mut det: Vec<(usize, usize, FaultId)> = Vec::new();
        for (lane0, &(fid, f)) in batch.iter().enumerate() {
            let mut run = FaultRun {
                fid,
                fault: f,
                lane: lane0 + 1,
                invert: f.polarity.value(),
                src: match f.site {
                    FaultSite::Output(n) => n.index(),
                    FaultSite::InputPin(n, p) => ctx.gates[n.index()].pins[p as usize].index(),
                },
                detected_at: None,
            };
            let mut base = 0usize;
            while base < stride {
                if drop && run.detected_at.is_some() {
                    break;
                }
                // Drop-mode probe: most faults detect within the first few
                // dozen patterns, so their first `W` words run as narrow
                // blocks; survivors use full-width blocks where aligned.
                let wide_ok = base.is_multiple_of(W) && base + W <= stride && !(drop && base < W);
                if wide_ok {
                    fault_blocks += fault_block::<W>(
                        ctx,
                        levels,
                        &mut fr,
                        &mut run,
                        &good,
                        &word_mask,
                        stride,
                        base,
                        p0,
                        drop,
                        &mut det,
                        &mut out,
                        &mut gate_evals,
                    );
                    base += W;
                } else {
                    fault_blocks += fault_block::<1>(
                        ctx,
                        levels,
                        &mut fr,
                        &mut run,
                        &good,
                        &word_mask,
                        stride,
                        base,
                        p0,
                        drop,
                        &mut det,
                        &mut out,
                        &mut gate_evals,
                    );
                    base += 1;
                }
            }
        }
        // Serial order within a batch is pattern-major, then lane: restore
        // it so the engine's batch-major merge is byte-identical.
        det.sort_unstable();
        out.detections.push(
            det.into_iter()
                .map(|(t, _, fid)| (fid, ctx.patterns.cc(t), t))
                .collect(),
        );
    }

    if obs.enabled() {
        local.add("fsim.kernel.fault_blocks", fault_blocks);
        local.add("fsim.kernel.cone_gates", gate_evals);
    }
    if let Some(rec) = obs {
        rec.merge_metrics(&local);
    }
    out
}
