//! Bridging faults: AND/OR-type two-net bridges over a deterministically
//! sampled adjacent-net pair list.
//!
//! A bridging fault shorts two nets `a` and `b` together; the wired value
//! both nets carry is `AND(a, b)` or `OR(a, b)` of the fault-free values
//! (wired-AND / wired-OR). The universe is *sampled*, not exhaustive: real
//! bridge defects couple physically adjacent wires, and without layout data
//! the best structural proxy for adjacency is nets feeding adjacent input
//! pins of the same gate — those routes converge on one cell. The sampler
//! draws a deterministic pseudorandom subset of those candidate pairs (see
//! [`BridgeConfig`]), so universes are reproducible and cacheable.
//!
//! Two restrictions keep single-pass simulation *exact*:
//!
//! - **Combinational only** — wired values have no defined clock semantics
//!   across flip-flops here, so sampling a sequential netlist yields an
//!   empty universe.
//! - **Non-feedback pairs only** — if one net lay in the other's fanout
//!   cone, forcing the wired value would feed back into its own inputs
//!   (potential oscillation). Excluding those pairs means the fault-free
//!   values of `a` and `b` are unaffected by the injection, so
//!   `w = kind(good_a, good_b)` computed from the good machine is the exact
//!   steady-state wired value.
//!
//! Simulation reuses the whole stuck-at reporting stack: the ledger is
//! [`BridgeList`] (the generic [`FaultList`] over [`BridgeFault`]) and the
//! output is the same [`FaultSimReport`]. A bridge is *activated* by a
//! pattern when `good_a != good_b` (equal values make the wired value a
//! no-op) and *detected* when the forced cone evaluation differs from the
//! good machine at a module output. Like the stuck-at engine, an event path
//! (63 bridges + good machine per 64-bit word, lane-parallel) and a
//! pattern-parallel kernel path (64 patterns per word, one bridge cone at a
//! time) produce **bit-identical** reports.

use std::fmt;

use warpstl_netlist::{FanoutCones, Gate, GateKind, NetId, Netlist, PatternSeq};
use warpstl_obs::{Obs, ObsExt};

use crate::{FaultId, FaultList, FaultSimConfig, FaultSimReport, SimBackend};

/// The detection ledger for bridging faults: the generic [`FaultList`]
/// instantiated at [`BridgeFault`]. Every fault weighs 1 (bridges carry no
/// equivalence-class collapsing), and coverage/report/serialization behave
/// exactly as for stuck-at lists.
pub type BridgeList = FaultList<BridgeFault>;

/// The wired function of a two-net bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BridgeKind {
    /// Wired-AND: both nets carry `a & b`.
    And,
    /// Wired-OR: both nets carry `a | b`.
    Or,
}

impl BridgeKind {
    /// Both wired functions.
    pub const BOTH: [BridgeKind; 2] = [BridgeKind::And, BridgeKind::Or];

    /// The wired value for fault-free endpoint values `a` and `b`.
    #[must_use]
    pub fn wired(self, a: bool, b: bool) -> bool {
        match self {
            BridgeKind::And => a && b,
            BridgeKind::Or => a || b,
        }
    }

    /// [`wired`](BridgeKind::wired) over lane- or pattern-parallel words.
    #[must_use]
    pub fn wired_word(self, a: u64, b: u64) -> u64 {
        match self {
            BridgeKind::And => a & b,
            BridgeKind::Or => a | b,
        }
    }
}

impl fmt::Display for BridgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BridgeKind::And => "AND",
            BridgeKind::Or => "OR",
        })
    }
}

/// A single two-net bridging fault. Endpoints are normalized `a < b` by the
/// sampler so `(a, b)` and `(b, a)` name the same defect.
///
/// # Examples
///
/// ```
/// use warpstl_fault::{BridgeFault, BridgeKind};
/// use warpstl_netlist::NetId;
///
/// let f = BridgeFault::new(NetId(3), NetId(7), BridgeKind::And);
/// assert_eq!(f.to_string(), "bridge(n3,n7)/AND");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BridgeFault {
    /// The lower-indexed endpoint net.
    pub a: NetId,
    /// The higher-indexed endpoint net.
    pub b: NetId,
    /// The wired function.
    pub kind: BridgeKind,
}

impl BridgeFault {
    /// Creates a bridging fault.
    #[must_use]
    pub fn new(a: NetId, b: NetId, kind: BridgeKind) -> BridgeFault {
        BridgeFault { a, b, kind }
    }
}

impl fmt::Display for BridgeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bridge({},{})/{}", self.a, self.b, self.kind)
    }
}

/// Which fault model a simulation/compaction run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// Single stuck-at faults (the paper's model; the default).
    #[default]
    StuckAt,
    /// Sampled AND/OR two-net bridging faults.
    Bridging,
}

impl FaultModel {
    /// Parses a model name (`stuck-at` or `bridging`, with a few common
    /// spellings), case-insensitively. Returns `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "stuck-at" | "stuckat" | "stuck_at" | "sa" => Some(FaultModel::StuckAt),
            "bridging" | "bridge" => Some(FaultModel::Bridging),
            _ => None,
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultModel::StuckAt => "stuck-at",
            FaultModel::Bridging => "bridging",
        })
    }
}

/// Configuration of the bridge-pair sampler. Both fields are **cache-key
/// material** (see `key_bridge_sim` in `warpstl-store`): they determine the
/// sampled universe and therefore every downstream result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BridgeConfig {
    /// How many candidate net pairs to sample; each pair yields one
    /// wired-AND and one wired-OR fault. Fewer candidates than requested
    /// samples them all.
    pub pairs: usize,
    /// Seed of the deterministic xorshift selection. `0` falls back to a
    /// fixed default so the default config never degenerates.
    pub seed: u64,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig { pairs: 64, seed: 0 }
    }
}

/// A sampled bridging-fault universe over one netlist.
///
/// # Examples
///
/// ```
/// use warpstl_fault::{BridgeConfig, BridgeUniverse};
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("n");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.and(x, y);
/// b.output("z", z);
/// let u = BridgeUniverse::sample(&b.finish(), &BridgeConfig::default());
/// assert_eq!(u.len(), 2); // one adjacent pair, wired-AND + wired-OR
/// let list = u.new_list();
/// assert_eq!(list.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BridgeUniverse {
    faults: Vec<BridgeFault>,
    candidate_pairs: usize,
}

impl BridgeUniverse {
    /// Samples a bridging universe: candidate pairs are the distinct net
    /// pairs feeding *adjacent input pins* of any gate (the structural
    /// adjacency proxy), minus constant nets and feedback pairs (one net in
    /// the other's fanout cone); `config.pairs` of them are selected by a
    /// deterministic xorshift shuffle and emitted in ascending `(a, b)`
    /// order, wired-AND before wired-OR per pair. Sequential netlists yield
    /// an empty universe (bridging simulation is combinational-only).
    #[must_use]
    pub fn sample(netlist: &Netlist, config: &BridgeConfig) -> BridgeUniverse {
        if !netlist.is_combinational() {
            return BridgeUniverse {
                faults: Vec::new(),
                candidate_pairs: 0,
            };
        }
        let gates = netlist.gates();
        let is_const =
            |n: NetId| matches!(gates[n.index()].kind, GateKind::Const0 | GateKind::Const1);
        let mut pairs: Vec<(NetId, NetId)> = Vec::new();
        for g in gates {
            for w in g.inputs().windows(2) {
                let (mut a, mut b) = (w[0], w[1]);
                if a == b || is_const(a) || is_const(b) {
                    continue;
                }
                if a.index() > b.index() {
                    std::mem::swap(&mut a, &mut b);
                }
                pairs.push((a, b));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        // Non-feedback filter. Ascending index is a topological order of
        // combinational logic, so only the lower net's cone can reach the
        // higher net; one membership test per pair suffices.
        let cones = netlist.fanout_cones();
        pairs.retain(|&(a, b)| {
            cones
                .union_cone([a.index()])
                .binary_search(&(b.index() as u32))
                .is_err()
        });
        let candidate_pairs = pairs.len();

        let keep = config.pairs.min(pairs.len());
        let mut state = if config.seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            config.seed
        };
        // Partial Fisher-Yates: the first `keep` slots end up holding a
        // uniform sample, then ascending order restores determinism of the
        // fault numbering regardless of the draw order.
        for i in 0..keep {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = i + (state as usize) % (pairs.len() - i);
            pairs.swap(i, j);
        }
        pairs.truncate(keep);
        pairs.sort_unstable();

        let mut faults = Vec::with_capacity(keep * 2);
        for (a, b) in pairs {
            for kind in BridgeKind::BOTH {
                faults.push(BridgeFault::new(a, b, kind));
            }
        }
        BridgeUniverse {
            faults,
            candidate_pairs,
        }
    }

    /// The sampled faults, in ascending `(a, b, kind)` order.
    #[must_use]
    pub fn faults(&self) -> &[BridgeFault] {
        &self.faults
    }

    /// The number of sampled faults (two per sampled pair).
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many candidate pairs survived the adjacency/feedback filters
    /// (the sampling pool size, before the `pairs` cut).
    #[must_use]
    pub fn candidate_pairs(&self) -> usize {
        self.candidate_pairs
    }

    /// A fresh unit-weight detection ledger over this universe.
    #[must_use]
    pub fn new_list(&self) -> BridgeList {
        BridgeList::from_faults(self.faults.clone())
    }
}

/// One 63-bridge batch of the event path, resolved for simulation.
struct BridgePlan {
    /// `(fault id, fault)` per lane; lane `i + 1` simulates `faults[i]`.
    faults: Vec<(FaultId, BridgeFault)>,
    /// Bits of the faulty lanes (bit 0, the good machine, excluded).
    lanes_mask: u64,
    /// Union fanout cone of all endpoint nets, ascending gate indices.
    cone: Vec<u32>,
    /// Nets read by cone gates but not in the cone (always good values).
    boundary: Vec<u32>,
    /// Per cone position: lanes whose bridge has an endpoint at this gate.
    /// After evaluating the gate, those lanes are forced to the per-pattern
    /// wired value.
    ep_lanes: Vec<u64>,
    /// Output nets inside the cone (the only ones that can observe a diff).
    outs: Vec<u32>,
}

impl BridgePlan {
    /// Resolves one batch. `in_cone` is caller-provided scratch of
    /// `gates.len()`, false on entry and restored to false on exit.
    fn build(
        gates: &[Gate],
        cones: &FanoutCones,
        out_nets: &[usize],
        faults: &[(FaultId, BridgeFault)],
        in_cone: &mut [bool],
    ) -> BridgePlan {
        let cone = cones.union_cone(faults.iter().flat_map(|&(_, f)| [f.a.index(), f.b.index()]));
        for &g in &cone {
            in_cone[g as usize] = true;
        }
        let mut ep_lanes = vec![0u64; cone.len()];
        for (lane0, &(_, f)) in faults.iter().enumerate() {
            let bit = 1u64 << (lane0 + 1);
            for n in [f.a, f.b] {
                let j = cone
                    .binary_search(&(n.index() as u32))
                    .expect("endpoint is a cone seed");
                ep_lanes[j] |= bit;
            }
        }
        let mut boundary: Vec<u32> = Vec::new();
        for &gu in &cone {
            for &pin in gates[gu as usize].inputs() {
                if !in_cone[pin.index()] {
                    boundary.push(pin.index() as u32);
                }
            }
        }
        boundary.sort_unstable();
        boundary.dedup();
        let outs = out_nets
            .iter()
            .filter(|&&o| in_cone[o])
            .map(|&o| o as u32)
            .collect();
        for &g in &cone {
            in_cone[g as usize] = false;
        }
        let lanes_mask: u64 = if faults.len() == 63 {
            !1u64
        } else {
            ((1u64 << (faults.len() + 1)) - 1) & !1
        };
        BridgePlan {
            faults: faults.to_vec(),
            lanes_mask,
            cone,
            boundary,
            ep_lanes,
            outs,
        }
    }
}

/// Per-batch mutable state of the event path.
struct BridgeState {
    vals: Vec<u64>,
    detected_mask: u64,
    active: bool,
    detections: Vec<(FaultId, u64, usize)>,
}

/// Shared read-only inputs of both backends.
struct BridgeCtx<'a> {
    gates: &'a [Gate],
    patterns: &'a PatternSeq,
    cones: &'a FanoutCones,
    in_nets: Vec<usize>,
    out_nets: Vec<usize>,
    config: FaultSimConfig,
}

/// Evaluates one combinational gate from lane- or pattern-parallel words.
/// `Dff` is unreachable: bridging simulation is combinational-only (the
/// sampler returns an empty universe for sequential netlists, and the
/// entry point asserts the invariant).
fn eval_gate(gates: &[Gate], vals: &[u64], i: usize, input_word: u64) -> u64 {
    let g = &gates[i];
    match g.kind {
        GateKind::Input => input_word,
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
        GateKind::Dff => unreachable!("bridging simulation is combinational-only"),
        kind => {
            let p = g.pins;
            let a = vals[p[0].index()];
            let (b, c) = match kind.arity() {
                2 => (vals[p[1].index()], 0),
                3 => (vals[p[1].index()], vals[p[2].index()]),
                _ => (0, 0),
            };
            kind.eval(a, b, c)
        }
    }
}

/// Advances one batch by one pattern: wired-value word, forced cone
/// evaluation, output observation, activation counting, and detection
/// recording — mirroring the stuck-at `step_batch` sequence exactly.
#[allow(clippy::too_many_arguments)]
fn step_bridge_batch(
    ctx: &BridgeCtx<'_>,
    plan: &BridgePlan,
    st: &mut BridgeState,
    good: &[u64],
    t: usize,
    cc: u64,
    activated_per_pattern: &mut [u32],
    detected_per_pattern: &mut [u32],
) {
    // Per-lane wired value from the (injection-free) good machine — exact
    // because the sampler admits only non-feedback pairs.
    let mut w_word = 0u64;
    for (lane0, &(_, f)) in plan.faults.iter().enumerate() {
        let ga = good[f.a.index()] & 1 == 1;
        let gb = good[f.b.index()] & 1 == 1;
        if f.kind.wired(ga, gb) {
            w_word |= 1u64 << (lane0 + 1);
        }
    }

    let vals = &mut st.vals;
    for &p in &plan.boundary {
        vals[p as usize] = good[p as usize];
    }
    for (j, &gu) in plan.cone.iter().enumerate() {
        let i = gu as usize;
        let mut v = eval_gate(ctx.gates, vals, i, good[i]);
        let ep = plan.ep_lanes[j];
        if ep != 0 {
            v = (v & !ep) | (w_word & ep);
        }
        vals[i] = v;
    }

    // Observe: only cone outputs can differ from the good machine.
    let mut diff: u64 = 0;
    for &o in &plan.outs {
        let v = vals[o as usize];
        let good_bcast = (v & 1).wrapping_neg();
        diff |= v ^ good_bcast;
    }
    diff &= plan.lanes_mask;

    // Activation: the wired value changes something only when the endpoint
    // values differ. Detected lanes stop counting in drop mode.
    let drop = ctx.config.drop_detected;
    let mut activated = 0u32;
    for (lane0, &(_, f)) in plan.faults.iter().enumerate() {
        if drop && st.detected_mask >> (lane0 + 1) & 1 == 1 {
            continue;
        }
        if (good[f.a.index()] ^ good[f.b.index()]) & 1 == 1 {
            activated += 1;
        }
    }
    activated_per_pattern[t] += activated;

    if drop {
        let newly = diff & !st.detected_mask;
        if newly != 0 {
            let mut rest = newly;
            while rest != 0 {
                let lane = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                st.detections.push((plan.faults[lane - 1].0, cc, t));
            }
            detected_per_pattern[t] += newly.count_ones();
            st.detected_mask |= newly;
            if ctx.config.early_exit && st.detected_mask == plan.lanes_mask {
                st.active = false;
            }
        }
    } else {
        detected_per_pattern[t] += diff.count_ones();
        let mut rest = diff & !st.detected_mask;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            st.detections.push((plan.faults[lane - 1].0, cc, t));
        }
        st.detected_mask |= diff;
    }
}

/// The event path: 63 bridges + good machine per word, one shared good
/// pass per pattern across all batches, batches evaluated serially (the
/// report is deterministic by construction).
fn run_event(
    ctx: &BridgeCtx<'_>,
    batches: &[Vec<(FaultId, BridgeFault)>],
    activated_per_pattern: &mut [u32],
    detected_per_pattern: &mut [u32],
) -> Vec<Vec<(FaultId, u64, usize)>> {
    let n_gates = ctx.gates.len();
    let mut in_cone = vec![false; n_gates];
    let plans: Vec<BridgePlan> = batches
        .iter()
        .map(|b| BridgePlan::build(ctx.gates, ctx.cones, &ctx.out_nets, b, &mut in_cone))
        .collect();
    let mut states: Vec<BridgeState> = plans
        .iter()
        .map(|_| BridgeState {
            vals: vec![0u64; n_gates],
            detected_mask: 0,
            active: true,
            detections: Vec::new(),
        })
        .collect();
    let mut good = vec![0u64; n_gates];

    for t in 0..ctx.patterns.len() {
        if states.iter().all(|s| !s.active) {
            break;
        }
        for (bit_pos, &net) in ctx.in_nets.iter().enumerate() {
            good[net] = if ctx.patterns.bit(t, bit_pos) { !0 } else { 0 };
        }
        for i in 0..n_gates {
            good[i] = eval_gate(ctx.gates, &good, i, good[i]);
        }
        let cc = ctx.patterns.cc(t);
        for (plan, st) in plans.iter().zip(states.iter_mut()) {
            if !st.active {
                continue;
            }
            step_bridge_batch(
                ctx,
                plan,
                st,
                &good,
                t,
                cc,
                activated_per_pattern,
                detected_per_pattern,
            );
        }
    }
    states.into_iter().map(|s| s.detections).collect()
}

/// The kernel path: pattern-parallel (64 patterns per word) good pass over
/// the whole sequence, then one forced cone re-evaluation per bridge per
/// block. Tallies and detection order are reconstructed to match the event
/// path bit-for-bit: per-batch detections are emitted in `(pattern, lane)`
/// order, and in drop mode a lane contributes activations only up to and
/// including its detecting pattern.
fn run_kernel(
    ctx: &BridgeCtx<'_>,
    batches: &[Vec<(FaultId, BridgeFault)>],
    activated_per_pattern: &mut [u32],
    detected_per_pattern: &mut [u32],
) -> Vec<Vec<(FaultId, u64, usize)>> {
    let n_gates = ctx.gates.len();
    let n_pat = ctx.patterns.len();
    let n_blocks = n_pat.div_ceil(64);

    // Good machine for every block up front: bit p of `gblocks[blk][net]`
    // is the net's fault-free value at pattern `blk * 64 + p`.
    let mut gblocks: Vec<Vec<u64>> = Vec::with_capacity(n_blocks);
    for blk in 0..n_blocks {
        let base = blk * 64;
        let here = 64.min(n_pat - base);
        let mut vals = vec![0u64; n_gates];
        for (bit_pos, &net) in ctx.in_nets.iter().enumerate() {
            let mut w = 0u64;
            for p in 0..here {
                if ctx.patterns.bit(base + p, bit_pos) {
                    w |= 1u64 << p;
                }
            }
            vals[net] = w;
        }
        for i in 0..n_gates {
            vals[i] = eval_gate(ctx.gates, &vals, i, vals[i]);
        }
        gblocks.push(vals);
    }

    let mut scratch = vec![0u64; n_gates];
    let mut in_cone = vec![false; n_gates];
    let mut out = Vec::with_capacity(batches.len());
    for batch in batches {
        // `(pattern, lane, fault, cc)` first detections, sorted at the end
        // to reproduce the event path's emission order.
        let mut firsts: Vec<(usize, usize, FaultId, u64)> = Vec::new();
        for (lane0, &(fid, f)) in batch.iter().enumerate() {
            let cone = ctx.cones.union_cone([f.a.index(), f.b.index()]);
            for &g in &cone {
                in_cone[g as usize] = true;
            }
            let mut boundary: Vec<u32> = Vec::new();
            for &gu in &cone {
                for &pin in ctx.gates[gu as usize].inputs() {
                    if !in_cone[pin.index()] {
                        boundary.push(pin.index() as u32);
                    }
                }
            }
            boundary.sort_unstable();
            boundary.dedup();
            let outs: Vec<u32> = ctx
                .out_nets
                .iter()
                .filter(|&&o| in_cone[o])
                .map(|&o| o as u32)
                .collect();
            for &g in &cone {
                in_cone[g as usize] = false;
            }

            'blocks: for (blk, gvals) in gblocks.iter().enumerate() {
                let base = blk * 64;
                let here = 64.min(n_pat - base);
                let live: u64 = if here == 64 { !0 } else { (1u64 << here) - 1 };
                let w = f.kind.wired_word(gvals[f.a.index()], gvals[f.b.index()]);
                for &p in &boundary {
                    scratch[p as usize] = gvals[p as usize];
                }
                for &gu in &cone {
                    let i = gu as usize;
                    let mut v = eval_gate(ctx.gates, &scratch, i, gvals[i]);
                    if i == f.a.index() || i == f.b.index() {
                        v = w;
                    }
                    scratch[i] = v;
                }
                let mut diff: u64 = 0;
                for &o in &outs {
                    diff |= scratch[o as usize] ^ gvals[o as usize];
                }
                diff &= live;
                let act = (gvals[f.a.index()] ^ gvals[f.b.index()]) & live;

                if ctx.config.drop_detected {
                    if diff != 0 {
                        let tz = diff.trailing_zeros() as usize;
                        // Activations stop after the detecting pattern.
                        let upto: u64 = if tz == 63 { !0 } else { (1u64 << (tz + 1)) - 1 };
                        let mut rest = act & upto;
                        while rest != 0 {
                            let p = rest.trailing_zeros() as usize;
                            rest &= rest - 1;
                            activated_per_pattern[base + p] += 1;
                        }
                        let t = base + tz;
                        detected_per_pattern[t] += 1;
                        firsts.push((t, lane0, fid, ctx.patterns.cc(t)));
                        break 'blocks;
                    }
                    let mut rest = act;
                    while rest != 0 {
                        let p = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        activated_per_pattern[base + p] += 1;
                    }
                } else {
                    let mut rest = act;
                    while rest != 0 {
                        let p = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        activated_per_pattern[base + p] += 1;
                    }
                    let mut rest = diff;
                    while rest != 0 {
                        let p = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        detected_per_pattern[base + p] += 1;
                    }
                    if diff != 0 && !firsts.iter().any(|&(_, l, _, _)| l == lane0) {
                        let tz = diff.trailing_zeros() as usize;
                        let t = base + tz;
                        firsts.push((t, lane0, fid, ctx.patterns.cc(t)));
                    }
                }
            }
        }
        firsts.sort_unstable_by_key(|&(t, lane, _, _)| (t, lane));
        out.push(
            firsts
                .into_iter()
                .map(|(t, _, fid, cc)| (fid, cc, t))
                .collect(),
        );
    }
    out
}

/// Runs one bridging fault simulation of `patterns` against `netlist`,
/// updating `list` and returning the per-pattern [`FaultSimReport`].
///
/// Semantics mirror [`fault_simulate`](crate::fault_simulate): drop mode
/// simulates only still-undetected bridges and records first detections;
/// non-drop mode tallies every observation. The backend resolves via
/// [`FaultSimConfig::resolved_backend`] and both paths are bit-identical;
/// batches run serially, so the report is deterministic unconditionally.
///
/// # Panics
///
/// Panics if `patterns.width()` differs from the netlist's input width, or
/// if `netlist` is sequential while `list` is non-empty (bridging
/// simulation is combinational-only; [`BridgeUniverse::sample`] already
/// returns an empty universe for sequential netlists).
pub fn bridge_simulate(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut BridgeList,
    config: &FaultSimConfig,
) -> FaultSimReport {
    bridge_simulate_observed(netlist, patterns, list, config, None)
}

/// [`bridge_simulate`] with an observability handle: emits an
/// `fsim.bridge.run` span and `fsim.bridge.*` counters when `obs` is live.
///
/// # Panics
///
/// Same contract as [`bridge_simulate`].
pub fn bridge_simulate_observed(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut BridgeList,
    config: &FaultSimConfig,
    obs: Obs<'_>,
) -> FaultSimReport {
    assert_eq!(
        patterns.width(),
        netlist.inputs().width(),
        "pattern width must match netlist inputs"
    );
    assert!(
        netlist.is_combinational() || list.is_empty(),
        "bridging simulation is combinational-only"
    );
    let mut run_span = obs.span("fsim", "fsim.bridge.run");
    list.begin_run();
    let mut report = FaultSimReport::new();

    let targets: Vec<FaultId> = if config.drop_detected {
        list.undetected().collect()
    } else {
        (0..list.len()).collect()
    };
    let n_pat = patterns.len();
    let mut activated_per_pattern = vec![0u32; n_pat];
    let mut detected_per_pattern = vec![0u32; n_pat];

    if !targets.is_empty() {
        let backend = config.resolved_backend(true);
        let cones = netlist.fanout_cones();
        let ctx = BridgeCtx {
            gates: netlist.gates(),
            patterns,
            cones: &cones,
            in_nets: netlist.inputs().nets().iter().map(|n| n.index()).collect(),
            out_nets: netlist.outputs().nets().iter().map(|n| n.index()).collect(),
            config: *config,
        };
        // Snapshot fault data so the runners need no access to the list.
        let batches: Vec<Vec<(FaultId, BridgeFault)>> = targets
            .chunks(63)
            .map(|c| c.iter().map(|&fid| (fid, list.fault(fid))).collect())
            .collect();
        if obs.enabled() {
            run_span.arg("faults", targets.len());
            run_span.arg("patterns", n_pat);
            run_span.arg("backend", backend);
            obs.add("fsim.bridge.runs", 1);
            obs.add("fsim.bridge.targets", targets.len() as u64);
        }
        let detections = match backend {
            SimBackend::Event => run_event(
                &ctx,
                &batches,
                &mut activated_per_pattern,
                &mut detected_per_pattern,
            ),
            _ => run_kernel(
                &ctx,
                &batches,
                &mut activated_per_pattern,
                &mut detected_per_pattern,
            ),
        };
        // Batch-major merge, matching the stuck-at engine's contract.
        for batch_log in detections {
            for (fid, cc, t) in batch_log {
                list.mark_detected(fid, cc, t);
                report.record_detection(fid, cc, t);
            }
        }
    }

    for t in 0..n_pat {
        report.record_pattern(
            patterns.cc(t),
            activated_per_pattern[t],
            detected_per_pattern[t],
        );
    }
    if obs.enabled() {
        obs.add(
            "fsim.bridge.detections",
            u64::from(detected_per_pattern.iter().sum::<u32>()),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    fn small_netlist() -> Netlist {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let a = b.and(x, y);
        let o = b.or(a, z);
        let q = b.xor(a, o);
        b.output("o", o);
        b.output("q", q);
        b.finish()
    }

    fn exhaustive(width: usize) -> PatternSeq {
        let mut p = PatternSeq::new(width);
        for v in 0..(1u64 << width) {
            p.push_value(v, v);
        }
        p
    }

    #[test]
    fn sampling_is_deterministic_and_normalized() {
        let n = small_netlist();
        let cfg = BridgeConfig::default();
        let u1 = BridgeUniverse::sample(&n, &cfg);
        let u2 = BridgeUniverse::sample(&n, &cfg);
        assert_eq!(u1.faults(), u2.faults());
        assert!(!u1.is_empty());
        for f in u1.faults() {
            assert!(f.a.index() < f.b.index(), "{f}");
        }
        // A different seed over a clipped pool can pick a different subset.
        let clipped = BridgeConfig { pairs: 1, seed: 1 };
        let u3 = BridgeUniverse::sample(&n, &clipped);
        assert_eq!(u3.len(), 2);
        assert!(u3.candidate_pairs() >= 1);
    }

    #[test]
    fn sampled_pairs_are_non_feedback() {
        let n = small_netlist();
        let u = BridgeUniverse::sample(&n, &BridgeConfig::default());
        let cones = n.fanout_cones();
        for f in u.faults() {
            assert!(
                cones
                    .union_cone([f.a.index()])
                    .binary_search(&(f.b.index() as u32))
                    .is_err(),
                "feedback pair sampled: {f}"
            );
        }
    }

    #[test]
    fn sequential_netlists_yield_empty_universe() {
        let mut b = Builder::new("seq");
        let d = b.input("d");
        let q = b.dff(d);
        let o = b.and(d, q);
        b.output("o", o);
        let n = b.finish();
        let u = BridgeUniverse::sample(&n, &BridgeConfig::default());
        assert!(u.is_empty());
        // Simulating the empty list is a no-op that still reports patterns.
        let mut list = u.new_list();
        let r = bridge_simulate(&n, &exhaustive(1), &mut list, &FaultSimConfig::default());
        assert_eq!(r.total_detected(), 0);
        assert_eq!(r.patterns().len(), 2);
    }

    #[test]
    fn exhaustive_patterns_detect_bridges() {
        let n = small_netlist();
        let u = BridgeUniverse::sample(&n, &BridgeConfig::default());
        let mut list = u.new_list();
        let r = bridge_simulate(&n, &exhaustive(3), &mut list, &FaultSimConfig::default());
        assert!(r.total_detected() > 0, "{r}");
        assert!(list.coverage() > 0.0);
        assert_eq!(list.detected().count() as u32, r.total_detected());
    }

    #[test]
    fn event_and_kernel_paths_are_bit_identical() {
        let n = small_netlist();
        let u = BridgeUniverse::sample(&n, &BridgeConfig::default());
        for drop in [true, false] {
            let cfg = |backend| FaultSimConfig {
                drop_detected: drop,
                early_exit: drop,
                threads: 1,
                backend,
            };
            let mut el = u.new_list();
            let event = bridge_simulate(&n, &exhaustive(3), &mut el, &cfg(SimBackend::Event));
            let mut kl = u.new_list();
            let kernel = bridge_simulate(&n, &exhaustive(3), &mut kl, &cfg(SimBackend::Kernel));
            assert_eq!(event, kernel, "drop={drop}");
            assert_eq!(el.to_report_text(), kl.to_report_text(), "drop={drop}");
        }
    }

    #[test]
    fn dropping_skips_already_detected() {
        let n = small_netlist();
        let u = BridgeUniverse::sample(&n, &BridgeConfig::default());
        let mut list = u.new_list();
        let cfg = FaultSimConfig::default();
        let r1 = bridge_simulate(&n, &exhaustive(3), &mut list, &cfg);
        let r2 = bridge_simulate(&n, &exhaustive(3), &mut list, &cfg);
        assert!(r1.total_detected() > 0);
        assert_eq!(r2.total_detected(), 0);
    }

    #[test]
    fn report_text_round_trips_for_bridges() {
        let n = small_netlist();
        let u = BridgeUniverse::sample(&n, &BridgeConfig::default());
        let mut list = u.new_list();
        bridge_simulate(&n, &exhaustive(3), &mut list, &FaultSimConfig::default());
        let text = list.to_report_text();
        assert!(text.contains("bridge("), "{text}");
        let mut fresh = u.new_list();
        fresh.apply_report_text(&text).unwrap();
        assert_eq!(fresh.coverage(), list.coverage());
    }

    #[test]
    fn model_parse_round_trips() {
        for m in [FaultModel::StuckAt, FaultModel::Bridging] {
            assert_eq!(FaultModel::parse(&m.to_string()), Some(m));
        }
        assert_eq!(FaultModel::parse("bridge"), Some(FaultModel::Bridging));
        assert_eq!(FaultModel::parse("nope"), None);
    }
}
