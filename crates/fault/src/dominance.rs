//! Fault dominance collapsing layered on the equivalence classes of a
//! [`FaultUniverse`].
//!
//! Fault *f* dominates fault *g* when every test detecting *g* also
//! detects *f* — so once *g* is detected, *f* needs no simulation of its
//! own. The classic per-gate rules (for single-pattern, combinational
//! detection):
//!
//! | gate | removed dominator | supporters |
//! |------|-------------------|------------|
//! | AND  | output SA1        | each input-pin SA1 |
//! | OR   | output SA0        | each input-pin SA0 |
//! | NAND | output SA0        | each input-pin SA1 |
//! | NOR  | output SA1        | each input-pin SA0 |
//!
//! (A test for AND pin-a SA1 sets `a = 0` with the other pin non-masking,
//! which drives the good output to 0 and the faulty output to 1 — exactly
//! the difference output SA1 produces, propagated the same way.)
//!
//! Equivalent faults have identical test sets, so the relation lifts
//! soundly to the equivalence classes of the universe: class *F*
//! dominates class *G* iff any members do. The engine then simulates only
//! the non-dominator classes directly; dominators *inherit* detection
//! from their supporters, and anything left undetected gets a residual
//! pass — reported coverage is identical to simulating every class (see
//! `crates/fault/src/engine.rs`).
//!
//! Dominance is **per-pattern** reasoning: with state, the dominator's
//! faulty machine and the supporter's faulty machine diverge over time.
//! Sequential netlists therefore get the identity view (nothing removed).

use warpstl_netlist::{GateKind, NetId, Netlist};

use crate::{Fault, FaultId, FaultSite, FaultUniverse, Polarity};

/// A dominance-reduced view of a [`FaultUniverse`]: which equivalence
/// classes must be simulated directly, and which are *removed* because
/// detecting any of their supporters implies their detection.
///
/// # Examples
///
/// ```
/// use warpstl_fault::FaultUniverse;
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("and2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.and(x, y);
/// b.output("z", z);
/// let n = b.finish();
/// let u = FaultUniverse::enumerate(&n);
/// let dom = u.dominance(&n);
/// // z/SA1 is dominated by the pin SA1 faults: one class drops out.
/// assert_eq!(dom.removed().len(), 1);
/// assert_eq!(dom.direct().len() + dom.removed().len(), u.collapsed_len());
/// ```
#[derive(Debug, Clone)]
pub struct DominanceView {
    /// `supporters[id]`: class ids whose detection implies `id`'s
    /// detection. Empty for direct classes.
    supporters: Vec<Vec<FaultId>>,
    /// Class ids with no supporters — simulated directly.
    direct: Vec<FaultId>,
    /// Class ids with supporters — removed from direct simulation.
    removed: Vec<FaultId>,
}

impl DominanceView {
    /// Builds the view for `universe` over `netlist` (the netlist the
    /// universe was enumerated from). Sequential netlists yield the
    /// identity view.
    pub(crate) fn build(universe: &FaultUniverse, netlist: &Netlist) -> DominanceView {
        let n = universe.collapsed_len();
        let mut supporters: Vec<Vec<FaultId>> = vec![Vec::new(); n];
        if netlist.is_combinational() {
            for (i, g) in netlist.gates().iter().enumerate() {
                let id = NetId(i as u32);
                let (out_pol, pin_pol) = match g.kind {
                    GateKind::And => (Polarity::Sa1, Polarity::Sa1),
                    GateKind::Or => (Polarity::Sa0, Polarity::Sa0),
                    GateKind::Nand => (Polarity::Sa0, Polarity::Sa1),
                    GateKind::Nor => (Polarity::Sa1, Polarity::Sa0),
                    _ => continue,
                };
                let dom = universe.rep_of(Fault::new(FaultSite::Output(id), out_pol));
                let Some(dom) = dom else { continue };
                for pin in 0..g.kind.arity() as u8 {
                    let sup = universe.rep_of(Fault::new(FaultSite::InputPin(id, pin), pin_pol));
                    // Tied pins are not enumerated; a supporter equal to
                    // the dominator (merged by equivalence elsewhere)
                    // carries no information.
                    let Some(sup) = sup else { continue };
                    if sup != dom && !supporters[dom].contains(&sup) {
                        supporters[dom].push(sup);
                    }
                }
            }
        }
        let mut direct = Vec::new();
        let mut removed = Vec::new();
        for (id, sups) in supporters.iter().enumerate() {
            if sups.is_empty() {
                direct.push(id);
            } else {
                removed.push(id);
            }
        }
        DominanceView {
            supporters,
            direct,
            removed,
        }
    }

    /// Folds implication-derived fault equivalences into the view: each
    /// `(dropped, kept)` pair states that the two classes have identical
    /// test sets (proven statically, e.g. a gate degenerating to a buffer
    /// because the other pin is implied constant). `dropped` becomes a
    /// removed class supported by `kept`, strengthening the classic
    /// per-gate dominance rules with netlist-global reasoning.
    ///
    /// Pairs where `dropped` is already removed (it already inherits), or
    /// where `kept` is itself removed (would chain through an inherited
    /// class), or degenerate `dropped == kept` pairs are skipped — the
    /// engine's inheritance is single-level plus a residual pass, so
    /// supporters must stay direct.
    pub fn extend_with_equivalences(&mut self, pairs: &[(FaultId, FaultId)]) {
        for &(dropped, kept) in pairs {
            if dropped == kept
                || dropped >= self.supporters.len()
                || kept >= self.supporters.len()
                || !self.supporters[dropped].is_empty()
                || !self.supporters[kept].is_empty()
            {
                continue;
            }
            self.supporters[dropped].push(kept);
        }
        self.direct.clear();
        self.removed.clear();
        for (id, sups) in self.supporters.iter().enumerate() {
            if sups.is_empty() {
                self.direct.push(id);
            } else {
                self.removed.push(id);
            }
        }
    }

    /// Class ids to simulate directly, ascending.
    #[must_use]
    pub fn direct(&self) -> &[FaultId] {
        &self.direct
    }

    /// Removed dominator class ids, ascending.
    #[must_use]
    pub fn removed(&self) -> &[FaultId] {
        &self.removed
    }

    /// The supporters of class `id`: detection of any one implies `id`'s
    /// detection. Empty for direct classes.
    #[must_use]
    pub fn supporters(&self, id: FaultId) -> &[FaultId] {
        &self.supporters[id]
    }

    /// Whether `id` is a removed dominator.
    #[must_use]
    pub fn is_removed(&self, id: FaultId) -> bool {
        !self.supporters[id].is_empty()
    }

    /// Whether the view removes nothing (sequential netlist, or no
    /// applicable gates).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.removed.is_empty()
    }

    /// Fraction of classes needing direct simulation (1.0 for identity).
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        let total = self.supporters.len();
        if total == 0 {
            return 1.0;
        }
        self.direct.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    #[test]
    fn and_output_sa1_is_dominated_by_pin_sa1() {
        let mut b = Builder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        b.output("z", z);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let dom = u.dominance(&n);
        let z_sa1 = u
            .rep_of(Fault::new(FaultSite::Output(z), Polarity::Sa1))
            .unwrap();
        assert!(dom.is_removed(z_sa1));
        assert_eq!(dom.supporters(z_sa1).len(), 2);
        for &s in dom.supporters(z_sa1) {
            assert!(!dom.is_removed(s), "supporter must be direct here");
        }
        assert!(!dom.is_identity());
        assert!(dom.reduction_ratio() < 1.0);
    }

    #[test]
    fn xor_gates_produce_no_dominance() {
        let mut b = Builder::new("xor2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let dom = u.dominance(&n);
        assert!(dom.is_identity());
        assert_eq!(dom.direct().len(), u.collapsed_len());
        assert_eq!(dom.reduction_ratio(), 1.0);
    }

    #[test]
    fn equivalence_pairs_extend_the_view() {
        let mut b = Builder::new("xor2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        let n = b.finish();
        let u = FaultUniverse::enumerate(&n);
        let mut dom = u.dominance(&n);
        assert!(dom.is_identity());
        let pin_sa0 = u
            .rep_of(Fault::new(FaultSite::InputPin(z, 0), Polarity::Sa0))
            .unwrap();
        let out_sa0 = u
            .rep_of(Fault::new(FaultSite::Output(z), Polarity::Sa0))
            .unwrap();
        dom.extend_with_equivalences(&[
            (pin_sa0, out_sa0),
            (pin_sa0, pin_sa0),        // degenerate: skipped
            (out_sa0, pin_sa0),        // kept already removed: skipped
            (usize::MAX - 1, out_sa0), // out of range: skipped
        ]);
        assert!(dom.is_removed(pin_sa0));
        assert_eq!(dom.supporters(pin_sa0), &[out_sa0]);
        // The reverse pair was skipped: its kept class is already removed.
        assert!(!dom.is_removed(out_sa0));
        assert_eq!(dom.direct().len() + dom.removed().len(), u.collapsed_len());
        assert!(!dom.is_identity());
    }

    #[test]
    fn sequential_netlists_get_identity_view() {
        let mut b = Builder::new("seq");
        let x = b.input("x");
        let q = b.dff_placeholder();
        let z = b.and(x, q);
        b.connect_dff(q, z);
        b.output("z", z);
        let n = b.finish();
        assert!(!n.is_combinational());
        let u = FaultUniverse::enumerate(&n);
        let dom = u.dominance(&n);
        assert!(dom.is_identity());
        assert!(dom.removed().is_empty());
    }

    #[test]
    fn module_dominance_shrinks_the_target_list() {
        for kind in warpstl_netlist::modules::ModuleKind::ALL {
            let n = kind.build();
            let u = FaultUniverse::enumerate(&n);
            let dom = u.dominance(&n);
            assert_eq!(
                dom.direct().len() + dom.removed().len(),
                u.collapsed_len(),
                "{}",
                kind.name()
            );
            assert!(
                !dom.is_identity(),
                "{}: bundled modules all contain AND/OR logic",
                kind.name()
            );
            assert!(
                dom.reduction_ratio() < 0.95,
                "{}: ratio {}",
                kind.name(),
                dom.reduction_ratio()
            );
            // Supporters are always real class ids.
            for &r in dom.removed() {
                for &s in dom.supporters(r) {
                    assert!(s < u.collapsed_len());
                    assert_ne!(s, r);
                }
            }
        }
    }
}
