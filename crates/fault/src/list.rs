//! The fault list: the mutable detection ledger shared across test programs.

use std::fmt;

use crate::{Fault, FaultUniverse};

/// Index of a fault within its [`FaultUniverse`]'s collapsed list.
pub type FaultId = usize;

/// Detection status of one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// Not yet detected by any simulated pattern.
    Undetected,
    /// Detected; records where.
    Detected {
        /// The clock-cycle stamp of the detecting pattern.
        cc: u64,
        /// The index of the detecting pattern within its sequence.
        pattern: usize,
        /// Which fault-simulation run detected it (runs are numbered by the
        /// caller via [`FaultList::begin_run`]; the paper runs one per PTP).
        run: u32,
    },
}

/// The fault list report of the paper's stage 3: "initially includes all
/// faults of a target module; after each fault simulation the list is
/// updated, and detected faults are removed, so subsequent fault simulations
/// and PTPs applied to the same module only target those missing undetected
/// faults."
///
/// The ledger is generic over the fault type `F` so every fault model shares
/// one detection/coverage/report machinery: stuck-at lists are
/// `FaultList<Fault>` (the default), bridging lists are
/// [`BridgeList`](crate::BridgeList) (`FaultList<BridgeFault>`).
///
/// # Examples
///
/// ```
/// use warpstl_fault::{FaultList, FaultUniverse};
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("n");
/// let x = b.input("x");
/// let y = b.not(x);
/// b.output("y", y);
/// let u = FaultUniverse::enumerate(&b.finish());
/// let list = FaultList::new(&u);
/// assert_eq!(list.undetected().count(), u.collapsed_len());
/// assert_eq!(list.coverage(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultList<F = Fault> {
    faults: Vec<F>,
    status: Vec<FaultStatus>,
    weights: Vec<u32>,
    total_weight: u64,
    untestable: Vec<bool>,
    untestable_weight: u64,
    current_run: u32,
}

impl FaultList {
    /// A fresh list with every fault of `universe` undetected.
    #[must_use]
    pub fn new(universe: &FaultUniverse) -> FaultList {
        let n = universe.collapsed_len();
        let weights: Vec<u32> = (0..n).map(|i| universe.class_size(i)).collect();
        let total_weight = weights.iter().map(|&w| w as u64).sum();
        FaultList {
            faults: universe.faults().to_vec(),
            status: vec![FaultStatus::Undetected; n],
            weights,
            total_weight,
            untestable: vec![false; n],
            untestable_weight: 0,
            current_run: 0,
        }
    }
}

impl<F> FaultList<F> {
    /// A fresh unit-weight ledger over an arbitrary fault population (the
    /// constructor the non-stuck-at models use; bridging faults carry no
    /// equivalence-class collapsing, so every fault weighs 1).
    #[must_use]
    pub fn from_faults(faults: Vec<F>) -> FaultList<F> {
        let n = faults.len();
        FaultList {
            faults,
            status: vec![FaultStatus::Undetected; n],
            weights: vec![1; n],
            total_weight: n as u64,
            untestable: vec![false; n],
            untestable_weight: 0,
            current_run: 0,
        }
    }

    /// Marks the classes flagged in `bitmap` (indexed by [`FaultId`]) as
    /// statically proven untestable. Untestability is a property of the
    /// universe, not of any simulation run: it splits the marked classes
    /// out of the [`coverage`](FaultList::coverage) denominator and
    /// survives [`reset`](FaultList::reset). Marks accumulate (set union)
    /// across calls; entries beyond the list length are ignored.
    pub fn mark_untestable(&mut self, bitmap: &[bool]) {
        for (id, &flag) in bitmap.iter().enumerate().take(self.len()) {
            if flag {
                self.untestable[id] = true;
            }
        }
        self.untestable_weight = self
            .untestable
            .iter()
            .zip(&self.weights)
            .filter(|(&u, _)| u)
            .map(|(_, &w)| w as u64)
            .sum();
    }

    /// Whether fault `id` is marked statically untestable.
    #[must_use]
    pub fn is_untestable(&self, id: FaultId) -> bool {
        self.untestable.get(id).copied().unwrap_or(false)
    }

    /// Number of collapsed classes marked untestable.
    #[must_use]
    pub fn untestable_count(&self) -> usize {
        self.untestable.iter().filter(|&&u| u).count()
    }

    /// The uncollapsed weight of the untestable classes — the amount
    /// removed from the coverage denominator.
    #[must_use]
    pub fn untestable_weight(&self) -> u64 {
        self.untestable_weight
    }

    /// The number of collapsed faults tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The status of fault `id`.
    #[must_use]
    pub fn status(&self, id: FaultId) -> FaultStatus {
        self.status[id]
    }

    /// Starts a new fault-simulation run (one per PTP in the paper's flow)
    /// and returns its number.
    pub fn begin_run(&mut self) -> u32 {
        self.current_run += 1;
        self.current_run
    }

    /// Marks fault `id` detected at (`cc`, `pattern`) in the current run.
    /// Already-detected faults are left untouched (first detection wins).
    pub fn mark_detected(&mut self, id: FaultId, cc: u64, pattern: usize) {
        if matches!(self.status[id], FaultStatus::Undetected) {
            self.status[id] = FaultStatus::Detected {
                cc,
                pattern,
                run: self.current_run,
            };
        }
    }

    /// Iterates the ids of undetected faults.
    pub fn undetected(&self) -> impl Iterator<Item = FaultId> + '_ {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, FaultStatus::Undetected))
            .map(|(i, _)| i)
    }

    /// Iterates `(id, cc, pattern, run)` for detected faults.
    pub fn detected(&self) -> impl Iterator<Item = (FaultId, u64, usize, u32)> + '_ {
        self.status.iter().enumerate().filter_map(|(i, s)| match s {
            FaultStatus::Detected { cc, pattern, run } => Some((i, *cc, *pattern, *run)),
            FaultStatus::Undetected => None,
        })
    }

    /// Fault coverage over the *full* (uncollapsed) universe: the weighted
    /// fraction of detected equivalence classes among the *testable* ones.
    /// Statically-proven-untestable classes are split out of the
    /// denominator — no pattern sequence can ever detect them, so counting
    /// them would only misreport every STL as incomplete. When every fault
    /// is untestable the coverage is vacuously `1.0` (the
    /// `collapse_ratio`-style guard against a `0/0`); an empty list stays
    /// at `0.0`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let testable_weight = self.total_weight - self.untestable_weight;
        if testable_weight == 0 {
            return 1.0;
        }
        let detected: u64 = self
            .status
            .iter()
            .zip(&self.weights)
            .zip(&self.untestable)
            .filter(|((s, _), &u)| !u && matches!(s, FaultStatus::Detected { .. }))
            .map(|((_, &w), _)| w as u64)
            .sum();
        detected as f64 / testable_weight as f64
    }

    /// The total (uncollapsed) fault count the coverage denominator uses.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Resets every fault to undetected (used to re-evaluate a compacted
    /// STL from scratch).
    pub fn reset(&mut self) {
        self.status.fill(FaultStatus::Undetected);
        self.current_run = 0;
    }
}

impl<F: Copy> FaultList<F> {
    /// The fault with id `id`.
    #[must_use]
    pub fn fault(&self, id: FaultId) -> F {
        self.faults[id]
    }
}

impl<F: fmt::Display> FaultList<F> {
    /// Serializes the list as the paper's *fault list report*: one line per
    /// collapsed fault with its status.
    ///
    /// ```text
    /// FAULTLIST 1 <collapsed> <total>
    /// n3/SA1 detected 120 4 1
    /// n5.in0/SA0 undetected
    /// ```
    #[must_use]
    pub fn to_report_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "FAULTLIST 1 {} {}", self.len(), self.total_weight);
        for (i, f) in self.faults.iter().enumerate() {
            match self.status[i] {
                FaultStatus::Undetected => {
                    let _ = writeln!(s, "{f} undetected");
                }
                FaultStatus::Detected { cc, pattern, run } => {
                    let _ = writeln!(s, "{f} detected {cc} {pattern} {run}");
                }
            }
        }
        s
    }

    /// Restores detection statuses from a report produced by
    /// [`FaultList::to_report_text`] over the *same* universe.
    ///
    /// # Errors
    ///
    /// Returns a message when the header, fault names, order, or statuses
    /// do not match this list's universe.
    pub fn apply_report_text(&mut self, text: &str) -> Result<(), String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty report")?;
        let mut h = header.split_whitespace();
        if h.next() != Some("FAULTLIST") || h.next() != Some("1") {
            return Err("bad header".into());
        }
        let n: usize = h
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("bad fault count")?;
        if n != self.len() {
            return Err(format!("report has {n} faults, list has {}", self.len()));
        }
        let mut max_run = 0;
        let mut status = vec![FaultStatus::Undetected; self.len()];
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if i >= self.len() {
                return Err("too many rows".into());
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or("missing fault name")?;
            if name != self.faults[i].to_string() {
                return Err(format!("row {i}: expected {}, got {name}", self.faults[i]));
            }
            match parts.next() {
                Some("undetected") => {}
                Some("detected") => {
                    let cc = parts.next().and_then(|v| v.parse().ok()).ok_or("bad cc")?;
                    let pattern = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad pattern")?;
                    let run: u32 = parts.next().and_then(|v| v.parse().ok()).ok_or("bad run")?;
                    max_run = max_run.max(run);
                    status[i] = FaultStatus::Detected { cc, pattern, run };
                }
                other => return Err(format!("row {i}: bad status {other:?}")),
            }
        }
        self.status = status;
        self.current_run = max_run;
        Ok(())
    }
}

impl<F: fmt::Display> fmt::Display for FaultList<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let det = self.detected().count();
        write!(
            f,
            "fault list: {}/{} collapsed detected, FC {:.2}%",
            det,
            self.len(),
            self.coverage() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    fn universe() -> FaultUniverse {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        FaultUniverse::enumerate(&b.finish())
    }

    #[test]
    fn mark_and_coverage() {
        let u = universe();
        let mut l = FaultList::new(&u);
        assert_eq!(l.coverage(), 0.0);
        l.begin_run();
        l.mark_detected(0, 5, 2);
        assert!(l.coverage() > 0.0);
        assert_eq!(
            l.status(0),
            FaultStatus::Detected {
                cc: 5,
                pattern: 2,
                run: 1
            }
        );
        // First detection wins.
        l.mark_detected(0, 9, 9);
        assert_eq!(
            l.status(0),
            FaultStatus::Detected {
                cc: 5,
                pattern: 2,
                run: 1
            }
        );
    }

    #[test]
    fn full_detection_reaches_one() {
        let u = universe();
        let mut l = FaultList::new(&u);
        l.begin_run();
        for id in 0..l.len() {
            l.mark_detected(id, 0, 0);
        }
        assert!((l.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(l.undetected().count(), 0);
        assert_eq!(l.detected().count(), l.len());
    }

    #[test]
    fn runs_are_recorded() {
        let u = universe();
        let mut l = FaultList::new(&u);
        assert_eq!(l.begin_run(), 1);
        l.mark_detected(0, 0, 0);
        assert_eq!(l.begin_run(), 2);
        l.mark_detected(1, 0, 0);
        let runs: Vec<u32> = l.detected().map(|(_, _, _, r)| r).collect();
        assert_eq!(runs, vec![1, 2]);
    }

    #[test]
    fn report_text_round_trips() {
        let u = universe();
        let mut l = FaultList::new(&u);
        l.begin_run();
        l.mark_detected(0, 42, 7);
        l.begin_run();
        l.mark_detected(2, 99, 1);
        let text = l.to_report_text();
        let mut l2 = FaultList::new(&u);
        l2.apply_report_text(&text).unwrap();
        assert_eq!(l2.status(0), l.status(0));
        assert_eq!(l2.status(1), FaultStatus::Undetected);
        assert_eq!(l2.status(2), l.status(2));
        assert_eq!(l2.coverage(), l.coverage());
        // Runs continue where the report left off.
        assert_eq!(l2.begin_run(), 3);
    }

    #[test]
    fn report_text_rejects_mismatches() {
        let u = universe();
        let mut l = FaultList::new(&u);
        assert!(l.apply_report_text("").is_err());
        assert!(l.apply_report_text("FAULTLIST 2 0 0\n").is_err());
        assert!(l
            .apply_report_text(&format!("FAULTLIST 1 {} 0\nbogus undetected\n", l.len()))
            .is_err());
        let good = l.to_report_text();
        let tampered = good.replace("undetected", "detected x y z");
        assert!(l.apply_report_text(&tampered).is_err());
    }

    #[test]
    fn untestable_marks_split_the_coverage_denominator() {
        let u = universe();
        let mut l = FaultList::new(&u);
        let mut bitmap = vec![false; l.len()];
        bitmap[0] = true;
        l.mark_untestable(&bitmap);
        assert!(l.is_untestable(0));
        assert!(!l.is_untestable(1));
        assert_eq!(l.untestable_count(), 1);
        assert!(l.untestable_weight() > 0);
        // Detecting every *testable* fault reaches full coverage even
        // though class 0 stays undetected.
        l.begin_run();
        for id in 1..l.len() {
            l.mark_detected(id, 0, 0);
        }
        assert!((l.coverage() - 1.0).abs() < 1e-12, "{}", l.coverage());
        // Marks survive a reset (they are a property of the universe).
        l.reset();
        assert!(l.is_untestable(0));
        assert_eq!(l.coverage(), 0.0);
        // Marking everything untestable makes coverage vacuously 1.0.
        l.mark_untestable(&vec![true; l.len()]);
        assert_eq!(l.coverage(), 1.0);
        // Marks accumulate idempotently.
        l.mark_untestable(&bitmap);
        assert_eq!(l.untestable_count(), l.len());
        assert_eq!(l.untestable_weight(), l.total_weight());
    }

    #[test]
    fn reset_clears_everything() {
        let u = universe();
        let mut l = FaultList::new(&u);
        l.begin_run();
        l.mark_detected(0, 0, 0);
        l.reset();
        assert_eq!(l.coverage(), 0.0);
        assert_eq!(l.begin_run(), 1);
    }
}
