//! Transition-delay faults (the paper's future-work fault model).
//!
//! A transition fault makes a line *slow to rise* or *slow to fall*: it is
//! detected by a pattern **pair** — the first pattern sets the line to the
//! initial value, the second launches the transition and must propagate the
//! stale value to an observable output. Because the compaction method's
//! Fault Sim Report interface is just "detections per clock cycle",
//! [`tdf_simulate`]'s output plugs into the unchanged instruction-labeling
//! and reduction stages.

use warpstl_netlist::{GateKind, NetId, Netlist, PatternSeq};

use crate::{FaultSimConfig, FaultSimReport, Polarity};

/// The slow transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transition {
    /// Slow to rise (behaves as stuck-at-0 during a 0→1 launch).
    SlowToRise,
    /// Slow to fall (behaves as stuck-at-1 during a 1→0 launch).
    SlowToFall,
}

impl Transition {
    /// Both directions.
    pub const BOTH: [Transition; 2] = [Transition::SlowToRise, Transition::SlowToFall];

    /// The stuck value the line presents while the transition is late.
    #[must_use]
    pub fn stale_polarity(self) -> Polarity {
        match self {
            Transition::SlowToRise => Polarity::Sa0,
            Transition::SlowToFall => Polarity::Sa1,
        }
    }
}

impl std::fmt::Display for Transition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transition::SlowToRise => "STR",
            Transition::SlowToFall => "STF",
        })
    }
}

/// A transition-delay fault on a gate-output line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionFault {
    /// The faulted line (stem).
    pub net: NetId,
    /// The slow direction.
    pub transition: Transition,
}

impl std::fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.net, self.transition)
    }
}

/// The transition-fault ledger: universe, status and coverage.
///
/// # Examples
///
/// ```
/// use warpstl_fault::tdf::{tdf_simulate, TdfList};
/// use warpstl_fault::FaultSimConfig;
/// use warpstl_netlist::{Builder, PatternSeq};
///
/// let mut b = Builder::new("buf");
/// let x = b.input("x");
/// let y = b.buf(x);
/// b.output("y", y);
/// let n = b.finish();
///
/// let mut list = TdfList::enumerate(&n);
/// let mut p = PatternSeq::new(1);
/// p.push_value(0, 0);
/// p.push_value(1, 1); // launches the rising transition
/// p.push_value(2, 0); // launches the falling transition
/// tdf_simulate(&n, &p, &mut list, &FaultSimConfig::default());
/// assert_eq!(list.coverage(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TdfList {
    faults: Vec<TransitionFault>,
    detected_at: Vec<Option<u64>>,
}

impl TdfList {
    /// Enumerates both transitions on every gate-output line (constants
    /// excluded: they never transition).
    #[must_use]
    pub fn enumerate(netlist: &Netlist) -> TdfList {
        let mut faults = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            if matches!(g.kind, GateKind::Const0 | GateKind::Const1) {
                continue;
            }
            for t in Transition::BOTH {
                faults.push(TransitionFault {
                    net: NetId(i as u32),
                    transition: t,
                });
            }
        }
        let detected_at = vec![None; faults.len()];
        TdfList {
            faults,
            detected_at,
        }
    }

    /// The number of transition faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with index `i`.
    #[must_use]
    pub fn fault(&self, i: usize) -> TransitionFault {
        self.faults[i]
    }

    /// The clock cycle at which fault `i` was first detected, if any.
    #[must_use]
    pub fn detected_at(&self, i: usize) -> Option<u64> {
        self.detected_at[i]
    }

    /// Iterates the indices of undetected faults.
    pub fn undetected(&self) -> impl Iterator<Item = usize> + '_ {
        self.detected_at
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| i)
    }

    /// The fraction of detected transition faults.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        let det = self.detected_at.iter().filter(|d| d.is_some()).count();
        det as f64 / self.faults.len() as f64
    }

    /// Resets all faults to undetected.
    pub fn reset(&mut self) {
        self.detected_at.fill(None);
    }
}

/// Runs a transition-delay fault simulation over a timestamped pattern
/// sequence, treating consecutive patterns as launch/capture pairs.
///
/// Uses the same parallel-fault packing as [`fault_simulate`]: the stale
/// value is injected as a stuck-at every cycle, but a detection is credited
/// only when the pattern actually *launches* the slow transition (the good
/// machine moved the line in the fault's direction since the previous
/// pattern).
///
/// # Panics
///
/// Panics if `patterns.width()` differs from the netlist's input width.
///
/// [`fault_simulate`]: crate::fault_simulate
pub fn tdf_simulate(
    netlist: &Netlist,
    patterns: &PatternSeq,
    list: &mut TdfList,
    config: &FaultSimConfig,
) -> FaultSimReport {
    assert_eq!(
        patterns.width(),
        netlist.inputs().width(),
        "pattern width must match netlist inputs"
    );
    let mut report = FaultSimReport::new();
    let targets: Vec<usize> = if config.drop_detected {
        list.undetected().collect()
    } else {
        (0..list.len()).collect()
    };
    let n_pat = patterns.len();
    let gates = netlist.gates();
    let out_nets: Vec<usize> = netlist.outputs().nets().iter().map(|n| n.index()).collect();
    let in_nets: Vec<usize> = netlist.inputs().nets().iter().map(|n| n.index()).collect();
    let dff_nets: Vec<usize> = netlist.dffs().iter().map(|n| n.index()).collect();

    let mut values = vec![0u64; gates.len()];
    let mut out_sa0 = vec![0u64; gates.len()];
    let mut out_sa1 = vec![0u64; gates.len()];
    let mut dirty: Vec<usize> = Vec::new();
    let mut detected_per_pattern = vec![0u32; n_pat];
    let mut launched_per_pattern = vec![0u32; n_pat];

    for batch in targets.chunks(63) {
        for d in dirty.drain(..) {
            out_sa0[d] = 0;
            out_sa1[d] = 0;
        }
        for (lane0, &fi) in batch.iter().enumerate() {
            let f = list.fault(fi);
            let bit = 1u64 << (lane0 + 1);
            match f.transition.stale_polarity() {
                Polarity::Sa0 => out_sa0[f.net.index()] |= bit,
                Polarity::Sa1 => out_sa1[f.net.index()] |= bit,
            }
            dirty.push(f.net.index());
        }
        let lanes_mask: u64 = if batch.len() == 63 {
            !1u64
        } else {
            ((1u64 << (batch.len() + 1)) - 1) & !1
        };

        values.fill(0);
        let mut state = vec![0u64; dff_nets.len()];
        let mut detected_mask: u64 = 0;
        let mut prev_site_good: Vec<Option<bool>> = vec![None; batch.len()];

        for t in 0..n_pat {
            for (bit_pos, &net) in in_nets.iter().enumerate() {
                values[net] = if patterns.bit(t, bit_pos) { !0 } else { 0 };
            }
            let mut dff_i = 0;
            for (i, g) in gates.iter().enumerate() {
                let kind = g.kind;
                let mut v = match kind {
                    GateKind::Input => values[i],
                    GateKind::Const0 => 0,
                    GateKind::Const1 => !0,
                    GateKind::Dff => {
                        let s = state[dff_i];
                        dff_i += 1;
                        s
                    }
                    _ => {
                        let p = g.pins;
                        let a = values[p[0].index()];
                        let (b, c) = match kind.arity() {
                            2 => (values[p[1].index()], 0),
                            3 => (values[p[1].index()], values[p[2].index()]),
                            _ => (0, 0),
                        };
                        kind.eval(a, b, c)
                    }
                };
                v = (v & !out_sa0[i]) | out_sa1[i];
                values[i] = v;
            }
            for (k, &q) in dff_nets.iter().enumerate() {
                let d = gates[q].pins[0].index();
                state[k] = values[d];
            }

            let mut diff: u64 = 0;
            for &o in &out_nets {
                let v = values[o];
                let good = (v & 1).wrapping_neg();
                diff |= v ^ good;
            }
            diff &= lanes_mask;

            // Launch gating: credit a lane only if the good machine moved
            // the line in the slow direction since the previous pattern.
            let cc = patterns.cc(t);
            let mut launched = 0u32;
            for (lane0, &fi) in batch.iter().enumerate() {
                let lane_bit = 1u64 << (lane0 + 1);
                if config.drop_detected && detected_mask & lane_bit != 0 {
                    continue;
                }
                let f = list.fault(fi);
                // Good-machine value of the site *with the fault's own lane
                // masked out* equals lane 0 (the stimuli are identical).
                let cur = values[f.net.index()] & 1 == 1;
                let launch = match (prev_site_good[lane0], f.transition) {
                    (Some(false), Transition::SlowToRise) => cur,
                    (Some(true), Transition::SlowToFall) => !cur,
                    _ => false,
                };
                prev_site_good[lane0] = Some(cur);
                if !launch {
                    continue;
                }
                launched += 1;
                if diff & lane_bit != 0 && detected_mask & lane_bit == 0 {
                    list.detected_at[fi] = Some(cc);
                    report.record_detection(fi, cc, t);
                    detected_per_pattern[t] += 1;
                    detected_mask |= lane_bit;
                }
            }
            launched_per_pattern[t] += launched;
            if config.drop_detected && config.early_exit && detected_mask == lanes_mask {
                break;
            }
        }
    }

    for t in 0..n_pat {
        report.record_pattern(
            patterns.cc(t),
            launched_per_pattern[t],
            detected_per_pattern[t],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    fn and2() -> Netlist {
        let mut b = Builder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        b.output("z", z);
        b.finish()
    }

    #[test]
    fn single_pattern_detects_nothing() {
        // Transition faults need pairs: one pattern cannot launch.
        let n = and2();
        let mut list = TdfList::enumerate(&n);
        let mut p = PatternSeq::new(2);
        p.push_value(0, 0b11);
        let r = tdf_simulate(&n, &p, &mut list, &FaultSimConfig::default());
        assert_eq!(r.total_detected(), 0);
        assert_eq!(list.coverage(), 0.0);
    }

    #[test]
    fn rising_pair_detects_slow_to_rise() {
        let n = and2();
        let mut list = TdfList::enumerate(&n);
        let mut p = PatternSeq::new(2);
        p.push_value(0, 0b01); // z = 0, x = 1, y = 0
        p.push_value(1, 0b11); // z rises, x holds, y rises
        tdf_simulate(&n, &p, &mut list, &FaultSimConfig::default());
        // Detected: z/STR (z rose and the stale 0 is visible) and y/STR
        // (y's rise is what made z rise). x held, so x/STR launched nothing.
        let detected: Vec<String> = (0..list.len())
            .filter(|&i| list.detected_at(i).is_some())
            .map(|i| list.fault(i).to_string())
            .collect();
        assert!(detected.contains(&"n2/STR".to_string()), "{detected:?}");
        assert!(detected.contains(&"n1/STR".to_string()), "{detected:?}");
        assert!(!detected.contains(&"n0/STR".to_string()), "{detected:?}");
        assert!(!detected.iter().any(|d| d.ends_with("STF")));
    }

    #[test]
    fn exhaustive_walk_covers_all_transitions() {
        // A walk that rises and falls every line with propagation.
        let n = and2();
        let mut list = TdfList::enumerate(&n);
        let mut p = PatternSeq::new(2);
        for (cc, v) in [
            (0, 0b01),
            (1, 0b11),
            (2, 0b01),
            (3, 0b10),
            (4, 0b11),
            (5, 0b10),
        ] {
            p.push_value(cc, v);
        }
        tdf_simulate(&n, &p, &mut list, &FaultSimConfig::default());
        assert_eq!(
            list.coverage(),
            1.0,
            "undetected: {:?}",
            list.undetected()
                .map(|i| list.fault(i).to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn detection_stamps_use_the_launch_cycle() {
        let n = and2();
        let mut list = TdfList::enumerate(&n);
        let mut p = PatternSeq::new(2);
        p.push_value(100, 0b01);
        p.push_value(200, 0b11);
        tdf_simulate(&n, &p, &mut list, &FaultSimConfig::default());
        for i in 0..list.len() {
            if let Some(cc) = list.detected_at(i) {
                assert_eq!(cc, 200, "{}", list.fault(i));
            }
        }
    }

    #[test]
    fn dropping_skips_detected() {
        let n = and2();
        let mut list = TdfList::enumerate(&n);
        let mut p = PatternSeq::new(2);
        for (cc, v) in [
            (0, 0b01),
            (1, 0b11),
            (2, 0b01),
            (3, 0b10),
            (4, 0b11),
            (5, 0b10),
        ] {
            p.push_value(cc, v);
        }
        let cfg = FaultSimConfig::default();
        tdf_simulate(&n, &p, &mut list, &cfg);
        let r2 = tdf_simulate(&n, &p, &mut list, &cfg);
        assert_eq!(r2.total_detected(), 0);
        list.reset();
        assert_eq!(list.coverage(), 0.0);
    }

    #[test]
    fn tdf_coverage_is_harder_than_stuck_at() {
        // On the decoder unit with random patterns, transition coverage
        // trails stuck-at coverage (pairs are harder than single patterns).
        let n = warpstl_netlist::modules::ModuleKind::DecoderUnit.build();
        let width = n.inputs().width();
        let mut p = PatternSeq::new(width);
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for cc in 0..60 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let bits: Vec<bool> = (0..width).map(|b| (x >> (b % 64)) & 1 == 1).collect();
            p.push_bits(cc, &bits);
        }
        let mut tdf = TdfList::enumerate(&n);
        tdf_simulate(&n, &p, &mut tdf, &FaultSimConfig::default());

        let u = crate::FaultUniverse::enumerate(&n);
        let mut sa = crate::FaultList::new(&u);
        crate::fault_simulate(&n, &p, &mut sa, &FaultSimConfig::default());
        assert!(
            tdf.coverage() < sa.coverage(),
            "TDF {} >= SA {}",
            tdf.coverage(),
            sa.coverage()
        );
        assert!(tdf.coverage() > 0.05, "TDF {}", tdf.coverage());
    }
}
