//! Fault enumeration and structural equivalence collapsing.

use std::collections::HashMap;

use warpstl_netlist::{GateKind, NetId, Netlist};

use crate::{DominanceView, Fault, FaultId, FaultSite, Polarity};

/// The complete single-stuck-at fault universe of a netlist, collapsed by
/// structural equivalence.
///
/// Enumeration covers every gate output (stem) and every gate input pin
/// (fanout branch), excluding constants. Collapsing applies the classic
/// per-gate equivalences (an AND input stuck-at-0 is indistinguishable from
/// its output stuck-at-0, and so on) plus stem/branch equivalence on
/// fanout-free nets; each surviving representative carries the size of its
/// equivalence class so coverage can be reported over the *full* universe,
/// as fault-injection campaigns do.
///
/// # Examples
///
/// ```
/// use warpstl_fault::FaultUniverse;
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("c");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.and(x, y);
/// b.output("z", z);
/// let u = FaultUniverse::enumerate(&b.finish());
/// assert!(u.collapsed_len() < u.total_len());
/// ```
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    representatives: Vec<Fault>,
    class_sizes: Vec<u32>,
    /// Every enumerated fault mapped to the index of its representative in
    /// `representatives` — the lookup dominance analysis lifts fault-level
    /// relations to class level with.
    rep_of: HashMap<Fault, u32>,
    total: usize,
}

impl FaultUniverse {
    /// Enumerates and collapses the fault universe of `netlist`.
    #[must_use]
    pub fn enumerate(netlist: &Netlist) -> FaultUniverse {
        // 1. Enumerate all sites.
        let mut faults: Vec<Fault> = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            if matches!(g.kind, GateKind::Const0 | GateKind::Const1) {
                continue;
            }
            let id = NetId(i as u32);
            for pol in Polarity::BOTH {
                faults.push(Fault::new(FaultSite::Output(id), pol));
            }
            for pin in 0..g.kind.arity() as u8 {
                // Pins fed by constants are tied; skip them.
                let src = g.pins[pin as usize];
                if matches!(
                    netlist.gates()[src.index()].kind,
                    GateKind::Const0 | GateKind::Const1
                ) {
                    continue;
                }
                for pol in Polarity::BOTH {
                    faults.push(Fault::new(FaultSite::InputPin(id, pin), pol));
                }
            }
        }
        let total = faults.len();
        let index: HashMap<Fault, usize> =
            faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();

        // 2. Union equivalent faults.
        let mut uf = UnionFind::new(faults.len());
        let mut union = |a: Fault, b: Fault| {
            if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                uf.union(ia, ib);
            }
        };
        for (i, g) in netlist.gates().iter().enumerate() {
            let id = NetId(i as u32);
            let out = |p| Fault::new(FaultSite::Output(id), p);
            let pin = |k, p| Fault::new(FaultSite::InputPin(id, k), p);
            match g.kind {
                GateKind::And => {
                    union(out(Polarity::Sa0), pin(0, Polarity::Sa0));
                    union(out(Polarity::Sa0), pin(1, Polarity::Sa0));
                }
                GateKind::Nand => {
                    union(out(Polarity::Sa1), pin(0, Polarity::Sa0));
                    union(out(Polarity::Sa1), pin(1, Polarity::Sa0));
                }
                GateKind::Or => {
                    union(out(Polarity::Sa1), pin(0, Polarity::Sa1));
                    union(out(Polarity::Sa1), pin(1, Polarity::Sa1));
                }
                GateKind::Nor => {
                    union(out(Polarity::Sa0), pin(0, Polarity::Sa1));
                    union(out(Polarity::Sa0), pin(1, Polarity::Sa1));
                }
                GateKind::Not => {
                    union(out(Polarity::Sa0), pin(0, Polarity::Sa1));
                    union(out(Polarity::Sa1), pin(0, Polarity::Sa0));
                }
                GateKind::Buf | GateKind::Dff => {
                    union(out(Polarity::Sa0), pin(0, Polarity::Sa0));
                    union(out(Polarity::Sa1), pin(0, Polarity::Sa1));
                }
                _ => {}
            }
            // Stem/branch equivalence on fanout-free nets: the branch fault
            // at this gate's pin is equivalent to the stem fault at the
            // driver.
            for k in 0..g.kind.arity() as u8 {
                let src = g.pins[k as usize];
                if g.kind != GateKind::Dff && netlist.fanout(src) == 1 {
                    for pol in Polarity::BOTH {
                        union(Fault::new(FaultSite::Output(src), pol), pin(k, pol));
                    }
                }
            }
        }

        // 3. Pick representatives (prefer stem faults, then lowest site).
        let mut class_members: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..faults.len() {
            class_members.entry(uf.find(i)).or_default().push(i);
        }
        let mut reps: Vec<(Fault, u32, Vec<usize>)> = class_members
            .into_values()
            .map(|members| {
                let rep = members
                    .iter()
                    .map(|&m| faults[m])
                    .min_by_key(|f| match f.site {
                        FaultSite::Output(n) => (0u8, n, 0u8, f.polarity),
                        FaultSite::InputPin(n, p) => (1u8, n, p, f.polarity),
                    })
                    .expect("non-empty class");
                (rep, members.len() as u32, members)
            })
            .collect();
        reps.sort_by_key(|(f, _, _)| *f);
        let mut representatives = Vec::with_capacity(reps.len());
        let mut class_sizes = Vec::with_capacity(reps.len());
        let mut rep_of = HashMap::with_capacity(faults.len());
        for (idx, (rep, size, members)) in reps.into_iter().enumerate() {
            for m in members {
                rep_of.insert(faults[m], idx as u32);
            }
            representatives.push(rep);
            class_sizes.push(size);
        }
        FaultUniverse {
            representatives,
            class_sizes,
            rep_of,
            total,
        }
    }

    /// The collapsed representative faults, in deterministic order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.representatives
    }

    /// The number of collapsed faults.
    #[must_use]
    pub fn collapsed_len(&self) -> usize {
        self.representatives.len()
    }

    /// The size of the equivalence class represented by fault `i`.
    #[must_use]
    pub fn class_size(&self, i: usize) -> u32 {
        self.class_sizes[i]
    }

    /// The total (uncollapsed) number of faults.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// The collapse ratio (collapsed / total). An empty universe (a
    /// netlist with nothing but constants) has nothing to collapse and
    /// reports `1.0` rather than `0/0 = NaN`.
    #[must_use]
    pub fn collapse_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.collapsed_len() as f64 / self.total_len() as f64
    }

    /// The id of the equivalence class containing `fault`, or `None` for
    /// faults outside the universe (constant-gate sites and tied pins are
    /// never enumerated).
    #[must_use]
    pub fn rep_of(&self, fault: Fault) -> Option<FaultId> {
        self.rep_of.get(&fault).map(|&i| i as usize)
    }

    /// Layers fault-dominance collapsing on top of the equivalence
    /// classes: a [`DominanceView`] naming which classes can be removed
    /// from direct simulation because detecting one of their *supporters*
    /// implies their detection. Identity (nothing removed) for sequential
    /// netlists, where per-pattern dominance does not hold.
    #[must_use]
    pub fn dominance(&self, netlist: &Netlist) -> DominanceView {
        DominanceView::build(self, netlist)
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    #[test]
    fn inverter_chain_collapses_fully() {
        // x -> NOT -> NOT -> y: all faults collapse onto one chain of
        // equivalences; 2 classes remain per polarity pairing.
        let mut b = Builder::new("chain");
        let x = b.input("x");
        let n1 = b.not(x);
        let n2 = b.not(n1);
        b.output("y", n2);
        let u = FaultUniverse::enumerate(&b.finish());
        // Universe: outputs x,n1,n2 (6) + pins n1.in0, n2.in0 (4) = 10.
        assert_eq!(u.total_len(), 10);
        // All collapse into {x/SA0 ≡ n1.in0/SA0 ≡ n1/SA1 ≡ n2.in0/SA1 ≡ n2/SA0}
        // and the dual class.
        assert_eq!(u.collapsed_len(), 2);
        assert_eq!(u.class_size(0) + u.class_size(1), 10);
    }

    #[test]
    fn and_gate_collapse() {
        let mut b = Builder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        b.output("z", z);
        let u = FaultUniverse::enumerate(&b.finish());
        // Universe: 3 outputs (6) + 2 pins (4) = 10.
        assert_eq!(u.total_len(), 10);
        // {z/SA0, z.in0/SA0, z.in1/SA0, x/SA0, y/SA0} collapse (pins are
        // fanout-free branches of x and y) -> classes:
        //   {z/SA0, in0/SA0, in1/SA0, x/SA0, y/SA0}, {z/SA1},
        //   {x/SA1 ≡ in0/SA1}, {y/SA1 ≡ in1/SA1}
        assert_eq!(u.collapsed_len(), 4);
        let total: u32 = (0..4).map(|i| u.class_size(i)).sum();
        assert_eq!(total as usize, 10);
    }

    #[test]
    fn fanout_branches_stay_distinct() {
        // x feeds two gates: branch faults must not collapse with the stem.
        let mut b = Builder::new("fan");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and(x, y);
        let o = b.or(x, y);
        b.output("a", a);
        b.output("o", o);
        let u = FaultUniverse::enumerate(&b.finish());
        // x/SA0 stem must be a distinct representative from a.in0/SA0 and
        // o.in0/SA0 (x has fanout 2).
        let has = |f: Fault| u.faults().contains(&f);
        assert!(has(Fault::new(FaultSite::Output(NetId(0)), Polarity::Sa0)));
        // a's SA0 class absorbed its own pins; but x's branch into `a`
        // collapses into a/SA0 (AND rule), not into x/SA0.
        assert!(u.collapsed_len() > 4);
    }

    #[test]
    fn constants_are_skipped() {
        let mut b = Builder::new("c");
        let x = b.input("x");
        let one = b.const1();
        let z = b.and(x, one);
        b.output("z", z);
        let u = FaultUniverse::enumerate(&b.finish());
        // No fault mentions the constant gate or the pin tied to it.
        for f in u.faults() {
            match f.site {
                FaultSite::Output(n) => assert_ne!(n, NetId(1)),
                FaultSite::InputPin(n, p) => {
                    assert!(!(n == NetId(2) && p == 1), "tied pin fault kept");
                }
            }
        }
    }

    #[test]
    fn empty_universe_has_unit_collapse_ratio() {
        // A netlist of constants only enumerates zero faults; the ratio
        // must be 1.0, not 0/0 = NaN.
        let mut b = Builder::new("consts");
        let k = b.const1();
        b.output("k", k);
        let u = FaultUniverse::enumerate(&b.finish());
        assert_eq!(u.total_len(), 0);
        assert_eq!(u.collapsed_len(), 0);
        assert_eq!(u.collapse_ratio(), 1.0);
    }

    #[test]
    fn not_gate_inverts_equivalence() {
        // NOT: in/SA0 ≡ out/SA1 and in/SA1 ≡ out/SA0 — the pin classes
        // merge with the *opposite* output polarity.
        let mut b = Builder::new("not");
        let x = b.input("x");
        let y = b.not(x);
        b.output("y", y);
        let u = FaultUniverse::enumerate(&b.finish());
        // Universe: x, y outputs (4) + y.in0 (2) = 6; two classes remain.
        assert_eq!(u.total_len(), 6);
        assert_eq!(u.collapsed_len(), 2);
        let rep = |f| u.rep_of(f).expect("in universe");
        let pin = |p| Fault::new(FaultSite::InputPin(NetId(1), 0), p);
        let out = |p| Fault::new(FaultSite::Output(NetId(1)), p);
        assert_eq!(rep(pin(Polarity::Sa0)), rep(out(Polarity::Sa1)));
        assert_eq!(rep(pin(Polarity::Sa1)), rep(out(Polarity::Sa0)));
        assert_ne!(rep(pin(Polarity::Sa0)), rep(pin(Polarity::Sa1)));
    }

    #[test]
    fn xor_and_xnor_pins_do_not_collapse_into_output() {
        // XOR/XNOR have no controlling value: no per-gate equivalence (or
        // dominance) exists, so with shared fanout the pin faults stay
        // distinct classes from the output faults.
        for xnor in [false, true] {
            let mut b = Builder::new(if xnor { "xnor" } else { "xor" });
            let x = b.input("x");
            let y = b.input("y");
            // Give x and y fanout 2 so stem/branch equivalence cannot
            // merge the pins with their drivers either.
            let g = if xnor { b.xnor(x, y) } else { b.xor(x, y) };
            let spare = b.and(x, y);
            b.output("g", g);
            b.output("s", spare);
            let u = FaultUniverse::enumerate(&b.finish());
            let rep = |f| u.rep_of(f).expect("in universe");
            let gate = g;
            for pin in 0..2u8 {
                for pol in Polarity::BOTH {
                    let branch = Fault::new(FaultSite::InputPin(gate, pin), pol);
                    for out_pol in Polarity::BOTH {
                        let stem = Fault::new(FaultSite::Output(gate), out_pol);
                        assert_ne!(
                            rep(branch),
                            rep(stem),
                            "xnor={xnor} pin{pin}/{pol:?} collapsed into output"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rep_of_covers_every_enumerated_fault() {
        let n = warpstl_netlist::modules::ModuleKind::Sfu.build();
        let u = FaultUniverse::enumerate(&n);
        // Representatives map to themselves, at their own index.
        for (i, &f) in u.faults().iter().enumerate() {
            assert_eq!(u.rep_of(f), Some(i));
        }
        // Class sizes and the rep_of map agree on the universe total.
        let sizes: u32 = (0..u.collapsed_len()).map(|i| u.class_size(i)).sum();
        assert_eq!(sizes as usize, u.total_len());
    }

    #[test]
    fn modules_have_plausible_fault_counts() {
        let n = warpstl_netlist::modules::ModuleKind::DecoderUnit.build();
        let u = FaultUniverse::enumerate(&n);
        assert!(u.total_len() > 2000, "total {}", u.total_len());
        assert!(u.collapse_ratio() < 0.8, "ratio {}", u.collapse_ratio());
        assert!(u.collapse_ratio() > 0.3, "ratio {}", u.collapse_ratio());
    }
}
