//! Loopback protocol tests: golden request/response behavior for every
//! endpoint, the CLI byte-identity contract, queue-full backpressure, and
//! the acceptance scenario — concurrent clients over one shared cache
//! with gc running underneath.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use warpstl_core::jobs::{compact_job, JobOptions};
use warpstl_programs::generators::{generate_imm, ImmConfig};
use warpstl_programs::serialize::{ptp_from_text, ptp_to_text, stl_to_text};
use warpstl_programs::Stl;
use warpstl_serve::json::{escape, parse};
use warpstl_serve::{serve, ServeConfig};
use warpstl_store::Store;

/// One full HTTP exchange (the protocol is one request per connection).
/// Returns `(status, head, body)`.
fn exchange(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: warpstl\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), payload.to_string())
}

fn imm_ptp_text(sb_count: usize) -> String {
    ptp_to_text(&generate_imm(&ImmConfig {
        sb_count,
        ..ImmConfig::default()
    }))
}

fn compact_body(ptp_text: &str) -> String {
    format!("{{\"ptp\": \"{}\"}}", escape(ptp_text))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("warpstl-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn health_metrics_and_unknown_endpoints() {
    let handle = serve(&ServeConfig::default()).unwrap();
    let addr = handle.addr();

    let (status, _, body) = exchange(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\": \"ok\"}"));

    let (status, _, body) = exchange(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = parse(&body).expect("metrics must be valid JSON");
    assert_eq!(metrics.get("cache"), Some(&warpstl_serve::json::Json::Null));
    let queue = metrics.get("queue").expect("queue section");
    assert_eq!(queue.get("depth").unwrap().as_count(), Some(0));
    let jobs = metrics.get("jobs").expect("jobs section");
    assert_eq!(jobs.get("rejected").unwrap().as_count(), Some(0));

    let (status, _, _) = exchange(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = exchange(addr, "DELETE", "/compact", "");
    assert_eq!(status, 404);

    handle.shutdown();
}

#[test]
fn malformed_bodies_answer_400_with_an_explanation() {
    let handle = serve(&ServeConfig::default()).unwrap();
    let addr = handle.addr();

    for (target, body) in [
        ("/compact", "this is not json"),
        ("/compact", "{\"not_ptp\": 1}"),
        ("/compact", "{\"ptp\": 42}"),
        (
            "/compact",
            "{\"ptp\": \"x\", \"options\": {\"backend\": \"quantum\"}}",
        ),
        (
            "/compact",
            "{\"ptp\": \"x\", \"options\": {\"threads\": -1}}",
        ),
        ("/compact-stl", "{}"),
        ("/analyze", "{\"module\": 3}"),
        ("/lint", "[]"),
    ] {
        let (status, _, reply) = exchange(addr, "POST", target, body);
        assert_eq!(status, 400, "expected 400 for {target} body {body:?}");
        assert!(
            parse(&reply).unwrap().get("error").is_some(),
            "400 body must carry an error message: {reply}"
        );
    }

    // A parseable request naming an unknown module fails in the worker,
    // still as a 400 (the caller's mistake, not the server's).
    let (status, _, reply) = exchange(addr, "POST", "/analyze", "{\"module\": \"warp_scheduler\"}");
    assert_eq!(status, 400);
    assert!(reply.contains("unknown module"));

    // Well-formed JSON wrapping an unparseable PTP is also the caller's
    // mistake.
    let (status, _, _) = exchange(addr, "POST", "/compact", "{\"ptp\": \"not a ptp\"}");
    assert_eq!(status, 400);

    handle.shutdown();
}

#[test]
fn compact_report_bytes_match_the_cli_and_envelope_embeds_them() {
    let ptp_text = imm_ptp_text(4);
    // The CLI's `--json FILE` writes exactly `report.to_json()`, which is
    // exactly what `compact_job` returns — the oracle for the wire bytes.
    let oracle = compact_job(&ptp_text, &JobOptions::default(), None, None).unwrap();

    let handle = serve(&ServeConfig::default()).unwrap();
    let addr = handle.addr();

    let (status, _, raw) = exchange(
        addr,
        "POST",
        "/compact?format=report",
        &compact_body(&ptp_text),
    );
    assert_eq!(status, 200);
    assert_eq!(
        raw, oracle.report_json,
        "serve report bytes != CLI --json bytes"
    );

    let (status, _, envelope) = exchange(addr, "POST", "/compact", &compact_body(&ptp_text));
    assert_eq!(status, 200);
    let value = parse(&envelope).expect("envelope must be valid JSON");
    let compacted = value.get("compacted").unwrap().as_str().unwrap();
    assert_eq!(compacted, oracle.compacted);
    ptp_from_text(compacted).expect("compacted PTP must round-trip");
    assert!(value.get("report").unwrap().get("fc_after").is_some());

    handle.shutdown();
}

#[test]
fn stl_analyze_and_lint_jobs_answer_their_cli_shapes() {
    let mut stl = Stl::new("lib");
    stl.push(generate_imm(&ImmConfig {
        sb_count: 4,
        ..ImmConfig::default()
    }));
    let stl_text = stl_to_text(&stl);

    let handle = serve(&ServeConfig::default()).unwrap();
    let addr = handle.addr();

    let body = format!("{{\"stl\": \"{}\"}}", escape(&stl_text));
    let (status, _, raw) = exchange(addr, "POST", "/compact-stl?format=report", &body);
    assert_eq!(status, 200);
    // The CLI's compact-stl --json spelling: a pretty-printed array.
    assert!(
        raw.starts_with("[\n{") && raw.ends_with("}\n]\n"),
        "{raw:?}"
    );

    let (status, _, reply) = exchange(addr, "POST", "/analyze", "{\"module\": \"decoder_unit\"}");
    assert_eq!(status, 200);
    let value = parse(&reply).unwrap();
    assert_eq!(value.get("clean").unwrap().as_bool(), Some(true));
    assert!(value.get("report").is_some());

    // A dirty module is still a completed job; the report is the answer.
    let (status, _, reply) = exchange(addr, "POST", "/analyze", "{\"module\": \"comb-loop\"}");
    assert_eq!(status, 200);
    assert_eq!(
        parse(&reply).unwrap().get("clean").unwrap().as_bool(),
        Some(false)
    );

    let body = format!("{{\"ptp\": \"{}\"}}", escape(&imm_ptp_text(4)));
    let (status, _, reply) = exchange(addr, "POST", "/lint", &body);
    assert_eq!(status, 200);
    assert_eq!(
        parse(&reply).unwrap().get("clean").unwrap().as_bool(),
        Some(true)
    );

    handle.shutdown();
}

#[test]
fn full_queue_answers_429_with_retry_after_then_drains_with_503() {
    // Zero workers: accepted jobs sit in the queue forever, which makes
    // the capacity boundary deterministic.
    let config = ServeConfig {
        workers: Some(0),
        queue_cap: 2,
        ..ServeConfig::default()
    };
    let handle = serve(&config).unwrap();
    let addr = handle.addr();
    let body = compact_body(&imm_ptp_text(2));

    // Two jobs fill the queue. Keep their connections open — each client
    // is still waiting for an answer.
    let mut queued = Vec::new();
    for _ in 0..2 {
        let mut conn = TcpStream::connect(addr).unwrap();
        let request = format!(
            "POST /compact HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        conn.write_all(request.as_bytes()).unwrap();
        queued.push(conn);
    }
    // The acceptor handles connections strictly in order, so a completed
    // metrics exchange proves both jobs are enqueued.
    let (status, _, metrics) = exchange(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let depth = parse(&metrics)
        .unwrap()
        .get("queue")
        .unwrap()
        .get("depth")
        .unwrap()
        .as_count();
    assert_eq!(depth, Some(2));

    // The third job bounces with explicit backpressure.
    let (status, head, reply) = exchange(addr, "POST", "/compact", &body);
    assert_eq!(status, 429);
    assert!(
        head.contains("Retry-After: 1"),
        "missing Retry-After: {head}"
    );
    assert!(reply.contains("queue is full"));

    let (_, _, metrics) = exchange(addr, "GET", "/metrics", "");
    let value = parse(&metrics).unwrap();
    let jobs = value.get("jobs").unwrap();
    assert_eq!(jobs.get("rejected").unwrap().as_count(), Some(1));
    assert_eq!(jobs.get("accepted").unwrap().as_count(), Some(2));

    // Shutdown with no workers: the queued clients are told the truth.
    handle.shutdown();
    for mut conn in queued {
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 503 "), "queued job got: {raw}");
    }
}

#[test]
fn shutdown_drains_accepted_jobs_before_exiting() {
    let config = ServeConfig {
        workers: Some(1),
        ..ServeConfig::default()
    };
    let handle = serve(&config).unwrap();
    let addr = handle.addr();
    let body = compact_body(&imm_ptp_text(2));

    // Submit, then immediately request shutdown: the accepted job must
    // still complete (graceful drain), not get dropped.
    let mut conn = TcpStream::connect(addr).unwrap();
    let request = format!(
        "POST /compact?format=report HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).unwrap();
    let (status, _, _) = exchange(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.shutdown();

    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200 "), "drained job got: {raw}");
}

/// The acceptance scenario: two concurrent clients submit the same module
/// against one shared cache directory while gc runs concurrently in
/// another process-shaped actor (a separate `Store` handle on the same
/// directory). Every response must be 200 with report bytes identical to
/// a solo CLI run.
#[test]
fn concurrent_clients_share_a_cache_and_match_the_solo_cli_run() {
    let ptp_text = imm_ptp_text(4);
    let oracle = compact_job(&ptp_text, &JobOptions::default(), None, None).unwrap();

    let cache_dir = temp_dir("shared-cache");
    let config = ServeConfig {
        workers: Some(2),
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    };
    let handle = serve(&config).unwrap();
    let addr = handle.addr();
    let body = Arc::new(compact_body(&ptp_text));

    let gc_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let gc_thread = {
        let (dir, stop) = (cache_dir.clone(), Arc::clone(&gc_stop));
        std::thread::spawn(move || {
            let store = Store::open(&dir).unwrap();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                store.gc().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    let clients: Vec<_> = (0..2)
        .map(|_| {
            let body = Arc::clone(&body);
            std::thread::spawn(move || exchange(addr, "POST", "/compact?format=report", &body))
        })
        .collect();
    for client in clients {
        let (status, _, raw) = client.join().unwrap();
        assert_eq!(status, 200, "concurrent client failed: {raw}");
        assert_eq!(
            raw, oracle.report_json,
            "shared-cache run diverged from solo CLI"
        );
    }

    // A warm rerun replays from the store the concurrent run populated.
    let (status, _, raw) = exchange(addr, "POST", "/compact?format=report", &body);
    assert_eq!(status, 200);
    assert_eq!(raw, oracle.report_json);
    let (_, _, metrics) = exchange(addr, "GET", "/metrics", "");
    let value = parse(&metrics).unwrap();
    let cache = value.get("cache").expect("cache section");
    assert!(cache.get("hits").unwrap().as_count().unwrap() >= 1);
    assert_eq!(cache.get("corrupt").unwrap().as_count(), Some(0));

    gc_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    gc_thread.join().unwrap();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
