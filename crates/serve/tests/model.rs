//! Model-checked invariants for the daemon's [`JobQueue`]: the PR-8
//! shutdown-protocol guarantees, proved over every interleaving (up to the
//! preemption bound) instead of sampled by stress tests. Runs only under
//! `RUSTFLAGS="--cfg warpstl_model"` (see `scripts/check.sh`).
//!
//! The queue is generic precisely so these tests exist: the real item
//! type carries a `TcpStream`, so the model programs run `JobQueue<u32>`.
#![cfg(warpstl_model)]

use std::sync::Arc;

use warpstl_serve::queue::{JobQueue, PushRejection};
use warpstl_sync::model;

/// Two producers, two consumers, a close in between: every accepted job
/// is popped exactly once — never lost, never duplicated.
#[test]
fn no_job_is_lost_or_duplicated_across_producers_and_consumers() {
    // Five threads (main, two producers, two consumers) around one
    // condvar: the largest state space in the suite, so give it headroom
    // over the default iteration cap rather than shrinking the scenario.
    let opts = model::ModelOpts {
        max_iterations: 600_000,
        ..model::ModelOpts::default()
    };
    let stats = model::check_with(&opts, || {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        let producers: Vec<_> = [1u32, 2]
            .into_iter()
            .map(|v| {
                let queue = Arc::clone(&queue);
                model::spawn(move || queue.try_push(v).is_ok())
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                model::spawn(move || {
                    let mut popped = Vec::new();
                    while let Some(v) = queue.pop() {
                        popped.push(v);
                    }
                    popped
                })
            })
            .collect();
        let accepted: usize = producers.into_iter().map(|p| usize::from(p.join())).sum();
        queue.close();
        let mut seen: Vec<u32> = consumers
            .into_iter()
            .flat_map(model::JoinHandle::join)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), accepted, "lost or duplicated job: {seen:?}");
        seen.dedup();
        assert_eq!(seen.len(), accepted, "duplicated job: {seen:?}");
    })
    .expect("queue must not lose or duplicate jobs under any schedule");
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
}

/// A producer racing a close: whatever `try_push` accepted is exactly
/// what `drain_remaining` hands back (in order), and everything pushed
/// after the close is answered `Draining` — the 503 path.
#[test]
fn close_then_drain_leaves_exactly_the_accepted_jobs() {
    let stats = model::check(|| {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        let producer = {
            let queue = Arc::clone(&queue);
            model::spawn(move || {
                let mut accepted = Vec::new();
                for v in [10u32, 20] {
                    match queue.try_push(v) {
                        Ok(()) => accepted.push(v),
                        Err((_, PushRejection::Draining)) => {}
                        Err((_, PushRejection::Full)) => {
                            unreachable!("capacity 4 cannot fill with 2 pushes")
                        }
                    }
                }
                accepted
            })
        };
        queue.close();
        let accepted = producer.join();
        assert_eq!(
            queue.drain_remaining(),
            accepted,
            "drain must return exactly the accepted jobs, in order"
        );
        // After the close everything is refused as draining, never Full.
        match queue.try_push(99) {
            Err((99, PushRejection::Draining)) => {}
            other => panic!("push after close must be Draining, got {other:?}"),
        }
    })
    .expect("close/drain protocol must hold under any schedule");
    assert!(stats.complete);
}

/// Two producers race one capacity slot: exactly one wins, the loser gets
/// `Full` (the 429 path), and the accepted job is still there.
#[test]
fn capacity_is_never_oversubscribed() {
    let stats = model::check(|| {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let producers: Vec<_> = [1u32, 2]
            .into_iter()
            .map(|v| {
                let queue = Arc::clone(&queue);
                model::spawn(move || match queue.try_push(v) {
                    Ok(()) => None,
                    Err((v, rejection)) => Some((v, rejection)),
                })
            })
            .collect();
        let rejections: Vec<_> = producers
            .into_iter()
            .filter_map(model::JoinHandle::join)
            .collect();
        assert_eq!(rejections.len(), 1, "exactly one producer must lose");
        assert_eq!(rejections[0].1, PushRejection::Full);
        assert_eq!(queue.depth(), 1, "the winner's job must be queued");
    })
    .expect("a capacity-1 queue admits exactly one of two pushes");
    assert!(stats.complete);
}

/// The worker-handoff condvar protocol: a consumer blocked in `pop` is
/// woken by a later push and gets the job — no lost wakeup, under every
/// notify/wait interleaving.
#[test]
fn blocked_consumer_is_always_woken_by_a_push() {
    let stats = model::check(|| {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(2));
        let consumer = {
            let queue = Arc::clone(&queue);
            model::spawn(move || queue.pop())
        };
        queue.try_push(7).expect("open queue with room");
        let got = consumer.join();
        assert_eq!(got, Some(7), "consumer must receive the pushed job");
        queue.close();
    })
    .expect("push must always wake a blocked consumer");
    assert!(stats.complete);
}

/// Sanity: the checker still *catches* protocol violations in this
/// crate's setting — a TOCTOU depth-check around `pop` (the bug the
/// single-lock `pop` exists to prevent) is found, with a replayable
/// schedule.
#[test]
fn seeded_toctou_depth_check_is_caught() {
    fn racy_program() {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        queue.try_push(1).expect("room");
        queue.close();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                model::spawn(move || {
                    // BUG: depth() then pop() is two lock acquisitions;
                    // both consumers can pass the depth check before
                    // either pops, and the loser's "guaranteed" job is
                    // gone.
                    if queue.depth() > 0 {
                        assert!(
                            queue.pop().is_some(),
                            "TOCTOU: depth said nonempty but pop got None"
                        );
                    }
                })
            })
            .collect();
        for c in consumers {
            c.join();
        }
    }
    let cx = model::check(racy_program).expect_err("checker must catch the depth/pop TOCTOU");
    assert!(
        cx.message.contains("TOCTOU"),
        "unexpected counterexample: {cx}"
    );
    let replayed = model::replay(&model::ModelOpts::default(), &cx.schedule, racy_program)
        .expect_err("schedule must reproduce");
    assert!(replayed.message.contains("TOCTOU"));
}
