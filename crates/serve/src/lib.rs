#![warn(missing_docs)]
//! # warpstl-serve
//!
//! A long-running compaction daemon: hand-rolled HTTP/1.1 + JSON over
//! `std::net` (the build is dependency-light by policy) in front of the
//! job entry points of [`warpstl_core::jobs`]. This is the serving-stack
//! face of the paper's flow — many STLs, many modules, concurrent
//! clients, one warm artifact store.
//!
//! ## Protocol
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /compact` | `{"ptp": "<text>", "options": {...}}` | compacted PTP + report |
//! | `POST /compact-stl` | `{"stl": "<text>", "options": {...}}` | compacted STL + per-PTP reports |
//! | `POST /analyze` | `{"module": "<name>"}` | analyze report |
//! | `POST /lint` | `{"ptp": "<text>"}` | verifier report |
//! | `GET /healthz` | — | `{"status": "ok"}` |
//! | `GET /metrics` | — | deterministic counters/cache/queue JSON |
//! | `POST /shutdown` | — | flags a graceful drain |
//!
//! `options` accepts `reverse`, `respect_arc`, `prune` (booleans),
//! `backend` (`auto|event|kernel|kernel64`) and `threads`; every field
//! defaults to the server's configuration. Appending `?format=report` to
//! a job endpoint returns the raw report JSON **byte-identical** to the
//! CLI's `--json` file for the same input — the CLI equivalence suite
//! doubles as the protocol oracle. Malformed bodies answer `400`, a full
//! job queue answers `429` with `Retry-After`, compaction failures on
//! well-formed input answer `422`.
//!
//! ## Concurrency
//!
//! One acceptor thread validates requests and feeds a bounded queue; a
//! fixed worker pool runs jobs and answers on each job's own connection
//! (one request per connection, `Connection: close`). All workers share
//! one [`Store`](warpstl_store::Store) — safe because the store's
//! concurrency contract is atomic-rename + degrade-to-miss, not locks —
//! and each job gets `host_parallelism() / workers` engine threads so the
//! pool never oversubscribes the host.
//!
//! # Examples
//!
//! ```
//! use std::io::{Read, Write};
//! use warpstl_serve::{serve, ServeConfig};
//!
//! let handle = serve(&ServeConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! handle.shutdown();
//! ```

pub mod http;
pub mod json;
pub mod queue;
mod server;

pub use server::{run, serve, ServeConfig, ServerHandle};
