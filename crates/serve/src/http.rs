//! A hand-rolled HTTP/1.1 subset: exactly what the serve protocol needs.
//!
//! One request per connection (`Connection: close` on every response) —
//! compaction jobs run for seconds, so keep-alive would add state for no
//! measurable win. Bodies require `Content-Length`; chunked encoding is
//! rejected. Both limits keep the parser small enough to audit at a
//! glance, which is the point of not pulling in a framework.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The largest request head (request line + headers) we accept.
const MAX_HEAD: usize = 16 * 1024;

/// The largest request body we accept — STL files are text and small; a
/// bigger body is a client bug, not a workload.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// How long a connection may dribble its request before we give up on it.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, query string excluded (e.g. `/compact`).
    pub path: String,
    /// The raw query string after `?`, if any (e.g. `format=report`).
    pub query: String,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the query string contains `key=value` as one `&`-separated
    /// component (the protocol's queries are too simple to need decoding).
    pub fn query_is(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|part| part.split_once('=') == Some((key, value)))
    }
}

/// Why a request could not be parsed; maps to a 400 (or 413) response.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError(pub &'static str);

/// Reads one request from `stream` (which must already have a read
/// timeout set). The outer `Err` is transport failure (dead socket — no
/// response possible); the inner `Err` is a malformed request the caller
/// should answer with 400.
///
/// # Errors
///
/// Any I/O error from the socket, including timeout expiry.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, ParseError>> {
    // Read until the blank line, byte-buffered: bodies must not be
    // consumed into the head buffer beyond what a small over-read leaves.
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_blank_line(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD {
            return Ok(Err(ParseError("request head too large")));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(ParseError("connection closed mid-request")));
        }
        head.extend_from_slice(&chunk[..n]);
    };
    let (head_bytes, rest) = head.split_at(header_end + 4);
    let mut body = rest.to_vec();

    let Ok(head_text) = std::str::from_utf8(head_bytes) else {
        return Ok(Err(ParseError("non-UTF-8 request head")));
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Err(ParseError("malformed request line")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(ParseError("unsupported HTTP version")));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY => content_length = n,
                Ok(_) => return Ok(Err(ParseError("request body too large"))),
                Err(_) => return Ok(Err(ParseError("bad Content-Length"))),
            }
        } else if name == "transfer-encoding" {
            return Ok(Err(ParseError("chunked bodies are not supported")));
        }
    }

    if body.len() > content_length {
        return Ok(Err(ParseError("body longer than Content-Length")));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Ok(Err(ParseError("connection closed mid-body")));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        body,
    }))
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one complete response and flushes. Every response carries
/// `Connection: close`; the caller drops the stream afterwards.
///
/// # Errors
///
/// Any I/O error from the socket (the peer may have hung up).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw bytes pushed through a loopback
    /// socket pair.
    fn parse_bytes(raw: &[u8]) -> io::Result<Result<Request, ParseError>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let out = read_request(&mut stream);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let raw =
            b"POST /compact?format=report HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse_bytes(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compact");
        assert!(req.query_is("format", "report"));
        assert!(!req.query_is("format", "envelope"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /x SPDY/3\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                parse_bytes(raw).unwrap().is_err(),
                "accepted malformed request {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn response_writes_status_line_headers_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_response(
            &mut stream,
            429,
            "Too Many Requests",
            &[("Retry-After", "1")],
            "application/json",
            b"{}",
        )
        .unwrap();
        drop(stream);
        let raw = String::from_utf8(reader.join().unwrap()).unwrap();
        assert!(raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(raw.contains("Retry-After: 1\r\n"));
        assert!(raw.contains("Content-Length: 2\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("\r\n\r\n{}"));
    }
}
