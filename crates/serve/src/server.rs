//! The daemon: a single acceptor thread, a bounded job queue, and a fixed
//! worker pool sharing one [`Store`] and one [`Recorder`].
//!
//! Sharding model: the *job* is the unit of distribution. The acceptor
//! parses and validates each request inline (cheap — bodies are small
//! text), then hands the job plus its connection to the queue; whichever
//! worker pops it runs the full compaction and writes the response on the
//! job's own socket. Backpressure is explicit: a full queue answers
//! `429 Too Many Requests` with `Retry-After`, never an unbounded buffer.
//!
//! Thread budget: an N-worker pool gives each job
//! `host_parallelism() / N` engine threads (at least 1), so N concurrent
//! fault simulations together use the host once over — not N times
//! (oversubscription measured 0.807x in PR 3).
//!
//! Shutdown (`POST /shutdown`, SIGTERM, or [`ServerHandle::shutdown`])
//! drains gracefully: the acceptor stops accepting, workers finish every
//! queued job, and only jobs that no worker will ever pop (a zero-worker
//! test configuration) are answered `503`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use warpstl_sync::AtomicBool;

use warpstl_core::jobs::{
    analyze_job, compact_job, compact_stl_job, lint_job, JobError, JobOptions,
};
use warpstl_fault::{host_parallelism, FaultModel, SimBackend};
use warpstl_obs::{names, Recorder};
use warpstl_store::Store;

use crate::http::{read_request, write_response, ParseError, Request, READ_TIMEOUT};
use crate::json::{escape, parse, Json};
use crate::queue::{JobQueue, PushRejection};

/// How often the nonblocking accept loop polls the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Daemon configuration; the CLI's `serve` flags map onto this 1:1.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool size. `None` resolves to `min(4, host_parallelism())`;
    /// `Some(0)` is a test hook — jobs queue but never run, which makes
    /// queue-full behavior deterministic.
    pub workers: Option<usize>,
    /// Bounded queue capacity; the `workers + queue_cap + 1`-th
    /// concurrent job is rejected with 429.
    pub queue_cap: usize,
    /// Artifact cache directory shared by every job, if any.
    pub cache_dir: Option<PathBuf>,
    /// Default fault-simulation backend for jobs that don't pick one.
    pub backend: SimBackend,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: None,
            queue_cap: 16,
            cache_dir: None,
            backend: SimBackend::Auto,
        }
    }
}

/// One queued unit of work: the validated job plus the connection its
/// response belongs on.
struct Job {
    spec: JobSpec,
    /// `?format=report`: respond with the raw report bytes (the CLI's
    /// `--json` output) instead of the envelope.
    raw_report: bool,
    stream: TcpStream,
}

enum JobSpec {
    Compact { ptp: String, opts: JobOptions },
    CompactStl { stl: String, opts: JobOptions },
    Analyze { module: String, lanes: usize },
    Lint { ptp: String },
}

struct Shared {
    store: Option<Arc<Store>>,
    recorder: Recorder,
    queue: JobQueue<Job>,
    workers: usize,
    backend: SimBackend,
    /// Engine threads each job gets: the worker pool's even share of the
    /// host, so the pool as a whole never oversubscribes.
    job_threads: usize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Folds a per-job recorder's counters into the daemon-lifetime
    /// recorder. Jobs get their own recorder (not the shared one) so the
    /// daemon aggregates *counters* without accumulating every job's
    /// spans for its whole lifetime.
    fn absorb_job_counters(&self, job_rec: &Recorder) {
        for (name, n) in &job_rec.metrics().counters {
            self.recorder.add(name, *n);
        }
    }

    fn metrics_json(&self) -> String {
        let m = self.recorder.metrics();
        let mut out = String::from("{\n");
        match self.store.as_deref() {
            Some(store) => {
                let s = store.session();
                out.push_str(&format!(
                    "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"corrupt\": {}, \"version_mismatch\": {}, \"writes\": {}, \"write_errors\": {}}},\n",
                    s.hits, s.misses, s.corrupt, s.version_mismatch, s.writes, s.write_errors
                ));
            }
            None => out.push_str("  \"cache\": null,\n"),
        }
        out.push_str("  \"counters\": {");
        let counters: Vec<String> = m
            .counters
            .iter()
            .map(|(name, n)| format!("\"{}\": {n}", escape(name)))
            .collect();
        out.push_str(&counters.join(", "));
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"jobs\": {{\"accepted\": {}, \"completed\": {}, \"failed\": {}, \"rejected\": {}}},\n",
            m.counter(names::SERVE_ACCEPTED),
            m.counter(names::SERVE_COMPLETED),
            m.counter(names::SERVE_FAILED),
            m.counter(names::SERVE_REJECTED)
        ));
        out.push_str(&format!(
            "  \"queue\": {{\"capacity\": {}, \"depth\": {}, \"workers\": {}}}\n",
            self.queue.capacity(),
            self.queue.depth(),
            self.workers
        ));
        out.push('}');
        out
    }
}

/// A running daemon: the bound address plus the threads to join on
/// shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flags the daemon to stop accepting; does not wait.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the daemon has shut down (via `POST /shutdown`,
    /// SIGTERM/SIGINT, or [`ServerHandle::request_shutdown`]) and every
    /// queued job has drained.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Only a zero-worker configuration leaves jobs behind; tell their
        // clients the truth rather than hanging up silently.
        for mut job in self.shared.queue.drain_remaining() {
            let _ = respond_error(&mut job.stream, 503, "Service Unavailable", "draining");
        }
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

/// Binds, spawns the acceptor and worker threads, and returns immediately.
///
/// # Errors
///
/// Returns the bind/open error when the address or cache directory is
/// unusable.
pub fn serve(config: &ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let store = match &config.cache_dir {
        Some(dir) => Some(Arc::new(Store::open(dir)?)),
        None => None,
    };
    let workers = config.workers.unwrap_or_else(|| host_parallelism().min(4));
    let shared = Arc::new(Shared {
        store,
        recorder: Recorder::new(),
        queue: JobQueue::new(config.queue_cap),
        workers,
        backend: config.backend,
        job_threads: (host_parallelism() / workers.max(1)).max(1),
        shutdown: AtomicBool::new(false),
    });

    // A failed spawn (thread limits, OOM) is a startup error the caller
    // can report, not a panic. Already-started workers are shut down
    // cleanly before the error propagates.
    let mut worker_handles: Vec<JoinHandle<()>> = Vec::with_capacity(workers);
    for i in 0..workers {
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        };
        match worker {
            Ok(handle) => worker_handles.push(handle),
            Err(e) => {
                shared.queue.close();
                for handle in worker_handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }
    let acceptor = {
        let acceptor_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &acceptor_shared));
        match spawned {
            Ok(handle) => handle,
            Err(e) => {
                shared.queue.close();
                for handle in worker_handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

/// Installs SIGTERM/SIGINT handlers that flag a graceful drain, then runs
/// the daemon in the foreground. `on_ready` is called once with the bound
/// address (the CLI prints the URL from it).
///
/// # Errors
///
/// Propagates [`serve`]'s bind errors.
pub fn run(config: &ServeConfig, on_ready: impl FnOnce(SocketAddr)) -> io::Result<()> {
    signals::install();
    let handle = serve(config)?;
    on_ready(handle.addr());
    handle.wait();
    Ok(())
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || signals::terminated() {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept failures (EMFILE, aborted handshake):
            // back off and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads one request and either answers it inline (health, metrics,
/// shutdown, every error) or enqueues it for a worker.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(Ok(request)) => request,
        Ok(Err(ParseError(msg))) => {
            let _ = respond_error(&mut stream, 400, "Bad Request", msg);
            return;
        }
        Err(_) => return, // dead socket: nothing to answer
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = respond_json(&mut stream, 200, "OK", b"{\"status\": \"ok\"}");
        }
        ("GET", "/metrics") => {
            let body = shared.metrics_json();
            let _ = respond_json(&mut stream, 200, "OK", body.as_bytes());
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = respond_json(&mut stream, 200, "OK", b"{\"status\": \"draining\"}");
        }
        ("POST", "/compact" | "/compact-stl" | "/analyze" | "/lint") => {
            enqueue_job(stream, &request, shared);
        }
        _ => {
            let _ = respond_error(&mut stream, 404, "Not Found", "unknown endpoint");
        }
    }
}

fn enqueue_job(mut stream: TcpStream, request: &Request, shared: &Arc<Shared>) {
    let spec = match parse_job(request, shared) {
        Ok(spec) => spec,
        Err(msg) => {
            let _ = respond_error(&mut stream, 400, "Bad Request", &msg);
            return;
        }
    };
    let job = Job {
        spec,
        raw_report: request.query_is("format", "report"),
        stream,
    };
    match shared.queue.try_push(job) {
        Ok(()) => shared.recorder.add(names::SERVE_ACCEPTED, 1),
        Err((mut job, PushRejection::Full)) => {
            shared.recorder.add(names::SERVE_REJECTED, 1);
            let _ = write_response(
                &mut job.stream,
                429,
                "Too Many Requests",
                &[("Retry-After", "1")],
                "application/json",
                b"{\"error\": \"job queue is full\"}",
            );
        }
        Err((mut job, PushRejection::Draining)) => {
            let _ = respond_error(&mut job.stream, 503, "Service Unavailable", "draining");
        }
    }
}

/// Validates one job request body into a [`JobSpec`]; the error string is
/// the 400 response's message.
fn parse_job(request: &Request, shared: &Shared) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(&request.body).map_err(|_| "body is not UTF-8".to_string())?;
    let body = parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let field = |name: &str| -> Result<String, String> {
        body.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{name}`"))
    };
    match request.path.as_str() {
        "/compact" => Ok(JobSpec::Compact {
            ptp: field("ptp")?,
            opts: parse_options(&body, shared)?,
        }),
        "/compact-stl" => Ok(JobSpec::CompactStl {
            stl: field("stl")?,
            opts: parse_options(&body, shared)?,
        }),
        "/analyze" => Ok(JobSpec::Analyze {
            module: field("module")?,
            lanes: match body.get("lanes") {
                None => 0,
                Some(v) => v
                    .as_count()
                    .ok_or_else(|| "`lanes` must be a non-negative integer".to_string())?,
            },
        }),
        "/lint" => Ok(JobSpec::Lint { ptp: field("ptp")? }),
        other => Err(format!("unknown job endpoint `{other}`")),
    }
}

/// The optional `options` object: every field defaults to the server's
/// own configuration, so a bare `{"ptp": ...}` body means "the CLI's
/// defaults".
fn parse_options(body: &Json, shared: &Shared) -> Result<JobOptions, String> {
    let mut opts = JobOptions {
        backend: shared.backend,
        threads: shared.job_threads,
        ..JobOptions::default()
    };
    let Some(options) = body.get("options") else {
        return Ok(opts);
    };
    if !matches!(options, Json::Obj(_)) {
        return Err("`options` must be an object".to_string());
    }
    let flag = |name: &str, default: bool| -> Result<bool, String> {
        match options.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("`options.{name}` must be a boolean")),
        }
    };
    opts.reverse = flag("reverse", opts.reverse)?;
    opts.respect_arc = flag("respect_arc", opts.respect_arc)?;
    opts.prune = flag("prune", opts.prune)?;
    opts.drop_detected = flag("drop_detected", opts.drop_detected)?;
    if let Some(v) = options.get("lanes") {
        opts.lanes = v
            .as_count()
            .ok_or_else(|| "`options.lanes` must be a non-negative integer".to_string())?;
    }
    if let Some(v) = options.get("fault_model") {
        let name = v
            .as_str()
            .ok_or_else(|| "`options.fault_model` must be a string".to_string())?;
        opts.fault_model = FaultModel::parse(name)
            .ok_or_else(|| format!("unknown fault model `{name}` (stuck-at|bridging)"))?;
    }
    if let Some(v) = options.get("backend") {
        let name = v
            .as_str()
            .ok_or_else(|| "`options.backend` must be a string".to_string())?;
        opts.backend = SimBackend::parse(name)
            .ok_or_else(|| format!("unknown backend `{name}` (auto|event|kernel|kernel64)"))?;
    }
    if let Some(v) = options.get("threads") {
        opts.threads = v
            .as_count()
            .ok_or_else(|| "`options.threads` must be a non-negative integer".to_string())?;
    }
    Ok(opts)
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(mut job) = shared.queue.pop() {
        // Per-job recorder: counters fold into the daemon's metrics, the
        // job's spans die with it (a long-running daemon must not hoard
        // every span it ever recorded).
        let job_rec = Arc::new(Recorder::new());
        let result = execute(&job.spec, job.raw_report, shared, &job_rec);
        shared.absorb_job_counters(&job_rec);
        match result {
            Ok(body) => {
                shared.recorder.add(names::SERVE_COMPLETED, 1);
                let _ = respond_json(&mut job.stream, 200, "OK", body.as_bytes());
            }
            Err(JobError::BadRequest(msg)) => {
                shared.recorder.add(names::SERVE_FAILED, 1);
                let _ = respond_error(&mut job.stream, 400, "Bad Request", &msg);
            }
            Err(JobError::Failed(msg)) => {
                shared.recorder.add(names::SERVE_FAILED, 1);
                let _ = respond_error(&mut job.stream, 422, "Unprocessable Entity", &msg);
            }
        }
    }
}

/// Runs one job to its response body. With `raw_report` the body is the
/// report JSON **byte-identical** to the CLI's `--json` output; otherwise
/// it is an envelope that embeds the same report verbatim.
fn execute(
    spec: &JobSpec,
    raw_report: bool,
    shared: &Shared,
    job_rec: &Arc<Recorder>,
) -> Result<String, JobError> {
    let store = shared.store.clone();
    let obs = Some(Arc::clone(job_rec));
    match spec {
        JobSpec::Compact { ptp, opts } => {
            let out = compact_job(ptp, opts, store, obs)?;
            Ok(if raw_report {
                out.report_json
            } else {
                format!(
                    "{{\n\"compacted\": \"{}\",\n\"report\": {}\n}}",
                    escape(&out.compacted),
                    out.report_json
                )
            })
        }
        JobSpec::CompactStl { stl, opts } => {
            let out = compact_stl_job(stl, opts, store, obs)?;
            Ok(if raw_report {
                out.report_json
            } else {
                format!(
                    "{{\n\"compacted\": \"{}\",\n\"reports\": {}}}",
                    escape(&out.compacted),
                    out.report_json
                )
            })
        }
        JobSpec::Analyze { module, lanes } => {
            let out = analyze_job(module, *lanes)?;
            Ok(if raw_report {
                out.report_json
            } else {
                format!(
                    "{{\n\"clean\": {},\n\"report\": {}\n}}",
                    out.clean, out.report_json
                )
            })
        }
        JobSpec::Lint { ptp } => {
            let out = lint_job(ptp)?;
            Ok(if raw_report {
                out.report_json
            } else {
                format!(
                    "{{\n\"clean\": {},\n\"report\": {}\n}}",
                    out.clean, out.report_json
                )
            })
        }
    }
}

fn respond_json(stream: &mut TcpStream, status: u16, reason: &str, body: &[u8]) -> io::Result<()> {
    write_response(stream, status, reason, &[], "application/json", body)
}

fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, msg: &str) -> io::Result<()> {
    let body = format!("{{\"error\": \"{}\"}}", escape(msg));
    respond_json(stream, status, reason, body.as_bytes())
}

#[cfg(unix)]
mod signals {
    // The raw std atomic, not the warpstl-sync wrapper: a signal handler
    // may only do async-signal-safe work, and the wrapper's model-checker
    // hook (thread-locals, a mutex) is not.
    // xlint: allow(raw-sync)
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: set the flag the accept loop
        // polls.
        TERMINATE.store(true, Ordering::SeqCst);
    }

    /// Installs SIGTERM and SIGINT handlers via the raw `signal(2)`
    /// symbol — the build is dependency-light, so no libc crate.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        // SAFETY: `signal(2)` is in every libc the build targets; the
        // handler address is a valid `extern "C" fn(i32)` for the
        // process's lifetime, and the handler body only performs the
        // async-signal-safe atomic store above. Replacing a prior
        // disposition is the intended effect.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn terminated() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn terminated() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rejects_beyond_capacity_and_drains_in_order() {
        // TcpStream-free queue logic is exercised through the public
        // protocol tests and the model-checker suite in tests/model.rs;
        // here we only pin the capacity arithmetic.
        let queue: JobQueue<Job> = JobQueue::new(2);
        assert_eq!(queue.depth(), 0);
        queue.close();
        assert!(queue.pop().is_none());
    }

    #[test]
    fn default_config_resolves_workers_and_budget() {
        let config = ServeConfig::default();
        let workers = config.workers.unwrap_or_else(|| host_parallelism().min(4));
        assert!(workers >= 1);
        let per_job = (host_parallelism() / workers.max(1)).max(1);
        // The pool's total engine-thread budget never exceeds the host
        // (modulo the at-least-one floor on tiny hosts).
        assert!(per_job * workers <= host_parallelism().max(workers));
    }
}
