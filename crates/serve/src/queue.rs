//! The bounded MPMC job queue, generic over the item so its shutdown
//! protocol can be model-checked (`tests/model.rs` proves the PR-8
//! invariants — no lost or duplicated jobs, close-then-drain leaves
//! exactly the unpopped remainder — over `JobQueue<u32>`, since the real
//! item type carries a `TcpStream`).
//!
//! Mutex + condvar rather than a channel: `std` has no channel with
//! `try_send` + bounded capacity + multi-consumer semantics, and the
//! primitives come from `warpstl-sync` so every acquisition and wait is an
//! interleaving point under `cfg(warpstl_model)`.

use std::collections::VecDeque;

use warpstl_sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejection {
    /// The queue is at capacity; the caller should answer `429`.
    Full,
    /// The queue is closed for shutdown; the caller should answer `503`.
    Draining,
}

/// The bounded multi-producer multi-consumer queue behind the daemon.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `cap` items.
    #[must_use]
    pub fn new(cap: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// The capacity the queue was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Nonblocking enqueue; hands the item back on rejection so the
    /// caller can still answer on its connection.
    ///
    /// # Errors
    ///
    /// [`PushRejection::Draining`] once closed, [`PushRejection::Full`] at
    /// capacity — in that precedence order.
    pub fn try_push(&self, job: T) -> Result<(), (T, PushRejection)> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err((job, PushRejection::Draining));
        }
        if inner.jobs.len() >= self.cap {
            return Err((job, PushRejection::Full));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue; `None` once the queue is closed *and* drained —
    /// the worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner);
        }
    }

    /// Closes the queue: pushes start failing with
    /// [`PushRejection::Draining`] and blocked poppers wake, finish the
    /// backlog, and exit.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting (diagnostic; stale by the time it returns).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().jobs.len()
    }

    /// Steals whatever is left (used after the workers have exited; only
    /// a zero-worker configuration leaves anything).
    pub fn drain_remaining(&self) -> Vec<T> {
        self.inner.lock().jobs.drain(..).collect()
    }
}
