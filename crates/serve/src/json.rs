//! A minimal JSON reader/escaper for the serve request protocol.
//!
//! The build has no serde (the toolkit is dependency-light by policy), and
//! the *output* side of the protocol never needs a serializer — responses
//! are assembled from report JSON the core crates already produce
//! deterministically, plus [`escape`]d strings. Only the *input* side
//! needs real parsing, and request bodies are small flat objects, so a
//! recursive-descent reader over bytes is the whole story.
//!
//! The reader is strict where the protocol cares (structure, string
//! escapes, UTF-16 surrogate pairs) and simple where it does not: numbers
//! are parsed as `f64` (request bodies only carry small counts and
//! booleans), and duplicate keys keep the last occurrence, matching every
//! mainstream parser.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (request bodies only carry small integral values).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; sorted keys, last duplicate wins.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access; `None` on non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a count, if this is a non-negative integral
    /// number.
    pub fn as_count(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1e15 => Some(*n as usize),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A short human-readable message naming the first offending byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

/// Escapes `s` as the *contents* of a JSON string literal (quotes not
/// included): the two mandatory escapes, the common short forms, and
/// `\u00XX` for remaining control bytes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting. Request bodies are flat objects a couple of
/// levels deep; the bound exists so a hostile `[[[[...` body is a `400`,
/// not a recursion-driven stack overflow of the acceptor thread.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn nested(&mut self, inner: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        let value = inner(self);
        self.depth -= 1;
        value
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        // The matched bytes are all ASCII, but degrade to the same parse
        // error rather than asserting about untrusted input.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str so boundaries are valid, but treat any slip as
                    // a parse error, never a panic on request bytes.
                    let c = std::str::from_utf8(&self.bytes[self.pos..])
                        .ok()
                        .and_then(|rest| rest.chars().next())
                        .ok_or_else(|| format!("invalid UTF-8 in string at byte {}", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(chunk).map_err(|_| "non-ASCII \\u escape".to_string())?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape at {}", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate must follow.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("unpaired high surrogate".into());
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".into());
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| "invalid surrogate pair".into())
        } else if (0xDC00..0xE000).contains(&hi) {
            Err("unpaired low surrogate".into())
        } else {
            char::from_u32(hi).ok_or_else(|| "invalid \\u escape".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shaped_objects() {
        let v =
            parse(r#"{"ptp": "L0: EXIT;\n", "options": {"reverse": true, "threads": 2}}"#).unwrap();
        assert_eq!(v.get("ptp").unwrap().as_str(), Some("L0: EXIT;\n"));
        let opts = v.get("options").unwrap();
        assert_eq!(opts.get("reverse").unwrap().as_bool(), Some(true));
        assert_eq!(opts.get("threads").unwrap().as_count(), Some(2));
        assert_eq!(opts.get("absent"), None);
    }

    #[test]
    fn parses_scalars_arrays_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse(r#"[1, [2], {"k": []}]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj([("k".to_string(), Json::Arr(vec![]))].into()),
            ])
        );
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{0001} ünïcode 🚀";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_and_bmp_escapes_decode() {
        assert_eq!(parse(r#""Aé🚀""#).unwrap().as_str(), Some("Aé🚀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected_with_positions() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "{} trailing",
            "1e",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn nesting_is_bounded_not_stack_overflowed() {
        // At the bound: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // One past the bound: a parse error naming the limit.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&deep).expect_err("over-deep document must be rejected");
        assert!(err.contains("nesting deeper"), "unexpected error: {err}");
        // A hostile unclosed ramp must error cleanly, not overflow the
        // stack (this is the acceptor-thread DoS the bound exists for).
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"k\":".repeat(100_000)).is_err());
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_count(), Some(2));
    }
}
