//! Operand types: registers, predicates, special registers and memory
//! references.

use std::fmt;

/// A general-purpose register `R0`–`R63` of a thread's slice of the GPRF.
///
/// # Examples
///
/// ```
/// use warpstl_isa::Reg;
///
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "R5");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The number of architectural registers per thread.
    pub const COUNT: u8 = 64;

    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(index < Reg::COUNT, "register index {index} out of range");
        Reg(index)
    }

    /// The register index.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A predicate register `P0`–`P3`, or the always-true pseudo-predicate `PT`.
///
/// # Examples
///
/// ```
/// use warpstl_isa::Pred;
///
/// assert_eq!(Pred::new(2).to_string(), "P2");
/// assert_eq!(Pred::TRUE.to_string(), "PT");
/// assert!(Pred::TRUE.is_true());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(u8);

impl Pred {
    /// The number of writable predicate registers per thread.
    pub const COUNT: u8 = 4;

    /// The always-true pseudo-predicate `PT`.
    pub const TRUE: Pred = Pred(7);

    /// Creates a predicate register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Pred::COUNT`.
    #[must_use]
    pub fn new(index: u8) -> Pred {
        assert!(index < Pred::COUNT, "predicate index {index} out of range");
        Pred(index)
    }

    /// The encoding index (`7` for `PT`).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the always-true pseudo-predicate.
    #[must_use]
    pub fn is_true(self) -> bool {
        self.0 == 7
    }

    /// Decodes from the 3-bit encoding field.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<Pred> {
        match bits {
            0..=3 => Some(Pred(bits)),
            7 => Some(Pred::TRUE),
            _ => None,
        }
    }
}

impl Default for Pred {
    fn default() -> Self {
        Pred::TRUE
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            f.write_str("PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// Special (read-only) registers exposed to kernels via `S2R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpecialReg {
    /// Thread index within the block (x dimension).
    TidX,
    /// Block index within the grid (x dimension).
    CtaIdX,
    /// Number of threads per block (x dimension).
    NTidX,
    /// Lane index within the warp.
    LaneId,
    /// Warp index within the block.
    WarpId,
}

impl SpecialReg {
    /// All special registers, in encoding order.
    pub const ALL: [SpecialReg; 5] = [
        SpecialReg::TidX,
        SpecialReg::CtaIdX,
        SpecialReg::NTidX,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
    ];

    /// The assembly name (`SR_TID_X`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID_X",
            SpecialReg::CtaIdX => "SR_CTAID_X",
            SpecialReg::NTidX => "SR_NTID_X",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
        }
    }

    /// Parses an assembly name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<SpecialReg> {
        SpecialReg::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// Decodes from the 4-bit encoding field.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<SpecialReg> {
        SpecialReg::ALL.get(bits as usize).copied()
    }

    /// The 4-bit encoding field.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The memory space addressed by a load/store opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// Off-chip global memory.
    Global,
    /// Per-block shared memory.
    Shared,
    /// Read-only constant memory.
    Constant,
    /// Per-thread local memory.
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Constant => "constant",
            MemSpace::Local => "local",
        };
        f.write_str(s)
    }
}

/// A register-plus-offset memory reference: `[Ra+0x10]`.
///
/// The memory space is implied by the opcode (`LDG` is global, `LDS` shared,
/// and so on), matching SASS.
///
/// # Examples
///
/// ```
/// use warpstl_isa::{MemRef, Reg};
///
/// let m = MemRef::new(Reg::new(4), 0x10);
/// assert_eq!(m.to_string(), "[R4+0x10]");
/// assert_eq!(MemRef::new(Reg::new(0), 0).to_string(), "[R0]");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemRef {
    /// Base address register.
    pub base: Reg,
    /// Byte offset added to the base (16-bit unsigned in the encoding).
    pub offset: u16,
}

impl MemRef {
    /// Creates a memory reference.
    #[must_use]
    pub fn new(base: Reg, offset: u16) -> MemRef {
        MemRef { base, offset }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else {
            write!(f, "[{}+{:#x}]", self.base, self.offset)
        }
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcOperand {
    /// A general-purpose register.
    Reg(Reg),
    /// An immediate value (32-bit in `*32I` formats, 16-bit sign-extended
    /// otherwise).
    Imm(i32),
    /// A special register (only with `S2R`).
    Special(SpecialReg),
    /// A memory reference (only with loads; stores put the reference first).
    Mem(MemRef),
    /// A predicate register (only with `SEL`).
    Pred(crate::Pred),
}

impl fmt::Display for SrcOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrcOperand::Reg(r) => r.fmt(f),
            SrcOperand::Imm(v) => {
                if *v < 0 {
                    write!(f, "-{:#x}", (*v as i64).unsigned_abs())
                } else {
                    write!(f, "{v:#x}")
                }
            }
            SrcOperand::Special(s) => s.fmt(f),
            SrcOperand::Mem(m) => m.fmt(f),
            SrcOperand::Pred(p) => p.fmt(f),
        }
    }
}

impl From<Reg> for SrcOperand {
    fn from(r: Reg) -> Self {
        SrcOperand::Reg(r)
    }
}

impl From<MemRef> for SrcOperand {
    fn from(m: MemRef) -> Self {
        SrcOperand::Mem(m)
    }
}

impl From<SpecialReg> for SrcOperand {
    fn from(s: SpecialReg) -> Self {
        SrcOperand::Special(s)
    }
}

impl From<i32> for SrcOperand {
    fn from(v: i32) -> Self {
        SrcOperand::Imm(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_bounds() {
        assert_eq!(Reg::new(0).to_string(), "R0");
        assert_eq!(Reg::new(63).to_string(), "R63");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(64);
    }

    #[test]
    fn pred_bits_round_trip() {
        for i in 0..Pred::COUNT {
            let p = Pred::new(i);
            assert_eq!(Pred::from_bits(p.index()), Some(p));
            assert!(!p.is_true());
        }
        assert_eq!(Pred::from_bits(7), Some(Pred::TRUE));
        assert_eq!(Pred::from_bits(4), None);
        assert_eq!(Pred::default(), Pred::TRUE);
    }

    #[test]
    fn special_reg_names_round_trip() {
        for &sr in &SpecialReg::ALL {
            assert_eq!(SpecialReg::from_name(sr.name()), Some(sr));
            assert_eq!(SpecialReg::from_bits(sr.to_bits()), Some(sr));
        }
        assert_eq!(SpecialReg::from_name("SR_BOGUS"), None);
    }

    #[test]
    fn memref_display() {
        let m = MemRef::new(Reg::new(2), 0);
        assert_eq!(m.to_string(), "[R2]");
        let m = MemRef::new(Reg::new(2), 0x20);
        assert_eq!(m.to_string(), "[R2+0x20]");
    }

    #[test]
    fn src_operand_display() {
        assert_eq!(SrcOperand::from(Reg::new(1)).to_string(), "R1");
        assert_eq!(SrcOperand::Imm(255).to_string(), "0xff");
        assert_eq!(SrcOperand::Imm(-16).to_string(), "-0x10");
        assert_eq!(SrcOperand::Imm(i32::MIN).to_string(), "-0x80000000");
        assert_eq!(
            SrcOperand::Special(SpecialReg::TidX).to_string(),
            "SR_TID_X"
        );
    }
}
