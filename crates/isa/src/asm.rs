//! Text assembler and disassembler.
//!
//! The syntax mirrors the SASS listings of the paper's PTPs:
//!
//! ```text
//! // comments run to end of line
//! entry:  S2R R0, SR_TID_X;        // labels end with ':'
//!         SHL R1, R0, 0x2;
//!         LDG R2, [R1+0x100];
//! @P0     IADD R3, R3, R2;         // '@P0' / '@!P1' guard prefixes
//!         ISETP.LT P0, R3, R4;     // '.' modifiers
//!         BRA entry;               // label operands
//!         EXIT;
//! ```
//!
//! Statements are terminated by `;` or end of line. Immediate literals accept
//! decimal and `0x` hexadecimal, with an optional leading `-`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{
    CmpOp, Guard, Instruction, MemRef, Opcode, ParseAsmError, Pred, Reg, SpecialReg, SrcOperand,
};

/// Assembles a program from source text.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] carrying the 1-based line number of the first
/// syntax error, unknown mnemonic, undefined label, or operand-shape
/// mismatch.
///
/// # Examples
///
/// ```
/// use warpstl_isa::asm;
///
/// let p = asm::assemble("top: IADD R1, R1, 0x1; BRA top;")?;
/// assert_eq!(p[1].target(), Some(0));
/// # Ok::<(), warpstl_isa::ParseAsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instruction>, ParseAsmError> {
    let statements = split_statements(source);

    // First pass: map labels to instruction indices.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut index = 0usize;
    for stmt in &statements {
        let mut body = stmt.text.as_str();
        while let Some((label, rest)) = take_label(body) {
            if labels.insert(label.to_string(), index).is_some() {
                return Err(ParseAsmError::new(
                    stmt.line,
                    format!("duplicate label `{label}`"),
                ));
            }
            body = rest;
        }
        if !body.trim().is_empty() {
            index += 1;
        }
    }

    // Second pass: parse instructions.
    let mut program = Vec::with_capacity(index);
    for stmt in &statements {
        let mut body = stmt.text.as_str();
        while let Some((_, rest)) = take_label(body) {
            body = rest;
        }
        let body = body.trim();
        if body.is_empty() {
            continue;
        }
        let instr = parse_instruction(body, &labels).map_err(|e| e.at_line(stmt.line))?;
        program.push(instr);
    }
    Ok(program)
}

/// Disassembles a program into source text, synthesizing `L<n>:` labels at
/// branch/`SSY`/`CAL` targets.
///
/// The output re-assembles to an identical program.
///
/// # Examples
///
/// ```
/// use warpstl_isa::asm;
///
/// let p = asm::assemble("top: IADD R1, R1, 0x1; BRA top; EXIT;")?;
/// let text = asm::disassemble(&p);
/// assert_eq!(asm::assemble(&text)?, p);
/// # Ok::<(), warpstl_isa::ParseAsmError>(())
/// ```
#[must_use]
pub fn disassemble(program: &[Instruction]) -> String {
    // Collect branch targets in program order and name them L0, L1, ...
    let mut targets: Vec<usize> = program.iter().filter_map(Instruction::target).collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of: HashMap<usize, String> = targets
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, format!("L{i}")))
        .collect();

    let mut out = String::new();
    for (pc, instr) in program.iter().enumerate() {
        if let Some(l) = label_of.get(&pc) {
            let _ = write!(out, "{l}:");
        }
        out.push('\t');
        if let Some(t) = instr.target() {
            // Render with the label in place of the numeric target.
            let mut text = instr.to_string();
            let numeric = format!("{:#x};", t);
            let with_label = format!(
                "{};",
                label_of
                    .get(&t)
                    .map(String::as_str)
                    .unwrap_or("L_out_of_range")
            );
            if let Some(pos) = text.rfind(&numeric) {
                text.replace_range(pos.., &with_label);
            }
            out.push_str(&text);
        } else {
            let _ = write!(out, "{instr}");
        }
        out.push('\n');
    }
    // Trailing labels that point one past the end (used by SSY to the join
    // point after the last instruction).
    if let Some(l) = label_of.get(&program.len()) {
        let _ = writeln!(out, "{l}:");
    }
    out
}

struct Statement {
    line: usize,
    text: String,
}

/// Splits source into statements: comments stripped, `;` and newlines both
/// terminate a statement, line numbers preserved.
fn split_statements(source: &str) -> Vec<Statement> {
    let mut out = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw.find("//").or_else(|| raw.find('#')) {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        for piece in code.split(';') {
            if !piece.trim().is_empty() {
                out.push(Statement {
                    line,
                    text: piece.trim().to_string(),
                });
            }
        }
    }
    out
}

/// If `body` begins with `ident:`, returns the label and the remainder.
fn take_label(body: &str) -> Option<(&str, &str)> {
    let trimmed = body.trim_start();
    let colon = trimmed.find(':')?;
    let candidate = &trimmed[..colon];
    if !candidate.is_empty()
        && candidate
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        && candidate
            .chars()
            .next()
            .is_some_and(|c| !c.is_ascii_digit())
    {
        Some((candidate, &trimmed[colon + 1..]))
    } else {
        None
    }
}

fn parse_instruction(
    body: &str,
    labels: &HashMap<String, usize>,
) -> Result<Instruction, ParseAsmError> {
    let err = |msg: String| ParseAsmError::new(0, msg);
    let mut rest = body.trim();

    // Guard prefix.
    let mut guard = Guard::default();
    if let Some(after) = rest.strip_prefix('@') {
        let (negate, after) = match after.strip_prefix('!') {
            Some(a) => (true, a),
            None => (false, after),
        };
        let end = after
            .find(|c: char| c.is_whitespace())
            .ok_or_else(|| err("guard predicate without instruction".into()))?;
        let pred = parse_pred(&after[..end])?;
        guard = Guard { pred, negate };
        rest = after[end..].trim_start();
    }

    // Mnemonic and optional '.' modifier.
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    let mnemonic_full = &rest[..end];
    rest = rest[end..].trim();
    let (mnemonic, modifier) = match mnemonic_full.split_once('.') {
        Some((m, suffix)) => (m, Some(suffix)),
        None => (mnemonic_full, None),
    };
    let opcode = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| err(format!("unknown mnemonic `{mnemonic}`")))?;
    let cmp = match modifier {
        Some(s) => Some(
            CmpOp::ALL
                .iter()
                .copied()
                .find(|c| c.mnemonic() == s)
                .ok_or_else(|| err(format!("unknown modifier `.{s}`")))?,
        ),
        None => None,
    };

    // Operands.
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let mut builder = Instruction::build(opcode).guard(guard);
    if let Some(c) = cmp {
        builder = builder.cmp(c);
    }

    let mut ops = operands.iter().peekable();
    // Destination: predicate for ISETP/FSETP, register otherwise (stores and
    // control flow have none).
    if opcode.writes_predicate() {
        let d = ops
            .next()
            .ok_or_else(|| err(format!("{opcode}: missing predicate destination")))?;
        builder = builder.pdst(parse_pred(d)?);
    } else if !(opcode.is_store() || opcode.is_control_flow() || opcode == Opcode::Nop) {
        let d = ops
            .next()
            .ok_or_else(|| err(format!("{opcode}: missing destination")))?;
        builder = builder.dst(parse_reg(d)?);
    }

    for op in ops {
        builder = builder.src(parse_src(op, opcode, labels)?);
    }
    builder.finish()
}

fn parse_reg(s: &str) -> Result<Reg, ParseAsmError> {
    let idx = s
        .strip_prefix('R')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < Reg::COUNT)
        .ok_or_else(|| ParseAsmError::new(0, format!("invalid register `{s}`")))?;
    Ok(Reg::new(idx))
}

fn parse_pred(s: &str) -> Result<Pred, ParseAsmError> {
    if s == "PT" {
        return Ok(Pred::TRUE);
    }
    let idx = s
        .strip_prefix('P')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < Pred::COUNT)
        .ok_or_else(|| ParseAsmError::new(0, format!("invalid predicate `{s}`")))?;
    Ok(Pred::new(idx))
}

fn parse_imm(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_src(
    s: &str,
    opcode: Opcode,
    labels: &HashMap<String, usize>,
) -> Result<SrcOperand, ParseAsmError> {
    let err = |msg: String| ParseAsmError::new(0, msg);
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(format!("unterminated memory operand `{s}`")))?;
        let (base_s, off_s) = match inner.split_once('+') {
            Some((b, o)) => (b.trim(), Some(o.trim())),
            None => (inner.trim(), None),
        };
        let base = parse_reg(base_s)?;
        let offset = match off_s {
            Some(o) => {
                u16::try_from(parse_imm(o).ok_or_else(|| err(format!("invalid offset `{o}`")))?)
                    .map_err(|_| err(format!("offset `{o}` exceeds 16 bits")))?
            }
            None => 0,
        };
        return Ok(SrcOperand::Mem(MemRef::new(base, offset)));
    }
    if s.starts_with('R') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        return Ok(SrcOperand::Reg(parse_reg(s)?));
    }
    if s == "PT" || (s.starts_with('P') && s[1..].chars().all(|c| c.is_ascii_digit())) {
        return Ok(SrcOperand::Pred(parse_pred(s)?));
    }
    if let Some(sr) = SpecialReg::from_name(s) {
        return Ok(SrcOperand::Special(sr));
    }
    if let Some(v) = parse_imm(s) {
        let v32 = i32::try_from(v)
            .or_else(|_| u32::try_from(v).map(|u| u as i32))
            .map_err(|_| err(format!("immediate `{s}` exceeds 32 bits")))?;
        return Ok(SrcOperand::Imm(v32));
    }
    if opcode.has_target() {
        if let Some(&target) = labels.get(s) {
            return Ok(SrcOperand::Imm(target as u32 as i32));
        }
        return Err(err(format!("undefined label `{s}`")));
    }
    Err(err(format!("unrecognized operand `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_resolves_labels_forward_and_backward() {
        let p = assemble(
            "start: ISETP.LT P0, R0, R1;\n\
             @P0 BRA done;\n\
             IADD R0, R0, 0x1;\n\
             BRA start;\n\
             done: EXIT;",
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[1].target(), Some(4));
        assert_eq!(p[3].target(), Some(0));
    }

    #[test]
    fn semicolons_and_newlines_both_terminate() {
        let a = assemble("NOP; NOP; EXIT;").unwrap();
        let b = assemble("NOP\nNOP\nEXIT").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn comments_are_ignored() {
        let p = assemble("NOP; // trailing\n# whole line\nEXIT; // done").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("NOP;\nFROB R1;\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = assemble("NOP;\nNOP;\nBRA nowhere;").unwrap_err();
        assert_eq!(e.line(), 3);
        assert!(e.to_string().contains("undefined label"));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let e = assemble("a: NOP;\na: EXIT;").unwrap_err();
        assert!(e.to_string().contains("duplicate label"));
    }

    #[test]
    fn guards_parse() {
        let p = assemble("@P1 IADD R0, R0, R1;\n@!P0 MOV R2, R3;").unwrap();
        assert_eq!(p[0].guard, Guard::on(Pred::new(1)));
        assert_eq!(p[1].guard, Guard::negated(Pred::new(0)));
    }

    #[test]
    fn memory_operands_parse() {
        let p = assemble("LDG R1, [R2+0x20];\nSTS [R3], R4;\nLDC R5, [R0+16];").unwrap();
        assert_eq!(p[0].mem_ref().unwrap().offset, 0x20);
        assert_eq!(p[1].mem_ref().unwrap().offset, 0);
        assert_eq!(p[2].mem_ref().unwrap().offset, 16);
    }

    #[test]
    fn disassemble_round_trips() {
        let src = "start: S2R R0, SR_TID_X;\n\
             SHL R1, R0, 0x2;\n\
             LDG R2, [R1+0x100];\n\
             ISETP.GE P0, R2, R0;\n\
             @!P0 BRA start;\n\
             SSY end;\n\
             @P0 IADD R2, R2, 0x1;\n\
             SYNC;\n\
             STG [R1+0x200], R2;\n\
             EXIT;\n\
             end: NOP;";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        assert_eq!(assemble(&text).unwrap(), p);
    }

    #[test]
    fn disassemble_handles_target_past_end() {
        // SSY to the join point one past the last instruction.
        let p = assemble("SSY end;\nNOP;\nend:").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].target(), Some(2));
        let text = disassemble(&p);
        assert_eq!(assemble(&text).unwrap(), p);
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = assemble("IADD R0, R1, -0x10;\nMOV32I R2, 0xdeadbeef;").unwrap();
        assert_eq!(p[0].imm(), Some(-16));
        assert_eq!(p[1].imm(), Some(0xdeadbeefu32 as i32));
    }

    #[test]
    fn mov32i_accepts_decimal() {
        let p = assemble("MOV32I R0, 4294967295;").unwrap();
        assert_eq!(p[0].imm(), Some(-1));
    }
}
