#![warn(missing_docs)]
//! # warpstl-isa
//!
//! A SASS-like instruction set for the MiniGrip GPU model used throughout the
//! `warpstl` workspace. The ISA mirrors the subset supported by FlexGripPlus
//! (an open-source model of NVIDIA's G80 microarchitecture): roughly fifty
//! assembly instructions spanning integer, logic, floating-point, special
//! function, data movement, memory, and control-flow classes.
//!
//! The crate provides:
//!
//! - [`Opcode`] — the instruction mnemonics, grouped by [`OpClass`];
//! - [`Instruction`] — a fully decoded instruction (guard predicate, operands,
//!   comparison modifier);
//! - [`encoding`] — a fixed 64-bit binary encoding with lossless round-trip
//!   ([`encoding::encode`] / [`encoding::decode`]), the word format consumed
//!   by the gate-level Decoder Unit model;
//! - [`asm`] — a text assembler/disassembler with label support;
//! - [`InstrFormat`] and [`ExecUnit`] — the format and execution-unit
//!   classifications the compaction flow relies on (e.g. "all instruction
//!   formats using at least one immediate operand" for the IMM test program).
//!
//! # Examples
//!
//! ```
//! use warpstl_isa::{asm, encoding};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::assemble(
//!     "        MOV32I R1, 0x1234;\n\
//!      loop:   IADD R2, R2, R1;\n\
//!              ISETP.LT P0, R2, R3;\n\
//!      @P0     BRA loop;\n\
//!              EXIT;\n",
//! )?;
//! assert_eq!(program.len(), 5);
//!
//! // The binary encoding round-trips losslessly.
//! let word = encoding::encode(&program[1]);
//! assert_eq!(encoding::decode(word)?, program[1]);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod encoding;
mod error;
mod format;
mod instruction;
mod opcode;
mod operand;

pub use error::{DecodeError, ParseAsmError};
pub use format::{ExecUnit, InstrFormat, LatencyClass};
pub use instruction::{Guard, Instruction, InstructionBuilder};
pub use opcode::{CmpOp, OpClass, Opcode};
pub use operand::{MemRef, MemSpace, Pred, Reg, SpecialReg, SrcOperand};
