//! The 64-bit binary instruction encoding.
//!
//! This is the word format fetched by the SM front-end and decoded by the
//! gate-level Decoder Unit model; the compaction flow's gate-level tracing
//! captures these words (plus pipeline context) as the DU's test patterns.
//!
//! Layout (bit ranges inclusive):
//!
//! ```text
//! [63:58] opcode            [57:55] guard predicate   [54] guard negate
//! [53:48] dst GPR / pdst    [47:42] source A GPR      [41:36] source B GPR
//! [35:33] cmp modifier      [32]    short-imm flag
//! [31:0]  low word: imm32 | imm16/offset | rC | SEL pred | special reg | target
//! ```
//!
//! The low word's interpretation depends on the opcode, exactly as in real
//! SASS where formats share the instruction width.
//!
//! # Examples
//!
//! ```
//! use warpstl_isa::{encoding, Instruction, Opcode, Reg};
//!
//! let i = Instruction::build(Opcode::Mov32i)
//!     .dst(Reg::new(7))
//!     .src(0x1234_5678)
//!     .finish()?;
//! let word = encoding::encode(&i);
//! assert_eq!(word & 0xffff_ffff, 0x1234_5678);
//! assert_eq!(encoding::decode(word)?, i);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{
    CmpOp, DecodeError, Guard, Instruction, MemRef, Opcode, Pred, Reg, SpecialReg, SrcOperand,
};

const OPCODE_SHIFT: u32 = 58;
const GUARD_PRED_SHIFT: u32 = 55;
const GUARD_NEG_SHIFT: u32 = 54;
const DST_SHIFT: u32 = 48;
const SRC_A_SHIFT: u32 = 42;
const SRC_B_SHIFT: u32 = 36;
const CMP_SHIFT: u32 = 33;
const IMM_FLAG_SHIFT: u32 = 32;

/// Encodes an instruction into its 64-bit word.
///
/// The encoding is total for every instruction accepted by
/// [`Instruction::validate`]; [`decode`] inverts it exactly.
#[must_use]
pub fn encode(instr: &Instruction) -> u64 {
    let mut w: u64 = (instr.opcode.to_bits() as u64) << OPCODE_SHIFT;
    w |= (instr.guard.pred.index() as u64) << GUARD_PRED_SHIFT;
    w |= (instr.guard.negate as u64) << GUARD_NEG_SHIFT;
    if let Some(d) = instr.dst {
        w |= (d.index() as u64) << DST_SHIFT;
    }
    if let Some(p) = instr.pdst {
        w |= (p.index() as u64) << DST_SHIFT;
    }
    if let Some(c) = instr.cmp {
        w |= (c.to_bits() as u64) << CMP_SHIFT;
    }

    // rA and rB are the first two register fields in operand order (memory
    // references contribute their base register).
    let mut reg_fields = instr.srcs.iter().filter_map(|s| match s {
        SrcOperand::Reg(r) => Some(*r),
        SrcOperand::Mem(m) => Some(m.base),
        _ => None,
    });
    if let Some(ra) = reg_fields.next() {
        w |= (ra.index() as u64) << SRC_A_SHIFT;
    }
    if let Some(rb) = reg_fields.next() {
        w |= (rb.index() as u64) << SRC_B_SHIFT;
    }

    // The low word holds whichever auxiliary payload the format defines.
    let mut low: u32 = 0;
    for src in &instr.srcs {
        match src {
            SrcOperand::Reg(_) => {}
            SrcOperand::Imm(v) => {
                if instr.opcode.has_imm32() || instr.opcode.has_target() {
                    low = *v as u32;
                } else {
                    low = (*v as u32) & 0xffff;
                    w |= 1 << IMM_FLAG_SHIFT;
                }
            }
            SrcOperand::Special(sr) => low = sr.to_bits() as u32,
            SrcOperand::Mem(m) => low = m.offset as u32,
            SrcOperand::Pred(p) => low = p.index() as u32,
        }
    }
    // rC for three-register opcodes (IMAD/FFMA).
    if let [SrcOperand::Reg(_), SrcOperand::Reg(_), SrcOperand::Reg(rc)] = instr.srcs[..] {
        low = rc.index() as u32;
    }
    w | low as u64
}

/// Decodes a 64-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode, guard, or auxiliary fields hold
/// reserved values.
pub fn decode(word: u64) -> Result<Instruction, DecodeError> {
    let op_bits = ((word >> OPCODE_SHIFT) & 0x3f) as u8;
    let opcode = Opcode::from_bits(op_bits)
        .ok_or_else(|| DecodeError::new(word, format!("reserved opcode field {op_bits}")))?;
    let guard_pred = Pred::from_bits(((word >> GUARD_PRED_SHIFT) & 0x7) as u8)
        .ok_or_else(|| DecodeError::new(word, "reserved guard predicate"))?;
    let guard = Guard {
        pred: guard_pred,
        negate: (word >> GUARD_NEG_SHIFT) & 1 == 1,
    };
    let dst_field = ((word >> DST_SHIFT) & 0x3f) as u8;
    let ra = Reg::new(((word >> SRC_A_SHIFT) & 0x3f) as u8);
    let rb = Reg::new(((word >> SRC_B_SHIFT) & 0x3f) as u8);
    let cmp_bits = ((word >> CMP_SHIFT) & 0x7) as u8;
    let imm_flag = (word >> IMM_FLAG_SHIFT) & 1 == 1;
    let low = word as u32;

    let cmp = if opcode.has_cmp_modifier() {
        Some(
            CmpOp::from_bits(cmp_bits)
                .ok_or_else(|| DecodeError::new(word, "reserved cmp modifier"))?,
        )
    } else {
        None
    };
    let mut dst = None;
    let mut pdst = None;
    if opcode.writes_predicate() {
        pdst = Some(
            Pred::from_bits(dst_field & 0x7)
                .ok_or_else(|| DecodeError::new(word, "reserved predicate destination"))?,
        );
    }

    use Opcode::*;
    let imm16 = (low as u16) as i16 as i32;
    let srcs: Vec<SrcOperand> = match opcode {
        Nop | Exit | Ret | Bar | Sync => vec![],
        Bra | Ssy | Cal => vec![SrcOperand::Imm(low as i32)],
        Mov32i => vec![SrcOperand::Imm(low as i32)],
        Mov | Not | Iabs | I2f | F2i | F2f | I2i | Rcp | Rsq | Sin | Cos | Ex2 | Lg2 => {
            vec![SrcOperand::Reg(ra)]
        }
        S2r => {
            let sr = SpecialReg::from_bits((low & 0xf) as u8)
                .ok_or_else(|| DecodeError::new(word, "reserved special register"))?;
            vec![SrcOperand::Special(sr)]
        }
        Iadd32i | Imul32i | And32i | Or32i | Xor32i | Fadd32i | Fmul32i => {
            vec![SrcOperand::Reg(ra), SrcOperand::Imm(low as i32)]
        }
        Iadd | Isub | Imul | Imnmx | And | Or | Xor | Shl | Shr | Fadd | Fmul | Fmnmx | Iset
        | Fset | Isetp | Fsetp => {
            if imm_flag {
                vec![SrcOperand::Reg(ra), SrcOperand::Imm(imm16)]
            } else {
                vec![SrcOperand::Reg(ra), SrcOperand::Reg(rb)]
            }
        }
        Imad | Ffma => vec![
            SrcOperand::Reg(ra),
            SrcOperand::Reg(rb),
            SrcOperand::Reg(Reg::new((low & 0x3f) as u8)),
        ],
        Sel => {
            let p = Pred::from_bits((low & 0x7) as u8)
                .ok_or_else(|| DecodeError::new(word, "reserved SEL predicate"))?;
            vec![
                SrcOperand::Reg(ra),
                SrcOperand::Reg(rb),
                SrcOperand::Pred(p),
            ]
        }
        Ldg | Lds | Ldc | Ldl => {
            vec![SrcOperand::Mem(MemRef::new(ra, low as u16))]
        }
        Stg | Sts | Stl => vec![
            SrcOperand::Mem(MemRef::new(ra, low as u16)),
            SrcOperand::Reg(rb),
        ],
    };

    let needs_dst = !(opcode.is_store() || opcode.is_control_flow() || opcode.writes_predicate())
        && opcode != Nop;
    if needs_dst {
        dst = Some(Reg::new(dst_field));
    }

    let instr = Instruction {
        guard,
        opcode,
        cmp,
        dst,
        pdst,
        srcs,
    };
    instr
        .validate()
        .map_err(|e| DecodeError::new(word, e.to_string()))?;
    Ok(instr)
}

/// Encodes a whole program.
#[must_use]
pub fn encode_program(program: &[Instruction]) -> Vec<u64> {
    program.iter().map(encode).collect()
}

/// Decodes a whole program.
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered.
pub fn decode_program(words: &[u64]) -> Result<Vec<Instruction>, DecodeError> {
    words.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction;

    fn sample_programs() -> Vec<Instruction> {
        crate::asm::assemble(
            "        MOV32I R1, 0x80000001;\n\
                     S2R R0, SR_TID_X;\n\
                     IADD R2, R1, R0;\n\
                     IADD R2, R1, -0x10;\n\
                     IMAD R3, R1, R2, R0;\n\
                     ISETP.NE P2, R3, R0;\n\
             @!P2    BRA 0x8;\n\
                     SEL R4, R1, R2, P2;\n\
                     LDG R5, [R4+0x40];\n\
                     STS [R5], R3;\n\
                     RCP R6, R5;\n\
                     FFMA R7, R6, R5, R1;\n\
                     FSETP.GE P0, R7, R6;\n\
                     SSY 0xf;\n\
                     BAR;\n\
                     EXIT;",
        )
        .unwrap()
    }

    #[test]
    fn every_sample_round_trips() {
        for instr in sample_programs() {
            let word = encode(&instr);
            let back = decode(word).unwrap_or_else(|e| panic!("{instr}: {e}"));
            assert_eq!(back, instr, "word {word:#018x}");
        }
    }

    #[test]
    fn program_round_trips() {
        let prog = sample_programs();
        let words = encode_program(&prog);
        assert_eq!(decode_program(&words).unwrap(), prog);
    }

    #[test]
    fn reserved_opcode_is_rejected() {
        let word = 0x3fu64 << 58;
        assert!(decode(word).is_err());
    }

    #[test]
    fn reserved_guard_is_rejected() {
        // Opcode NOP with guard predicate field 5 (reserved).
        let nop = Instruction::bare(Opcode::Nop);
        let word = (encode(&nop) & !(0x7u64 << 55)) | (5u64 << 55);
        assert!(decode(word).is_err());
    }

    #[test]
    fn imm16_is_sign_extended() {
        let i = Instruction::build(Opcode::Iadd)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(-1)
            .finish()
            .unwrap();
        let back = decode(encode(&i)).unwrap();
        assert_eq!(back.imm(), Some(-1));
    }

    #[test]
    fn opcode_field_position_is_stable() {
        // The gate-level Decoder Unit depends on this bit position.
        let i = Instruction::bare(Opcode::Exit);
        assert_eq!((encode(&i) >> 58) & 0x3f, Opcode::Exit.to_bits() as u64);
    }
}
