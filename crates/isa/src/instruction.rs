//! The decoded instruction representation and its builder.

use std::fmt;

use crate::{CmpOp, MemRef, Opcode, ParseAsmError, Pred, Reg, SpecialReg, SrcOperand};

/// A guard predicate controlling whether a thread executes an instruction:
/// `@P0` or `@!P2`. The default guard is the always-true `PT`.
///
/// # Examples
///
/// ```
/// use warpstl_isa::{Guard, Pred};
///
/// assert!(Guard::default().is_always_true());
/// let g = Guard::negated(Pred::new(1));
/// assert_eq!(g.to_string(), "@!P1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register consulted.
    pub pred: Pred,
    /// Whether the predicate value is inverted.
    pub negate: bool,
}

impl Guard {
    /// A guard on `pred` being true.
    #[must_use]
    pub fn on(pred: Pred) -> Guard {
        Guard {
            pred,
            negate: false,
        }
    }

    /// A guard on `pred` being false.
    #[must_use]
    pub fn negated(pred: Pred) -> Guard {
        Guard { pred, negate: true }
    }

    /// Whether the guard always passes (`@PT`, the default).
    #[must_use]
    pub fn is_always_true(self) -> bool {
        self.pred.is_true() && !self.negate
    }

    /// Evaluates the guard given the value of the predicate register.
    #[must_use]
    pub fn passes(self, pred_value: bool) -> bool {
        let v = if self.pred.is_true() {
            true
        } else {
            pred_value
        };
        v != self.negate
    }
}

impl Default for Guard {
    fn default() -> Self {
        Guard::on(Pred::TRUE)
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// A single decoded MiniGrip instruction.
///
/// Construct instances with [`InstructionBuilder`] (via [`Instruction::build`])
/// or by parsing assembly text with [`crate::asm::assemble`]. The operand
/// shape is validated against the opcode on construction.
///
/// # Examples
///
/// ```
/// use warpstl_isa::{Instruction, Opcode, Reg};
///
/// let i = Instruction::build(Opcode::Iadd)
///     .dst(Reg::new(1))
///     .src(Reg::new(2))
///     .src(Reg::new(3))
///     .finish()?;
/// assert_eq!(i.to_string(), "IADD R1, R2, R3;");
/// # Ok::<(), warpstl_isa::ParseAsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Guard predicate (`@P0` prefix); `PT` when unguarded.
    pub guard: Guard,
    /// The operation.
    pub opcode: Opcode,
    /// Comparison modifier for `ISETP`/`ISET`/`IMNMX`/`FSETP`/`FSET`/`FMNMX`.
    pub cmp: Option<CmpOp>,
    /// GPR destination, if the opcode writes one.
    pub dst: Option<Reg>,
    /// Predicate destination (`ISETP`/`FSETP`).
    pub pdst: Option<Pred>,
    /// Source operands, in assembly order (stores put the memory reference
    /// first, matching SASS).
    pub srcs: Vec<SrcOperand>,
}

impl Instruction {
    /// Starts building an instruction for `opcode`.
    #[must_use]
    pub fn build(opcode: Opcode) -> InstructionBuilder {
        InstructionBuilder::new(opcode)
    }

    /// A bare instruction with no operands (`NOP`, `EXIT`, `RET`, `BAR`,
    /// `SYNC`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode requires operands.
    #[must_use]
    pub fn bare(opcode: Opcode) -> Instruction {
        Instruction::build(opcode)
            .finish()
            .expect("opcode requires operands")
    }

    /// The branch/call/SSY target (an absolute instruction index), if any.
    #[must_use]
    pub fn target(&self) -> Option<usize> {
        if !self.opcode.has_target() {
            return None;
        }
        match self.srcs.first() {
            Some(SrcOperand::Imm(v)) => Some(*v as u32 as usize),
            _ => None,
        }
    }

    /// Rewrites the branch/call/SSY target.
    ///
    /// # Panics
    ///
    /// Panics if the opcode does not carry a target.
    pub fn set_target(&mut self, target: usize) {
        assert!(self.opcode.has_target(), "{} has no target", self.opcode);
        self.srcs = vec![SrcOperand::Imm(target as u32 as i32)];
    }

    /// The registers read by this instruction, including the base registers
    /// of memory references and stored values.
    #[must_use]
    pub fn reads(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        for s in &self.srcs {
            match s {
                SrcOperand::Reg(r) => out.push(*r),
                SrcOperand::Mem(m) => out.push(m.base),
                _ => {}
            }
        }
        out
    }

    /// The GPR written, if any (stores and predicate-setters write none).
    #[must_use]
    pub fn writes(&self) -> Option<Reg> {
        self.dst
    }

    /// The predicate registers read (guard plus `SEL` selector).
    #[must_use]
    pub fn reads_preds(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        if !self.guard.pred.is_true() {
            out.push(self.guard.pred);
        }
        for s in &self.srcs {
            if let SrcOperand::Pred(p) = s {
                if !p.is_true() {
                    out.push(*p);
                }
            }
        }
        out
    }

    /// The memory reference, if the opcode is a load or store.
    #[must_use]
    pub fn mem_ref(&self) -> Option<MemRef> {
        self.srcs.iter().find_map(|s| match s {
            SrcOperand::Mem(m) => Some(*m),
            _ => None,
        })
    }

    /// The immediate operand, if present.
    #[must_use]
    pub fn imm(&self) -> Option<i32> {
        self.srcs.iter().find_map(|s| match s {
            SrcOperand::Imm(v) => Some(*v),
            _ => None,
        })
    }

    /// Checks that the operand shape matches the opcode.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseAsmError`] (with line 0) describing the first
    /// mismatch. The assembler and builder call this automatically.
    pub fn validate(&self) -> Result<(), ParseAsmError> {
        let err = |msg: String| Err(ParseAsmError::new(0, msg));
        let op = self.opcode;
        if op.has_cmp_modifier() != self.cmp.is_some() {
            return err(format!("{op}: comparison modifier mismatch"));
        }
        if op.writes_predicate() {
            if self.pdst.is_none() || self.dst.is_some() {
                return err(format!("{op}: must write exactly one predicate"));
            }
            if let Some(p) = self.pdst {
                if p.is_true() {
                    return err(format!("{op}: cannot write PT"));
                }
            }
        } else if self.pdst.is_some() {
            return err(format!("{op}: unexpected predicate destination"));
        }

        let shape: (usize, bool) = match &self.srcs[..] {
            [] => (0, false),
            [a] => (1, matches!(a, SrcOperand::Mem(_))),
            [a, ..] => (self.srcs.len(), matches!(a, SrcOperand::Mem(_))),
        };
        let needs_dst =
            !(op.is_store() || op.is_control_flow() || op.writes_predicate()) && op != Opcode::Nop;
        if needs_dst != self.dst.is_some() {
            return err(format!("{op}: destination register mismatch"));
        }

        use Opcode::*;
        let ok = match op {
            Nop | Exit | Ret | Bar | Sync => shape == (0, false),
            Bra | Ssy | Cal => matches!(self.srcs[..], [SrcOperand::Imm(_)]),
            Mov32i => matches!(self.srcs[..], [SrcOperand::Imm(_)]),
            Mov | Not | Iabs | I2f | F2i | F2f | I2i | Rcp | Rsq | Sin | Cos | Ex2 | Lg2 => {
                matches!(self.srcs[..], [SrcOperand::Reg(_)])
            }
            S2r => matches!(self.srcs[..], [SrcOperand::Special(_)]),
            Iadd32i | Imul32i | And32i | Or32i | Xor32i | Fadd32i | Fmul32i => {
                matches!(self.srcs[..], [SrcOperand::Reg(_), SrcOperand::Imm(_)])
            }
            Iadd | Isub | Imul | Imnmx | And | Or | Xor | Shl | Shr | Fadd | Fmul | Fmnmx
            | Iset | Fset | Isetp | Fsetp => matches!(
                self.srcs[..],
                [SrcOperand::Reg(_), SrcOperand::Reg(_)] | [SrcOperand::Reg(_), SrcOperand::Imm(_)]
            ),
            Imad | Ffma => matches!(
                self.srcs[..],
                [SrcOperand::Reg(_), SrcOperand::Reg(_), SrcOperand::Reg(_)]
            ),
            Sel => matches!(
                self.srcs[..],
                [SrcOperand::Reg(_), SrcOperand::Reg(_), SrcOperand::Pred(_)]
            ),
            Ldg | Lds | Ldc | Ldl => matches!(self.srcs[..], [SrcOperand::Mem(_)]),
            Stg | Sts | Stl => {
                matches!(self.srcs[..], [SrcOperand::Mem(_), SrcOperand::Reg(_)])
            }
        };
        if !ok {
            return err(format!(
                "{op}: invalid operand shape {:?} (mem-first: {})",
                shape.0, shape.1
            ));
        }
        // Short immediates must fit in 16 bits unless the format is 32I.
        if !op.has_imm32() && !op.has_target() {
            if let Some(v) = self.imm() {
                if !(-(1 << 15)..(1 << 15)).contains(&v) {
                    return err(format!("{op}: immediate {v} exceeds 16 bits"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_always_true() {
            write!(f, "{} ", self.guard)?;
        }
        write!(f, "{}", self.opcode)?;
        if let Some(c) = self.cmp {
            write!(f, ".{c}")?;
        }
        let mut sep = " ";
        if let Some(p) = self.pdst {
            write!(f, "{sep}{p}")?;
            sep = ", ";
        }
        if let Some(d) = self.dst {
            write!(f, "{sep}{d}")?;
            sep = ", ";
        }
        for s in &self.srcs {
            write!(f, "{sep}{s}")?;
            sep = ", ";
        }
        f.write_str(";")
    }
}

/// Builder for [`Instruction`] values.
///
/// # Examples
///
/// ```
/// use warpstl_isa::{CmpOp, Instruction, Opcode, Pred, Reg};
///
/// let i = Instruction::build(Opcode::Isetp)
///     .cmp(CmpOp::Ge)
///     .pdst(Pred::new(0))
///     .src(Reg::new(1))
///     .src(Reg::new(2))
///     .finish()?;
/// assert_eq!(i.to_string(), "ISETP.GE P0, R1, R2;");
/// # Ok::<(), warpstl_isa::ParseAsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstructionBuilder {
    inner: Instruction,
}

impl InstructionBuilder {
    /// Starts a builder for `opcode`.
    #[must_use]
    pub fn new(opcode: Opcode) -> InstructionBuilder {
        InstructionBuilder {
            inner: Instruction {
                guard: Guard::default(),
                opcode,
                cmp: None,
                dst: None,
                pdst: None,
                srcs: Vec::new(),
            },
        }
    }

    /// Sets the guard predicate.
    #[must_use]
    pub fn guard(mut self, guard: Guard) -> Self {
        self.inner.guard = guard;
        self
    }

    /// Sets the comparison modifier.
    #[must_use]
    pub fn cmp(mut self, cmp: CmpOp) -> Self {
        self.inner.cmp = Some(cmp);
        self
    }

    /// Sets the GPR destination.
    #[must_use]
    pub fn dst(mut self, dst: Reg) -> Self {
        self.inner.dst = Some(dst);
        self
    }

    /// Sets the predicate destination.
    #[must_use]
    pub fn pdst(mut self, pdst: Pred) -> Self {
        self.inner.pdst = Some(pdst);
        self
    }

    /// Appends a source operand.
    #[must_use]
    pub fn src(mut self, src: impl Into<SrcOperand>) -> Self {
        self.inner.srcs.push(src.into());
        self
    }

    /// Appends a predicate source operand (for `SEL`).
    #[must_use]
    pub fn psrc(mut self, pred: Pred) -> Self {
        self.inner.srcs.push(SrcOperand::Pred(pred));
        self
    }

    /// Appends a memory-reference operand.
    #[must_use]
    pub fn mem(mut self, base: Reg, offset: u16) -> Self {
        self.inner
            .srcs
            .push(SrcOperand::Mem(MemRef::new(base, offset)));
        self
    }

    /// Appends a special-register operand (for `S2R`).
    #[must_use]
    pub fn special(mut self, sr: SpecialReg) -> Self {
        self.inner.srcs.push(SrcOperand::Special(sr));
        self
    }

    /// Validates and returns the instruction.
    ///
    /// # Errors
    ///
    /// Returns the validation error from [`Instruction::validate`] if the
    /// operand shape does not match the opcode.
    pub fn finish(self) -> Result<Instruction, ParseAsmError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iadd() -> Instruction {
        Instruction::build(Opcode::Iadd)
            .dst(Reg::new(1))
            .src(Reg::new(2))
            .src(Reg::new(3))
            .finish()
            .unwrap()
    }

    #[test]
    fn guard_evaluation() {
        assert!(Guard::default().passes(false));
        assert!(Guard::on(Pred::new(0)).passes(true));
        assert!(!Guard::on(Pred::new(0)).passes(false));
        assert!(Guard::negated(Pred::new(0)).passes(false));
        assert!(!Guard::negated(Pred::new(0)).passes(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(iadd().to_string(), "IADD R1, R2, R3;");
        let store = Instruction::build(Opcode::Stg)
            .mem(Reg::new(4), 8)
            .src(Reg::new(5))
            .finish()
            .unwrap();
        assert_eq!(store.to_string(), "STG [R4+0x8], R5;");
        let guarded = Instruction::build(Opcode::Bra)
            .guard(Guard::negated(Pred::new(0)))
            .src(12)
            .finish()
            .unwrap();
        assert_eq!(guarded.to_string(), "@!P0 BRA 0xc;");
    }

    #[test]
    fn reads_and_writes() {
        let i = iadd();
        assert_eq!(i.reads(), vec![Reg::new(2), Reg::new(3)]);
        assert_eq!(i.writes(), Some(Reg::new(1)));
        let store = Instruction::build(Opcode::Stg)
            .mem(Reg::new(4), 8)
            .src(Reg::new(5))
            .finish()
            .unwrap();
        assert_eq!(store.reads(), vec![Reg::new(4), Reg::new(5)]);
        assert_eq!(store.writes(), None);
    }

    #[test]
    fn target_round_trip() {
        let mut b = Instruction::build(Opcode::Bra).src(7).finish().unwrap();
        assert_eq!(b.target(), Some(7));
        b.set_target(99);
        assert_eq!(b.target(), Some(99));
        assert_eq!(iadd().target(), None);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(Instruction::build(Opcode::Iadd).finish().is_err());
        assert!(Instruction::build(Opcode::Nop)
            .dst(Reg::new(0))
            .finish()
            .is_err());
        assert!(Instruction::build(Opcode::Isetp)
            .cmp(CmpOp::Lt)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(Reg::new(2))
            .finish()
            .is_err());
        assert!(Instruction::build(Opcode::Isetp)
            .cmp(CmpOp::Lt)
            .pdst(Pred::TRUE)
            .src(Reg::new(1))
            .src(Reg::new(2))
            .finish()
            .is_err());
        // Missing cmp modifier.
        assert!(Instruction::build(Opcode::Isetp)
            .pdst(Pred::new(0))
            .src(Reg::new(1))
            .src(Reg::new(2))
            .finish()
            .is_err());
        // Short-immediate overflow.
        assert!(Instruction::build(Opcode::Iadd)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(0x10000)
            .finish()
            .is_err());
        // 32I formats accept the full range.
        assert!(Instruction::build(Opcode::Iadd32i)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(i32::MIN)
            .finish()
            .is_ok());
    }

    #[test]
    fn reads_preds_includes_guard_and_sel() {
        let sel = Instruction::build(Opcode::Sel)
            .guard(Guard::on(Pred::new(1)))
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(Reg::new(2))
            .psrc(Pred::new(3))
            .finish()
            .unwrap();
        assert_eq!(sel.reads_preds(), vec![Pred::new(1), Pred::new(3)]);
    }
}
