//! Instruction format and execution-unit classification.
//!
//! The compaction flow groups instructions by *format* (the PTP generators
//! are specified in these terms: the IMM test program uses "all instruction
//! formats using at least one immediate operand") and by the *execution unit*
//! the instruction exercises (which decides which gate-level module sees its
//! test patterns).

use std::fmt;

use crate::{Instruction, OpClass, Opcode, SrcOperand};

/// The encoding/operand format of an instruction instance.
///
/// Unlike [`OpClass`], the format depends on the concrete operands: `IADD R1,
/// R2, R3` is [`InstrFormat::Register`] while `IADD R1, R2, 0x10` is
/// [`InstrFormat::Imm16`].
///
/// # Examples
///
/// ```
/// use warpstl_isa::{asm, InstrFormat};
///
/// let p = asm::assemble("IADD R1, R2, 0x10;\nMOV32I R3, 0xffff0000;\nLDG R4, [R5];")?;
/// assert_eq!(InstrFormat::of(&p[0]), InstrFormat::Imm16);
/// assert_eq!(InstrFormat::of(&p[1]), InstrFormat::Imm32);
/// assert_eq!(InstrFormat::of(&p[2]), InstrFormat::Memory);
/// # Ok::<(), warpstl_isa::ParseAsmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrFormat {
    /// All sources are registers (or the predicate of `SEL`).
    Register,
    /// Carries a full 32-bit immediate (`*32I` opcodes).
    Imm32,
    /// Carries a short 16-bit immediate.
    Imm16,
    /// Addresses a memory space.
    Memory,
    /// Control flow (branches, sync, barrier, exit).
    Control,
    /// Special-register read (`S2R`).
    Special,
}

impl InstrFormat {
    /// Classifies an instruction instance.
    #[must_use]
    pub fn of(instr: &Instruction) -> InstrFormat {
        let op = instr.opcode;
        if op.is_memory() {
            return InstrFormat::Memory;
        }
        if op.is_control_flow() || op == Opcode::Nop {
            return InstrFormat::Control;
        }
        if op == Opcode::S2r {
            return InstrFormat::Special;
        }
        if op.has_imm32() {
            return InstrFormat::Imm32;
        }
        if instr.srcs.iter().any(|s| matches!(s, SrcOperand::Imm(_))) {
            return InstrFormat::Imm16;
        }
        InstrFormat::Register
    }

    /// Whether the format carries an immediate operand.
    #[must_use]
    pub fn has_immediate(self) -> bool {
        matches!(self, InstrFormat::Imm32 | InstrFormat::Imm16)
    }
}

impl fmt::Display for InstrFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrFormat::Register => "REG",
            InstrFormat::Imm32 => "IMM32",
            InstrFormat::Imm16 => "IMM16",
            InstrFormat::Memory => "MEM",
            InstrFormat::Control => "CTRL",
            InstrFormat::Special => "SPEC",
        };
        f.write_str(s)
    }
}

/// The execution unit inside the SM that performs an opcode.
///
/// This decides which gate-level module observes the instruction's operands
/// as test patterns during the compaction flow's logic tracing stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecUnit {
    /// The scalar SP cores (integer ALU, logic, moves, conversions).
    SpCore,
    /// The FP32 units paired with the SP cores.
    Fp32,
    /// The special function units.
    Sfu,
    /// The load/store path to the memory hierarchy.
    LoadStore,
    /// The SM front-end / warp control (branches, barriers).
    Control,
}

impl ExecUnit {
    /// The unit executing `opcode`.
    #[must_use]
    pub fn of(opcode: Opcode) -> ExecUnit {
        match opcode.class() {
            OpClass::IntAlu | OpClass::Logic | OpClass::Move | OpClass::Convert => ExecUnit::SpCore,
            OpClass::Fp32 => ExecUnit::Fp32,
            OpClass::Sfu => ExecUnit::Sfu,
            OpClass::Memory => ExecUnit::LoadStore,
            OpClass::Control => ExecUnit::Control,
        }
    }
}

impl fmt::Display for ExecUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecUnit::SpCore => "SP",
            ExecUnit::Fp32 => "FP32",
            ExecUnit::Sfu => "SFU",
            ExecUnit::LoadStore => "LSU",
            ExecUnit::Control => "CTRL",
        };
        f.write_str(s)
    }
}

/// Pipeline latency class of an opcode: the per-pass execute-stage cost used
/// by the MiniGrip timing model (FlexGripPlus executes one warp through the
/// five pipeline stages largely sequentially, so per-instruction costs are
/// tens of cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LatencyClass {
    /// Single-cycle ALU pass.
    Short,
    /// Multiplier / FP pipeline pass.
    Medium,
    /// SFU iterative approximation pass.
    Long,
    /// Memory access (adds memory-system latency).
    MemoryAccess,
    /// Front-end handled (branches, barriers).
    FrontEnd,
}

impl LatencyClass {
    /// The latency class of `opcode`.
    #[must_use]
    pub fn of(opcode: Opcode) -> LatencyClass {
        use Opcode::*;
        match opcode {
            Imul | Imul32i | Imad | Fmul | Fmul32i | Ffma => LatencyClass::Medium,
            Rcp | Rsq | Sin | Cos | Ex2 | Lg2 => LatencyClass::Long,
            Ldg | Stg | Lds | Sts | Ldc | Ldl | Stl => LatencyClass::MemoryAccess,
            Bra | Ssy | Sync | Bar | Cal | Ret | Exit | Nop => LatencyClass::FrontEnd,
            _ => LatencyClass::Short,
        }
    }

    /// Execute-stage cycles per lane pass.
    #[must_use]
    pub fn execute_cycles(self) -> u64 {
        match self {
            LatencyClass::Short => 6,
            LatencyClass::Medium => 8,
            LatencyClass::Long => 10,
            LatencyClass::MemoryAccess => 6,
            LatencyClass::FrontEnd => 2,
        }
    }

    /// Extra memory-system cycles charged once per warp.
    #[must_use]
    pub fn memory_cycles(self) -> u64 {
        match self {
            LatencyClass::MemoryAccess => 30,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn format_distinguishes_operand_kinds() {
        let reg = Instruction::build(Opcode::Iadd)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(Reg::new(2))
            .finish()
            .unwrap();
        assert_eq!(InstrFormat::of(&reg), InstrFormat::Register);
        let imm = Instruction::build(Opcode::Iadd)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(5)
            .finish()
            .unwrap();
        assert_eq!(InstrFormat::of(&imm), InstrFormat::Imm16);
        assert!(InstrFormat::Imm16.has_immediate());
        assert!(!InstrFormat::Memory.has_immediate());
    }

    #[test]
    fn exec_unit_covers_all_classes() {
        for &op in &Opcode::ALL {
            // Must not panic, and SFU ops must map to the SFU.
            let unit = ExecUnit::of(op);
            if op.is_sfu() {
                assert_eq!(unit, ExecUnit::Sfu);
            }
            if op.is_memory() {
                assert_eq!(unit, ExecUnit::LoadStore);
            }
        }
        assert_eq!(ExecUnit::of(Opcode::I2f), ExecUnit::SpCore);
        assert_eq!(ExecUnit::of(Opcode::Fadd), ExecUnit::Fp32);
    }

    #[test]
    fn latency_classes_are_ordered_sensibly() {
        assert!(
            LatencyClass::of(Opcode::Imul).execute_cycles()
                > LatencyClass::of(Opcode::Iadd).execute_cycles()
        );
        assert!(LatencyClass::of(Opcode::Ldg).memory_cycles() > 0);
        assert_eq!(LatencyClass::of(Opcode::Iadd).memory_cycles(), 0);
        assert_eq!(LatencyClass::of(Opcode::Sin), LatencyClass::Long);
    }

    #[test]
    fn control_format_includes_nop() {
        let nop = Instruction::bare(Opcode::Nop);
        assert_eq!(InstrFormat::of(&nop), InstrFormat::Control);
    }
}
