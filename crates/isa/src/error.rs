//! Error types for assembly parsing and binary decoding.

use std::error::Error;
use std::fmt;

/// An error produced while parsing assembly text or validating an
/// instruction's operand shape.
///
/// # Examples
///
/// ```
/// use warpstl_isa::asm;
///
/// let err = asm::assemble("FROB R1, R2;").unwrap_err();
/// assert_eq!(err.line(), 1);
/// assert!(err.to_string().contains("unknown mnemonic"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    line: usize,
    msg: String,
}

impl ParseAsmError {
    /// Creates an error at `line` (1-based; 0 when no source line applies).
    #[must_use]
    pub fn new(line: usize, msg: impl Into<String>) -> ParseAsmError {
        ParseAsmError {
            line,
            msg: msg.into(),
        }
    }

    /// The 1-based source line, or 0 when the error is not tied to a line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// Returns a copy of the error re-anchored at `line`.
    #[must_use]
    pub fn at_line(&self, line: usize) -> ParseAsmError {
        ParseAsmError {
            line,
            msg: self.msg.clone(),
        }
    }
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl Error for ParseAsmError {}

/// An error produced while decoding a 64-bit instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    word: u64,
    msg: String,
}

impl DecodeError {
    /// Creates a decode error for `word`.
    #[must_use]
    pub fn new(word: u64, msg: impl Into<String>) -> DecodeError {
        DecodeError {
            word,
            msg: msg.into(),
        }
    }

    /// The offending instruction word.
    #[must_use]
    pub fn word(&self) -> u64 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#018x}: {}", self.word, self.msg)
    }
}

impl Error for DecodeError {}
