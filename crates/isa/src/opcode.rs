//! Instruction mnemonics and their classification.

use std::fmt;
use std::str::FromStr;

/// The instruction mnemonics of the MiniGrip ISA.
///
/// The set mirrors the ~52 SASS instructions supported by FlexGripPlus:
/// integer and logic operations executed by the SP cores, FP32 operations,
/// transcendental operations executed by the SFUs, data movement, memory
/// accesses over the GPU memory spaces, and SIMT control flow.
///
/// # Examples
///
/// ```
/// use warpstl_isa::{OpClass, Opcode};
///
/// assert_eq!(Opcode::Iadd.class(), OpClass::IntAlu);
/// assert!(Opcode::Rcp.is_sfu());
/// assert!(Opcode::Bra.is_control_flow());
/// assert_eq!("IMAD".parse::<Opcode>()?, Opcode::Imad);
/// # Ok::<(), warpstl_isa::ParseAsmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    // --- Integer ALU (SP cores) ---
    /// Integer add: `IADD Rd, Ra, Rb`.
    Iadd,
    /// Integer add with a 32-bit immediate: `IADD32I Rd, Ra, imm32`.
    Iadd32i,
    /// Integer subtract: `ISUB Rd, Ra, Rb`.
    Isub,
    /// Integer multiply (low 32 bits): `IMUL Rd, Ra, Rb`.
    Imul,
    /// Integer multiply with a 32-bit immediate: `IMUL32I Rd, Ra, imm32`.
    Imul32i,
    /// Integer multiply-add: `IMAD Rd, Ra, Rb, Rc`.
    Imad,
    /// Integer min/max, selected by the comparison modifier:
    /// `IMNMX.LT Rd, Ra, Rb` is min, `.GT` is max.
    Imnmx,
    /// Integer compare, setting a predicate: `ISETP.LT P0, Ra, Rb`.
    Isetp,
    /// Integer compare, setting a register to `0`/`1`: `ISET.EQ Rd, Ra, Rb`.
    Iset,
    /// Integer absolute value: `IABS Rd, Ra`.
    Iabs,

    // --- Logic and shift (SP cores) ---
    /// Bitwise AND: `AND Rd, Ra, Rb`.
    And,
    /// Bitwise AND with a 32-bit immediate: `AND32I Rd, Ra, imm32`.
    And32i,
    /// Bitwise OR: `OR Rd, Ra, Rb`.
    Or,
    /// Bitwise OR with a 32-bit immediate: `OR32I Rd, Ra, imm32`.
    Or32i,
    /// Bitwise XOR: `XOR Rd, Ra, Rb`.
    Xor,
    /// Bitwise XOR with a 32-bit immediate: `XOR32I Rd, Ra, imm32`.
    Xor32i,
    /// Bitwise NOT: `NOT Rd, Ra`.
    Not,
    /// Logical shift left: `SHL Rd, Ra, Rb` (shift amount from `Rb[4:0]`).
    Shl,
    /// Logical shift right: `SHR Rd, Ra, Rb`.
    Shr,

    // --- FP32 (FP32 units paired with the SP cores) ---
    /// FP32 add: `FADD Rd, Ra, Rb`.
    Fadd,
    /// FP32 add with a 32-bit immediate (IEEE-754 bits): `FADD32I Rd, Ra, imm32`.
    Fadd32i,
    /// FP32 multiply: `FMUL Rd, Ra, Rb`.
    Fmul,
    /// FP32 multiply with a 32-bit immediate: `FMUL32I Rd, Ra, imm32`.
    Fmul32i,
    /// FP32 fused multiply-add: `FFMA Rd, Ra, Rb, Rc`.
    Ffma,
    /// FP32 min/max, selected by the comparison modifier.
    Fmnmx,
    /// FP32 compare, setting a register: `FSET.LT Rd, Ra, Rb`.
    Fset,
    /// FP32 compare, setting a predicate: `FSETP.LT P0, Ra, Rb`.
    Fsetp,

    // --- Conversion ---
    /// Signed integer to FP32: `I2F Rd, Ra`.
    I2f,
    /// FP32 to signed integer (truncating): `F2I Rd, Ra`.
    F2i,
    /// FP32 to FP32 with modifier (used here as float move/normalize): `F2F Rd, Ra`.
    F2f,
    /// Integer width/sign conversion (used here as integer move with
    /// sign-extension of the low 16 bits): `I2I Rd, Ra`.
    I2i,

    // --- Special function unit ---
    /// Reciprocal approximation: `RCP Rd, Ra`.
    Rcp,
    /// Reciprocal square root approximation: `RSQ Rd, Ra`.
    Rsq,
    /// Sine approximation (argument in revolutions): `SIN Rd, Ra`.
    Sin,
    /// Cosine approximation: `COS Rd, Ra`.
    Cos,
    /// Base-2 exponential approximation: `EX2 Rd, Ra`.
    Ex2,
    /// Base-2 logarithm approximation: `LG2 Rd, Ra`.
    Lg2,

    // --- Data movement ---
    /// Register move: `MOV Rd, Ra`.
    Mov,
    /// Load a 32-bit immediate: `MOV32I Rd, imm32`.
    Mov32i,
    /// Predicated select: `SEL Rd, Ra, Rb, P0` (`Rd = P0 ? Ra : Rb`).
    Sel,
    /// Read a special register: `S2R Rd, SR_TID_X`.
    S2r,

    // --- Memory ---
    /// Load from global memory: `LDG Rd, [Ra+off]`.
    Ldg,
    /// Store to global memory: `STG [Ra+off], Rb`.
    Stg,
    /// Load from shared memory: `LDS Rd, [Ra+off]`.
    Lds,
    /// Store to shared memory: `STS [Ra+off], Rb`.
    Sts,
    /// Load from constant memory: `LDC Rd, [Ra+off]`.
    Ldc,
    /// Load from local memory: `LDL Rd, [Ra+off]`.
    Ldl,
    /// Store to local memory: `STL [Ra+off], Rb`.
    Stl,

    // --- Control flow ---
    /// Branch (possibly divergent): `BRA target`.
    Bra,
    /// Push the reconvergence point for a potentially divergent region:
    /// `SSY target`.
    Ssy,
    /// Pop the divergence stack and reconverge (the `.S` flag of SASS,
    /// modeled as an explicit instruction): `SYNC`.
    Sync,
    /// Block-wide barrier: `BAR`.
    Bar,
    /// Call a subroutine: `CAL target`.
    Cal,
    /// Return from a subroutine: `RET`.
    Ret,
    /// Terminate the thread: `EXIT`.
    Exit,
    /// No operation: `NOP`.
    Nop,
}

/// Coarse classification of an [`Opcode`] by the kind of work it performs.
///
/// # Examples
///
/// ```
/// use warpstl_isa::{OpClass, Opcode};
///
/// let sfu_ops: Vec<_> = Opcode::ALL
///     .iter()
///     .filter(|op| op.class() == OpClass::Sfu)
///     .collect();
/// assert_eq!(sfu_ops.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Integer arithmetic executed by the SP cores.
    IntAlu,
    /// Bitwise logic and shifts executed by the SP cores.
    Logic,
    /// FP32 arithmetic executed by the FP32 units.
    Fp32,
    /// Format conversions.
    Convert,
    /// Transcendental approximations executed by the SFUs.
    Sfu,
    /// Register moves, selects and special-register reads.
    Move,
    /// Loads and stores.
    Memory,
    /// Branches, synchronization and program termination.
    Control,
}

/// Comparison modifier used by `ISETP`/`ISET`/`FSETP`/`FSET`/`IMNMX`/`FMNMX`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum CmpOp {
    /// Less than.
    #[default]
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// All comparison modifiers, in encoding order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];

    /// Evaluates the comparison on signed 32-bit integers.
    ///
    /// # Examples
    ///
    /// ```
    /// use warpstl_isa::CmpOp;
    ///
    /// assert!(CmpOp::Lt.eval_i32(-4, 3));
    /// assert!(!CmpOp::Ge.eval_i32(-4, 3));
    /// ```
    #[must_use]
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Evaluates the comparison on FP32 values (IEEE semantics; comparisons
    /// with NaN are false except `Ne`).
    #[must_use]
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The mnemonic suffix (`"LT"`, `"LE"`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
        }
    }

    /// Decodes from the 3-bit encoding field.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<CmpOp> {
        CmpOp::ALL.get(bits as usize).copied()
    }

    /// The 3-bit encoding field.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

macro_rules! opcode_table {
    ($(($variant:ident, $mnemonic:literal, $class:ident)),+ $(,)?) => {
        impl Opcode {
            /// All opcodes of the ISA, in encoding order.
            pub const ALL: [Opcode; opcode_table!(@count $($variant)+)] =
                [$(Opcode::$variant),+];

            /// The textual mnemonic (without modifiers).
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic),+
                }
            }

            /// The coarse operation class.
            #[must_use]
            pub fn class(self) -> OpClass {
                match self {
                    $(Opcode::$variant => OpClass::$class),+
                }
            }

            /// Parses a bare mnemonic (no `.` modifiers).
            #[must_use]
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                match s {
                    $($mnemonic => Some(Opcode::$variant),)+
                    _ => None,
                }
            }
        }
    };
    (@count $($t:tt)*) => { [$(opcode_table!(@unit $t)),*].len() };
    (@unit $t:tt) => { () };
}

opcode_table! {
    (Iadd, "IADD", IntAlu),
    (Iadd32i, "IADD32I", IntAlu),
    (Isub, "ISUB", IntAlu),
    (Imul, "IMUL", IntAlu),
    (Imul32i, "IMUL32I", IntAlu),
    (Imad, "IMAD", IntAlu),
    (Imnmx, "IMNMX", IntAlu),
    (Isetp, "ISETP", IntAlu),
    (Iset, "ISET", IntAlu),
    (Iabs, "IABS", IntAlu),
    (And, "AND", Logic),
    (And32i, "AND32I", Logic),
    (Or, "OR", Logic),
    (Or32i, "OR32I", Logic),
    (Xor, "XOR", Logic),
    (Xor32i, "XOR32I", Logic),
    (Not, "NOT", Logic),
    (Shl, "SHL", Logic),
    (Shr, "SHR", Logic),
    (Fadd, "FADD", Fp32),
    (Fadd32i, "FADD32I", Fp32),
    (Fmul, "FMUL", Fp32),
    (Fmul32i, "FMUL32I", Fp32),
    (Ffma, "FFMA", Fp32),
    (Fmnmx, "FMNMX", Fp32),
    (Fset, "FSET", Fp32),
    (Fsetp, "FSETP", Fp32),
    (I2f, "I2F", Convert),
    (F2i, "F2I", Convert),
    (F2f, "F2F", Convert),
    (I2i, "I2I", Convert),
    (Rcp, "RCP", Sfu),
    (Rsq, "RSQ", Sfu),
    (Sin, "SIN", Sfu),
    (Cos, "COS", Sfu),
    (Ex2, "EX2", Sfu),
    (Lg2, "LG2", Sfu),
    (Mov, "MOV", Move),
    (Mov32i, "MOV32I", Move),
    (Sel, "SEL", Move),
    (S2r, "S2R", Move),
    (Ldg, "LDG", Memory),
    (Stg, "STG", Memory),
    (Lds, "LDS", Memory),
    (Sts, "STS", Memory),
    (Ldc, "LDC", Memory),
    (Ldl, "LDL", Memory),
    (Stl, "STL", Memory),
    (Bra, "BRA", Control),
    (Ssy, "SSY", Control),
    (Sync, "SYNC", Control),
    (Bar, "BAR", Control),
    (Cal, "CAL", Control),
    (Ret, "RET", Control),
    (Exit, "EXIT", Control),
    (Nop, "NOP", Control),
}

impl Opcode {
    /// Whether the opcode is executed by the special function units.
    #[must_use]
    pub fn is_sfu(self) -> bool {
        self.class() == OpClass::Sfu
    }

    /// Whether the opcode accesses a memory space.
    #[must_use]
    pub fn is_memory(self) -> bool {
        self.class() == OpClass::Memory
    }

    /// Whether the opcode is a memory store.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stg | Opcode::Sts | Opcode::Stl)
    }

    /// Whether the opcode affects control flow (including `EXIT` and `BAR`).
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        self.class() == OpClass::Control && self != Opcode::Nop
    }

    /// Whether the opcode carries a branch/call target in its immediate field.
    #[must_use]
    pub fn has_target(self) -> bool {
        matches!(self, Opcode::Bra | Opcode::Ssy | Opcode::Cal)
    }

    /// Whether the opcode takes a comparison modifier (`.LT`, `.EQ`, ...).
    #[must_use]
    pub fn has_cmp_modifier(self) -> bool {
        matches!(
            self,
            Opcode::Isetp
                | Opcode::Iset
                | Opcode::Imnmx
                | Opcode::Fsetp
                | Opcode::Fset
                | Opcode::Fmnmx
        )
    }

    /// Whether the opcode writes a predicate register instead of a GPR.
    #[must_use]
    pub fn writes_predicate(self) -> bool {
        matches!(self, Opcode::Isetp | Opcode::Fsetp)
    }

    /// Whether the opcode embeds a full 32-bit immediate (the `*32I` formats
    /// and `MOV32I`).
    #[must_use]
    pub fn has_imm32(self) -> bool {
        matches!(
            self,
            Opcode::Iadd32i
                | Opcode::Imul32i
                | Opcode::And32i
                | Opcode::Or32i
                | Opcode::Xor32i
                | Opcode::Fadd32i
                | Opcode::Fmul32i
                | Opcode::Mov32i
        )
    }

    /// Decodes from the 6-bit opcode field of the binary encoding.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<Opcode> {
        Opcode::ALL.get(bits as usize).copied()
    }

    /// The 6-bit opcode field of the binary encoding.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Opcode {
    type Err = crate::ParseAsmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::from_mnemonic(s)
            .ok_or_else(|| crate::ParseAsmError::new(0, format!("unknown mnemonic `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_count_matches_flexgrip_scale() {
        // FlexGripPlus supports up to 52 assembly instructions; we model 56.
        assert_eq!(Opcode::ALL.len(), 56);
    }

    #[test]
    fn opcode_bits_round_trip() {
        for &op in &Opcode::ALL {
            assert_eq!(Opcode::from_bits(op.to_bits()), Some(op));
        }
        assert_eq!(Opcode::from_bits(Opcode::ALL.len() as u8), None);
    }

    #[test]
    fn mnemonics_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for &op in &Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate {}", op.mnemonic());
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn cmp_op_bits_round_trip() {
        for &c in &CmpOp::ALL {
            assert_eq!(CmpOp::from_bits(c.to_bits()), Some(c));
        }
        assert_eq!(CmpOp::from_bits(6), None);
    }

    #[test]
    fn cmp_eval_i32_is_consistent_with_operators() {
        let pairs = [(0, 0), (1, 2), (2, 1), (-5, 5), (i32::MIN, i32::MAX)];
        for (a, b) in pairs {
            assert_eq!(CmpOp::Lt.eval_i32(a, b), a < b);
            assert_eq!(CmpOp::Le.eval_i32(a, b), a <= b);
            assert_eq!(CmpOp::Gt.eval_i32(a, b), a > b);
            assert_eq!(CmpOp::Ge.eval_i32(a, b), a >= b);
            assert_eq!(CmpOp::Eq.eval_i32(a, b), a == b);
            assert_eq!(CmpOp::Ne.eval_i32(a, b), a != b);
        }
    }

    #[test]
    fn cmp_eval_f32_nan_semantics() {
        assert!(!CmpOp::Lt.eval_f32(f32::NAN, 1.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
        assert!(CmpOp::Ne.eval_f32(f32::NAN, f32::NAN));
    }

    #[test]
    fn class_partitions_are_sane() {
        assert!(Opcode::Ldg.is_memory());
        assert!(Opcode::Stg.is_store());
        assert!(!Opcode::Ldg.is_store());
        assert!(Opcode::Exit.is_control_flow());
        assert!(!Opcode::Nop.is_control_flow());
        assert!(Opcode::Bra.has_target());
        assert!(Opcode::Isetp.writes_predicate());
        assert!(Opcode::Iset.has_cmp_modifier());
        assert!(!Opcode::Iadd.has_cmp_modifier());
        assert!(Opcode::Mov32i.has_imm32());
    }

    #[test]
    fn sfu_class_has_six_functions() {
        let n = Opcode::ALL.iter().filter(|o| o.is_sfu()).count();
        assert_eq!(n, 6);
    }
}
