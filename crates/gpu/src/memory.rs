//! Word-addressable memory spaces.

use crate::SimError;

/// A flat, word-granular memory space.
///
/// Addresses are byte addresses; accesses are 32-bit words and must be
/// 4-byte aligned (the MiniGrip load/store path, like FlexGripPlus's, is
/// word-oriented; unaligned addresses round down to the containing word).
///
/// # Examples
///
/// ```
/// use warpstl_gpu::Memory;
///
/// let mut m = Memory::new("global", 64);
/// m.store_word(8, 0xdead_beef)?;
/// assert_eq!(m.load_word(8)?, 0xdead_beef);
/// assert!(m.load_word(64).is_err());
/// # Ok::<(), warpstl_gpu::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    space: &'static str,
    words: Vec<u32>,
}

impl Memory {
    /// An all-zero memory of `bytes` bytes named `space` in diagnostics.
    #[must_use]
    pub fn new(space: &'static str, bytes: usize) -> Memory {
        Memory {
            space,
            words: vec![0; bytes.div_ceil(4)],
        }
    }

    /// The size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Loads the word containing byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] when `addr` is outside the space.
    pub fn load_word(&self, addr: u64) -> Result<u32, SimError> {
        let idx = (addr / 4) as usize;
        self.words
            .get(idx)
            .copied()
            .ok_or(SimError::MemoryOutOfBounds {
                space: self.space,
                addr,
                size: self.size_bytes(),
            })
    }

    /// Stores a word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] when `addr` is outside the space.
    pub fn store_word(&mut self, addr: u64, value: u32) -> Result<(), SimError> {
        let size = self.size_bytes();
        let idx = (addr / 4) as usize;
        match self.words.get_mut(idx) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(SimError::MemoryOutOfBounds {
                space: self.space,
                addr,
                size,
            }),
        }
    }

    /// Zeroes the whole space.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The raw words (for bulk initialization and inspection).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable raw words.
    pub fn words_mut(&mut self) -> &mut [u32] {
        &mut self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_round_trip() {
        let mut m = Memory::new("t", 16);
        for i in 0..4u64 {
            m.store_word(i * 4, i as u32 + 100).unwrap();
        }
        for i in 0..4u64 {
            assert_eq!(m.load_word(i * 4).unwrap(), i as u32 + 100);
        }
    }

    #[test]
    fn unaligned_rounds_down() {
        let mut m = Memory::new("t", 16);
        m.store_word(5, 7).unwrap();
        assert_eq!(m.load_word(4).unwrap(), 7);
        assert_eq!(m.load_word(7).unwrap(), 7);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = Memory::new("t", 8);
        assert!(m.load_word(8).is_err());
        assert!(m.store_word(u64::MAX, 0).is_err());
        let e = m.load_word(100).unwrap_err();
        assert_eq!(
            e,
            SimError::MemoryOutOfBounds {
                space: "t",
                addr: 100,
                size: 8
            }
        );
    }

    #[test]
    fn odd_sizes_round_up_to_words() {
        let m = Memory::new("t", 5);
        assert_eq!(m.size_bytes(), 8);
    }
}
