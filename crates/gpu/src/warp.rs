//! Warp state: active mask, SIMT divergence stack and call stack.

use crate::SimError;

/// A reconvergence-stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StackEntry {
    /// Pushed by `SSY target`: the reconvergence point and the mask to
    /// restore there.
    Sync { reconv: usize, mask: u32 },
    /// Pushed by a divergent branch: the pending path.
    Div { pc: usize, mask: u32 },
}

/// One warp's control state.
///
/// MiniGrip implements the FlexGripPlus (G80) divergence discipline:
/// `SSY L` pushes a synchronization token for the join point `L`; a
/// divergent `BRA` executes the fall-through side first and pushes the taken
/// side; `SYNC` (the `.S` flag of real SASS, modeled as an instruction)
/// pops — resuming the pending side, or restoring the full mask once both
/// sides have arrived at `L`.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::Warp;
///
/// let mut w = Warp::new(0, 32);
/// assert_eq!(w.active_mask(), 0xffff_ffff);
/// w.push_sync(10);
/// w.diverge(5, 0x0000_ffff)?; // lower half takes the branch
/// assert_eq!(w.active_mask(), 0xffff_0000); // upper half falls through
/// # Ok::<(), warpstl_gpu::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Warp {
    id: usize,
    pc: usize,
    active: u32,
    exited: u32,
    full: u32,
    stack: Vec<StackEntry>,
    call_stack: Vec<usize>,
    at_barrier: bool,
}

impl Warp {
    /// A warp of `threads` threads (≤ 32) starting at PC 0.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds 32.
    #[must_use]
    pub fn new(id: usize, threads: usize) -> Warp {
        assert!((1..=32).contains(&threads), "bad warp width {threads}");
        let full = if threads == 32 {
            u32::MAX
        } else {
            (1u32 << threads) - 1
        };
        Warp {
            id,
            pc: 0,
            active: full,
            exited: 0,
            full,
            stack: Vec::new(),
            call_stack: Vec::new(),
            at_barrier: false,
        }
    }

    /// The warp id within its block.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Advances to the next instruction.
    pub fn advance(&mut self) {
        self.pc += 1;
    }

    /// Jumps to `pc`.
    pub fn jump(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// The threads currently executing.
    #[must_use]
    pub fn active_mask(&self) -> u32 {
        self.active
    }

    /// Whether every thread has exited.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.exited == self.full
    }

    /// Whether the warp is parked at a block barrier.
    #[must_use]
    pub fn at_barrier(&self) -> bool {
        self.at_barrier
    }

    /// Parks / releases the warp at a barrier.
    pub fn set_at_barrier(&mut self, parked: bool) {
        self.at_barrier = parked;
    }

    /// Pushes the reconvergence point for an upcoming potentially-divergent
    /// region (`SSY target`).
    pub fn push_sync(&mut self, target: usize) {
        self.stack.push(StackEntry::Sync {
            reconv: target,
            mask: self.active,
        });
    }

    /// Handles a branch whose per-thread outcome is `taken_mask` (already
    /// restricted to the active mask), targeting `target`.
    ///
    /// Uniform branches jump or fall through; divergent ones execute the
    /// fall-through side first and push the taken side.
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for parity with the other control
    /// operations.
    pub fn diverge(&mut self, target: usize, taken_mask: u32) -> Result<(), SimError> {
        let taken = taken_mask & self.active;
        if taken == self.active {
            self.pc = target;
        } else if taken == 0 {
            self.pc += 1;
        } else {
            self.stack.push(StackEntry::Div {
                pc: target,
                mask: taken,
            });
            self.active &= !taken;
            self.pc += 1;
        }
        Ok(())
    }

    /// Executes `SYNC`: pops the divergence stack — resuming the pending
    /// branch side, or restoring the pre-`SSY` mask and continuing.
    ///
    /// A `SYNC` with an empty stack is a no-op advance (FlexGripPlus
    /// tolerates stray `.S` flags the same way).
    pub fn sync(&mut self) {
        match self.stack.pop() {
            Some(StackEntry::Div { pc, mask }) => {
                self.active = mask;
                self.pc = pc;
            }
            Some(StackEntry::Sync { reconv: _, mask }) => {
                self.active = mask & !self.exited;
                self.pc += 1;
            }
            None => self.pc += 1,
        }
    }

    /// Executes `EXIT` for the active threads; pending divergent paths
    /// resume. Returns `true` when the whole warp has finished.
    pub fn exit(&mut self) -> bool {
        self.exited |= self.active;
        self.active = 0;
        // Resume any pending path that still has live threads.
        while let Some(entry) = self.stack.pop() {
            let (pc_opt, mask) = match entry {
                StackEntry::Div { pc, mask } => (Some(pc), mask),
                StackEntry::Sync { reconv, mask } => (Some(reconv), mask),
            };
            let live = mask & !self.exited;
            if live != 0 {
                self.active = live;
                self.pc = pc_opt.expect("always Some");
                return false;
            }
        }
        self.is_done()
    }

    /// Executes `CAL target`.
    ///
    /// # Errors
    ///
    /// [`SimError::DivergentCall`] when called with a partial mask.
    pub fn call(&mut self, target: usize) -> Result<(), SimError> {
        if self.active != self.full & !self.exited {
            return Err(SimError::DivergentCall { pc: self.pc });
        }
        self.call_stack.push(self.pc + 1);
        self.pc = target;
        Ok(())
    }

    /// Executes `RET`.
    ///
    /// # Errors
    ///
    /// [`SimError::ReturnWithoutCall`] when the call stack is empty.
    pub fn ret(&mut self) -> Result<(), SimError> {
        match self.call_stack.pop() {
            Some(pc) => {
                self.pc = pc;
                Ok(())
            }
            None => Err(SimError::ReturnWithoutCall { pc: self.pc }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_branches_do_not_push() {
        let mut w = Warp::new(0, 32);
        w.diverge(7, u32::MAX).unwrap();
        assert_eq!(w.pc(), 7);
        w.diverge(3, 0).unwrap();
        assert_eq!(w.pc(), 8);
        assert_eq!(w.active_mask(), u32::MAX);
    }

    #[test]
    fn if_else_reconverges() {
        // SSY join; @P BRA then; (else body); SYNC@join... modeled directly:
        let mut w = Warp::new(0, 32);
        w.push_sync(10);
        w.diverge(5, 0x0000_00ff).unwrap(); // low 8 threads take
        assert_eq!(w.active_mask(), 0xffff_ff00);
        // Fall-through side runs, reaches the join and syncs:
        w.jump(10);
        w.sync();
        // Pending taken side resumes at 5.
        assert_eq!(w.pc(), 5);
        assert_eq!(w.active_mask(), 0x0000_00ff);
        // Taken side reaches the join too.
        w.jump(10);
        w.sync();
        assert_eq!(w.active_mask(), u32::MAX);
        assert_eq!(w.pc(), 11);
    }

    #[test]
    fn nested_divergence() {
        let mut w = Warp::new(0, 4);
        w.push_sync(20);
        w.diverge(10, 0b0011).unwrap(); // outer split
        assert_eq!(w.active_mask(), 0b1100);
        w.push_sync(15);
        w.diverge(12, 0b0100).unwrap(); // inner split of the else side
        assert_eq!(w.active_mask(), 0b1000);
        w.jump(15);
        w.sync(); // inner pending side
        assert_eq!((w.pc(), w.active_mask()), (12, 0b0100));
        w.jump(15);
        w.sync(); // inner join
        assert_eq!(w.active_mask(), 0b1100);
        w.jump(20);
        w.sync(); // outer pending side
        assert_eq!((w.pc(), w.active_mask()), (10, 0b0011));
        w.jump(20);
        w.sync(); // outer join
        assert_eq!(w.active_mask(), 0b1111);
    }

    #[test]
    fn exit_resumes_pending_paths() {
        let mut w = Warp::new(0, 4);
        w.push_sync(9);
        w.diverge(5, 0b0011).unwrap();
        // Fall-through side exits directly.
        assert!(!w.exit());
        assert_eq!((w.pc(), w.active_mask()), (5, 0b0011));
        assert!(w.exit());
        assert!(w.is_done());
    }

    #[test]
    fn partial_warp_masks() {
        let w = Warp::new(1, 20);
        assert_eq!(w.active_mask(), (1 << 20) - 1);
        assert_eq!(w.id(), 1);
    }

    #[test]
    fn call_and_ret() {
        let mut w = Warp::new(0, 32);
        w.jump(3);
        w.call(40).unwrap();
        assert_eq!(w.pc(), 40);
        w.ret().unwrap();
        assert_eq!(w.pc(), 4);
        assert!(w.ret().is_err());
    }

    #[test]
    fn divergent_call_is_rejected() {
        let mut w = Warp::new(0, 32);
        w.push_sync(9);
        w.diverge(5, 1).unwrap();
        assert!(matches!(w.call(2), Err(SimError::DivergentCall { .. })));
    }

    #[test]
    fn sync_after_exit_drops_dead_threads() {
        let mut w = Warp::new(0, 2);
        w.push_sync(9);
        w.diverge(5, 0b01).unwrap(); // thread 0 takes
        assert!(!w.exit()); // thread 1 exits on the fall-through side
        assert_eq!(w.active_mask(), 0b01);
        w.jump(9);
        w.sync(); // join: only thread 0 is still alive
        assert_eq!(w.active_mask(), 0b01);
    }
}
