//! GPU and kernel configuration.

use std::fmt;

/// Hardware configuration of the (single) streaming multiprocessor.
///
/// Defaults match the paper's FlexGripPlus setup: one SM with 8 SP cores,
/// 8 FP32 units and 2 SFUs; warps of 32 threads.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::GpuConfig;
///
/// let cfg = GpuConfig::default();
/// assert_eq!(cfg.sp_cores, 8);
/// assert_eq!(cfg.sp_passes_per_warp(), 4);
/// assert_eq!(cfg.sfu_passes_per_warp(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of SP cores per SM (FlexGripPlus supports 8, 16 or 32).
    pub sp_cores: usize,
    /// Number of special function units per SM.
    pub sfus: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Architectural registers per thread.
    pub regs_per_thread: usize,
    /// Global memory size in bytes.
    pub global_mem_bytes: usize,
    /// Shared memory size in bytes (per block).
    pub shared_mem_bytes: usize,
    /// Constant memory size in bytes.
    pub const_mem_bytes: usize,
    /// Local memory size in bytes per thread.
    pub local_mem_bytes: usize,
    /// Hard cycle limit before a run is aborted as a runaway.
    pub max_cycles: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            sp_cores: 8,
            sfus: 2,
            warp_size: 32,
            regs_per_thread: 64,
            global_mem_bytes: 1 << 20,
            shared_mem_bytes: 16 << 10,
            const_mem_bytes: 64 << 10,
            local_mem_bytes: 512,
            max_cycles: u64::MAX,
        }
    }
}

impl GpuConfig {
    /// A configuration with `sp_cores` execution units (8, 16 or 32).
    ///
    /// # Panics
    ///
    /// Panics if `sp_cores` is not 8, 16 or 32 (the FlexGripPlus options).
    #[must_use]
    pub fn with_sp_cores(sp_cores: usize) -> GpuConfig {
        assert!(
            matches!(sp_cores, 8 | 16 | 32),
            "FlexGripPlus supports 8, 16 or 32 SP cores"
        );
        GpuConfig {
            sp_cores,
            ..GpuConfig::default()
        }
    }

    /// How many execute passes a warp needs through the SP cores.
    #[must_use]
    pub fn sp_passes_per_warp(&self) -> usize {
        self.warp_size.div_ceil(self.sp_cores)
    }

    /// How many execute passes a warp needs through the SFUs.
    #[must_use]
    pub fn sfu_passes_per_warp(&self) -> usize {
        self.warp_size.div_ceil(self.sfus)
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1 SM, {} SPs, {} SFUs, warp {}",
            self.sp_cores, self.sfus, self.warp_size
        )
    }
}

/// Kernel launch configuration: a 1-D grid of 1-D blocks.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::KernelConfig;
///
/// let k = KernelConfig::new(1, 1024); // the paper's CNTRL configuration
/// assert_eq!(k.total_threads(), 1024);
/// assert_eq!(k.warps_per_block(32), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Number of blocks in the grid.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
}

impl KernelConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(blocks: usize, threads_per_block: usize) -> KernelConfig {
        assert!(blocks > 0 && threads_per_block > 0, "empty launch");
        KernelConfig {
            blocks,
            threads_per_block,
        }
    }

    /// Total threads across the grid.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }

    /// Warps per block for a given warp size (partial warps round up).
    #[must_use]
    pub fn warps_per_block(&self, warp_size: usize) -> usize {
        self.threads_per_block.div_ceil(warp_size)
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::new(1, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_per_warp() {
        let c = GpuConfig::with_sp_cores(16);
        assert_eq!(c.sp_passes_per_warp(), 2);
        let c = GpuConfig::with_sp_cores(32);
        assert_eq!(c.sp_passes_per_warp(), 1);
    }

    #[test]
    #[should_panic(expected = "8, 16 or 32")]
    fn invalid_sp_count_panics() {
        let _ = GpuConfig::with_sp_cores(12);
    }

    #[test]
    fn kernel_config_partial_warps() {
        let k = KernelConfig::new(2, 33);
        assert_eq!(k.warps_per_block(32), 2);
        assert_eq!(k.total_threads(), 66);
    }

    #[test]
    #[should_panic(expected = "empty launch")]
    fn empty_launch_panics() {
        let _ = KernelConfig::new(0, 32);
    }
}
