//! The top-level GPU object and kernel launcher.

use crate::sm::{encode_program, BlockExec};
use crate::trace::{ModulePatterns, Trace};
use crate::{GpuConfig, Kernel, Memory, SimError};

/// What the hardware monitor records during a run.
///
/// Tracing and pattern capture exist for the compaction flow; plain
/// functional runs leave everything off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Record the RT-level tracing report.
    pub trace: bool,
    /// Capture Decoder Unit patterns (instruction words).
    pub capture_du: bool,
    /// Capture SP-core operand patterns.
    pub capture_sp: bool,
    /// Capture SFU operand patterns.
    pub capture_sfu: bool,
    /// Capture FP32-unit operand patterns.
    pub capture_fp32: bool,
}

impl RunOptions {
    /// Tracing only (no pattern capture).
    #[must_use]
    pub fn tracing() -> RunOptions {
        RunOptions {
            trace: true,
            ..RunOptions::default()
        }
    }

    /// Everything on: the full hardware-monitor configuration the
    /// compaction flow uses.
    #[must_use]
    pub fn capture_all() -> RunOptions {
        RunOptions {
            trace: true,
            capture_du: true,
            capture_sp: true,
            capture_sfu: true,
            capture_fp32: true,
        }
    }
}

/// The result of a kernel run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total clock cycles (the PTP *duration* reported in the paper's
    /// tables).
    pub cycles: u64,
    /// The RT-level tracing report (empty unless requested).
    pub trace: Trace,
    /// The gate-level test-pattern report (empty unless requested).
    pub patterns: ModulePatterns,
    /// Final signature-per-thread (SpT) values, one per global thread.
    pub signatures: Vec<u32>,
    /// Final global memory.
    pub global_mem: Memory,
}

/// The GPU model: a single SM per the paper's FlexGripPlus configuration.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct Gpu {
    /// Hardware configuration.
    pub config: GpuConfig,
}

impl Gpu {
    /// A GPU with `config`.
    #[must_use]
    pub fn new(config: GpuConfig) -> Gpu {
        Gpu { config }
    }

    /// Runs `kernel` to completion.
    ///
    /// Blocks execute sequentially on the single SM (as on FlexGripPlus with
    /// one SM); shared memory and the barrier state reset per block; global
    /// memory persists across blocks.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by the program: out-of-bounds accesses, bad
    /// control targets, divergence misuse, barrier deadlock, or the cycle
    /// limit.
    pub fn run(&self, kernel: &Kernel, opts: &RunOptions) -> Result<RunResult, SimError> {
        let encoded = encode_program(&kernel.program);
        let mut cc = 0u64;
        let mut trace = Trace::new();
        let mut patterns = ModulePatterns::new(self.config.sp_cores, self.config.sfus);
        let mut signatures = vec![0u32; kernel.config.total_threads()];
        let mut global = kernel.data.global().clone();
        let constant = kernel.data.constant().clone();

        for block in 0..kernel.config.blocks {
            let mut exec = BlockExec::new(
                &self.config,
                opts,
                &kernel.program,
                &encoded,
                block,
                kernel.config.threads_per_block,
            );
            let sig_lo = block * kernel.config.threads_per_block;
            let sig_hi = sig_lo + kernel.config.threads_per_block;
            exec.run(
                &mut cc,
                &mut trace,
                &mut patterns,
                &mut signatures[sig_lo..sig_hi],
                &mut global,
                &constant,
            )?;
        }
        Ok(RunResult {
            cycles: cc,
            trace,
            patterns,
            signatures,
            global_mem: global,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelConfig;
    use warpstl_isa::asm;

    fn run_asm(src: &str, threads: usize, opts: RunOptions) -> RunResult {
        let program = asm::assemble(src).expect("asm");
        let kernel = Kernel::new("t", program, KernelConfig::new(1, threads));
        Gpu::default().run(&kernel, &opts).expect("run")
    }

    #[test]
    fn tid_indexed_store() {
        let r = run_asm(
            "S2R R0, SR_TID_X;\n\
             SHL R1, R0, 0x2;\n\
             STG [R1], R0;\n\
             EXIT;",
            32,
            RunOptions::default(),
        );
        for t in 0..32u64 {
            assert_eq!(r.global_mem.load_word(t * 4).unwrap(), t as u32);
        }
    }

    #[test]
    fn divergent_if_else_writes_both_sides() {
        // Threads with tid < 16 write 111, the rest write 222.
        let r = run_asm(
            "S2R R0, SR_TID_X;\n\
             SHL R1, R0, 0x2;\n\
             ISETP.LT P0, R0, 0x10;\n\
             SSY join;\n\
             @P0 BRA low;\n\
             MOV32I R2, 222;\n\
             BRA join;\n\
             low: MOV32I R2, 111;\n\
             join: SYNC;\n\
             STG [R1], R2;\n\
             EXIT;",
            32,
            RunOptions::default(),
        );
        for t in 0..32u64 {
            let want = if t < 16 { 111 } else { 222 };
            assert_eq!(r.global_mem.load_word(t * 4).unwrap(), want, "tid {t}");
        }
    }

    #[test]
    fn loop_with_backward_branch() {
        // Sum 0..5 per thread.
        let r = run_asm(
            "MOV32I R1, 0;\n\
             MOV32I R2, 0;\n\
             top: IADD R1, R1, R2;\n\
             IADD R2, R2, 0x1;\n\
             ISETP.LT P0, R2, 0x5;\n\
             @P0 BRA top;\n\
             S2R R0, SR_TID_X;\n\
             SHL R3, R0, 0x2;\n\
             STG [R3], R1;\n\
             EXIT;",
            8,
            RunOptions::default(),
        );
        for t in 0..8u64 {
            assert_eq!(r.global_mem.load_word(t * 4).unwrap(), 10, "tid {t}");
        }
    }

    #[test]
    fn barrier_synchronizes_warps() {
        // Warp 0 threads write; all warps barrier; then all read.
        let src = "S2R R0, SR_TID_X;\n\
             SHL R1, R0, 0x2;\n\
             STS [R1], R0;\n\
             BAR;\n\
             LDS R2, [R1];\n\
             STG [R1], R2;\n\
             EXIT;";
        let r = run_asm(src, 64, RunOptions::default());
        for t in 0..64u64 {
            assert_eq!(r.global_mem.load_word(t * 4).unwrap(), t as u32);
        }
    }

    #[test]
    fn multiple_blocks_run_sequentially() {
        let program = asm::assemble(
            "S2R R0, SR_TID_X;\n\
             S2R R1, SR_CTAID_X;\n\
             SHL R2, R1, 0x7;\n\
             SHL R3, R0, 0x2;\n\
             IADD R2, R2, R3;\n\
             STG [R2], R1;\n\
             EXIT;",
        )
        .unwrap();
        let kernel = Kernel::new("b", program, KernelConfig::new(3, 32));
        let r = Gpu::default().run(&kernel, &RunOptions::default()).unwrap();
        for b in 0..3u64 {
            assert_eq!(r.global_mem.load_word(b * 128).unwrap(), b as u32);
        }
        assert_eq!(r.signatures.len(), 96);
    }

    #[test]
    fn trace_and_patterns_are_captured() {
        let r = run_asm(
            "MOV32I R1, 0x55;\n\
             IADD R2, R1, 0x1;\n\
             RCP R3, R2;\n\
             EXIT;",
            32,
            RunOptions::capture_all(),
        );
        assert_eq!(r.trace.len(), 4);
        assert_eq!(r.patterns.du.len(), 4);
        // MOV32I + IADD execute on 8 SPs, 32 threads -> 4 patterns per SP
        // per instruction.
        assert_eq!(r.patterns.sp[0].len(), 2 * 4);
        // RCP executes on 2 SFUs -> 16 patterns each.
        assert_eq!(r.patterns.sfu[0].len(), 16);
        assert_eq!(r.patterns.sfu[1].len(), 16);
        // Pattern cc stamps fall inside the instruction's trace interval.
        let recs = r.trace.records();
        for i in 0..r.patterns.du.len() {
            let cc = r.patterns.du.cc(i);
            assert!(recs.iter().any(|t| t.cc_start <= cc && cc < t.cc_end));
        }
    }

    #[test]
    fn signatures_fold_results() {
        let a = run_asm("MOV32I R1, 1;\nEXIT;", 8, RunOptions::default());
        let b = run_asm("MOV32I R1, 2;\nEXIT;", 8, RunOptions::default());
        assert_ne!(a.signatures, b.signatures);
        assert!(a.signatures.iter().all(|&s| s != 0));
    }

    #[test]
    fn guarded_writes_skip_inactive_threads() {
        let r = run_asm(
            "S2R R0, SR_TID_X;\n\
             ISETP.LT P0, R0, 0x4;\n\
             MOV32I R2, 7;\n\
             @P0 MOV32I R2, 9;\n\
             SHL R1, R0, 0x2;\n\
             STG [R1], R2;\n\
             EXIT;",
            8,
            RunOptions::default(),
        );
        for t in 0..8u64 {
            let want = if t < 4 { 9 } else { 7 };
            assert_eq!(r.global_mem.load_word(t * 4).unwrap(), want);
        }
    }

    #[test]
    fn errors_surface() {
        let program = asm::assemble("LDG R1, [R0+0x10];\nEXIT;").unwrap();
        let mut kernel = Kernel::new("e", program, KernelConfig::new(1, 1));
        kernel.data = crate::KernelData::new(8, 8); // tiny memory
        let err = Gpu::default()
            .run(&kernel, &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, SimError::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn cycle_limit_catches_runaways() {
        let program = asm::assemble("top: BRA top;").unwrap();
        let kernel = Kernel::new("r", program, KernelConfig::new(1, 32));
        let config = GpuConfig {
            max_cycles: 10_000,
            ..GpuConfig::default()
        };
        let err = Gpu::new(config)
            .run(&kernel, &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }

    #[test]
    fn duration_scales_with_warps() {
        let src = "MOV32I R1, 3;\nIADD R1, R1, 0x1;\nEXIT;";
        let one = run_asm(src, 32, RunOptions::default());
        let program = asm::assemble(src).unwrap();
        let kernel = Kernel::new("w", program, KernelConfig::new(1, 1024));
        let many = Gpu::default().run(&kernel, &RunOptions::default()).unwrap();
        // 32 warps execute serially: ~32x the cycles.
        let ratio = many.cycles as f64 / one.cycles as f64;
        assert!((28.0..36.0).contains(&ratio), "ratio {ratio}");
    }
}
