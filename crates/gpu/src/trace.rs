//! The hardware monitor: execution tracing and module pattern capture.

use std::collections::HashMap;
use std::fmt;

use warpstl_isa::Opcode;
use warpstl_netlist::modules::{decoder_unit, fp32, sfu, sp_core};
use warpstl_netlist::PatternSeq;

/// One record of the RT-level tracing report: "the decoded instruction, the
/// program counter value, the executed instruction per warp, the warp
/// identifier, and the cc value".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Clock cycle at which the warp issued the instruction.
    pub cc_start: u64,
    /// First clock cycle after the instruction completed.
    pub cc_end: u64,
    /// Program counter (instruction index).
    pub pc: usize,
    /// Block index within the grid.
    pub block: usize,
    /// Warp id within the block.
    pub warp: usize,
    /// The decoded operation.
    pub opcode: Opcode,
    /// The active thread mask during execution.
    pub active_mask: u32,
}

/// The full tracing report of a kernel run, with per-PC lookup.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::{Gpu, Kernel, KernelConfig, RunOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = warpstl_isa::asm::assemble("NOP;\nEXIT;")?;
/// let kernel = Kernel::new("t", program, KernelConfig::new(1, 32));
/// let result = Gpu::default().run(&kernel, &RunOptions::tracing())?;
/// let nops = result.trace.records_for_pc(0).count();
/// assert_eq!(nops, 1); // one warp executed the NOP once
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    by_pc: HashMap<usize, Vec<usize>>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: TraceRecord) {
        self.by_pc
            .entry(rec.pc)
            .or_default()
            .push(self.records.len());
        self.records.push(rec);
    }

    /// All records in execution order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The records of every execution of the instruction at `pc` (one per
    /// warp per dynamic execution).
    pub fn records_for_pc(&self, pc: usize) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.by_pc
            .get(&pc)
            .into_iter()
            .flatten()
            .map(move |&i| &self.records[i])
    }

    /// The number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# cc_start cc_end pc block warp opcode mask")?;
        for r in &self.records {
            writeln!(
                f,
                "{} {} {} {} {} {} {:#010x}",
                r.cc_start, r.cc_end, r.pc, r.block, r.warp, r.opcode, r.active_mask
            )?;
        }
        Ok(())
    }
}

/// The gate-level test-pattern report: per-clock-cycle input vectors for
/// each target-module instance, as captured by the hardware monitor.
///
/// The Decoder Unit has one instance; the SP cores and SFUs have one
/// pattern stream per physical instance (lane).
#[derive(Debug, Clone)]
pub struct ModulePatterns {
    /// Decode-stage stimuli seen by the Decoder Unit.
    pub du: PatternSeq,
    /// Operand streams per SP core.
    pub sp: Vec<PatternSeq>,
    /// Operand streams per SFU.
    pub sfu: Vec<PatternSeq>,
    /// Operand streams per FP32 unit (paired with the SP cores).
    pub fp32: Vec<PatternSeq>,
}

impl ModulePatterns {
    /// Empty capture buffers for `sp_cores` SP/FP32 instance pairs and
    /// `sfus` SFU instances.
    #[must_use]
    pub fn new(sp_cores: usize, sfus: usize) -> ModulePatterns {
        ModulePatterns {
            du: PatternSeq::new(decoder_unit::PATTERN_WIDTH),
            sp: (0..sp_cores)
                .map(|_| PatternSeq::new(sp_core::PATTERN_WIDTH))
                .collect(),
            sfu: (0..sfus)
                .map(|_| PatternSeq::new(sfu::PATTERN_WIDTH))
                .collect(),
            fp32: (0..sp_cores)
                .map(|_| PatternSeq::new(fp32::PATTERN_WIDTH))
                .collect(),
        }
    }

    /// Total captured patterns across all modules.
    #[must_use]
    pub fn total_patterns(&self) -> usize {
        self.du.len()
            + self.sp.iter().map(PatternSeq::len).sum::<usize>()
            + self.sfu.iter().map(PatternSeq::len).sum::<usize>()
            + self.fp32.iter().map(PatternSeq::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: usize, warp: usize, cc: u64) -> TraceRecord {
        TraceRecord {
            cc_start: cc,
            cc_end: cc + 60,
            pc,
            block: 0,
            warp,
            opcode: Opcode::Iadd,
            active_mask: u32::MAX,
        }
    }

    #[test]
    fn by_pc_lookup() {
        let mut t = Trace::new();
        t.push(rec(0, 0, 0));
        t.push(rec(1, 0, 60));
        t.push(rec(0, 1, 120));
        assert_eq!(t.records_for_pc(0).count(), 2);
        assert_eq!(t.records_for_pc(1).count(), 1);
        assert_eq!(t.records_for_pc(9).count(), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn display_lists_records() {
        let mut t = Trace::new();
        t.push(rec(4, 2, 100));
        let s = t.to_string();
        assert!(s.contains("100 160 4 0 2 IADD"));
    }

    #[test]
    fn pattern_buffers_have_module_widths() {
        let p = ModulePatterns::new(8, 2);
        assert_eq!(p.du.width(), decoder_unit::PATTERN_WIDTH);
        assert_eq!(p.sp.len(), 8);
        assert_eq!(p.sp[0].width(), sp_core::PATTERN_WIDTH);
        assert_eq!(p.sfu.len(), 2);
        assert_eq!(p.fp32.len(), 8);
        assert_eq!(p.fp32[0].width(), fp32::PATTERN_WIDTH);
        assert_eq!(p.total_patterns(), 0);
    }
}
