//! Simulation errors.

use std::error::Error;
use std::fmt;

/// An error raised while executing a kernel on the GPU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A load or store fell outside the addressed memory space.
    MemoryOutOfBounds {
        /// The memory space name.
        space: &'static str,
        /// The offending byte address.
        addr: u64,
        /// The size of the space in bytes.
        size: usize,
    },
    /// A store targeted the read-only constant memory.
    ConstWrite {
        /// The offending byte address.
        addr: u64,
    },
    /// A branch, call or SSY target fell outside the program.
    BadTarget {
        /// The program counter of the offending instruction.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// `RET` executed with an empty call stack.
    ReturnWithoutCall {
        /// The program counter of the offending `RET`.
        pc: usize,
    },
    /// A `CAL` executed under partial-warp divergence (unsupported, as in
    /// FlexGripPlus test programs).
    DivergentCall {
        /// The program counter of the offending `CAL`.
        pc: usize,
    },
    /// Execution ran past the end of the program without `EXIT`.
    RanOffEnd,
    /// The configured cycle budget was exhausted (runaway loop guard).
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// Warps deadlocked at a barrier (some exited without reaching it).
    BarrierDeadlock,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemoryOutOfBounds { space, addr, size } => {
                write!(f, "{space} access at {addr:#x} outside {size} bytes")
            }
            SimError::ConstWrite { addr } => {
                write!(f, "store to read-only constant memory at {addr:#x}")
            }
            SimError::BadTarget { pc, target } => {
                write!(f, "instruction {pc}: control target {target} out of range")
            }
            SimError::ReturnWithoutCall { pc } => {
                write!(f, "instruction {pc}: RET with empty call stack")
            }
            SimError::DivergentCall { pc } => {
                write!(f, "instruction {pc}: CAL under divergence is unsupported")
            }
            SimError::RanOffEnd => write!(f, "execution ran past the end of the program"),
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit {limit} exhausted (runaway kernel?)")
            }
            SimError::BarrierDeadlock => write!(f, "barrier deadlock"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::MemoryOutOfBounds {
            space: "global",
            addr: 0x1000,
            size: 256,
        };
        assert!(e.to_string().contains("global"));
        assert!(e.to_string().contains("0x1000"));
        assert!(SimError::RanOffEnd.to_string().contains("past the end"));
    }
}
