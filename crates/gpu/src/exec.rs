//! Functional (architectural) semantics of the ISA.
//!
//! Integer, logic and move operations are defined *by* the SP-core gate
//! model ([`warpstl_netlist::modules::sp_core::reference`]), and SFU
//! operations by the SFU gate model, so the RT-level functional simulation
//! and the gate-level fault targets agree bit-exactly — the same relation
//! the paper has between the FlexGripPlus RTL and its synthesized netlists.
//! FP32 operations use IEEE-754 single precision.

use warpstl_isa::{CmpOp, Opcode};
use warpstl_netlist::modules::{fp32, sfu, sp_core};

/// Maps an opcode (plus its comparison modifier) to the SP-core netlist's
/// `(op, cmp)` select codes, when the instruction is executed by an SP core
/// datapath. Returns `None` for FP32, SFU, memory, control and conversion
/// operations.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::sp_op_for;
/// use warpstl_isa::{CmpOp, Opcode};
/// use warpstl_netlist::modules::sp_core;
///
/// assert_eq!(sp_op_for(Opcode::Iadd, None), Some((sp_core::OP_ADD, 0)));
/// assert_eq!(
///     sp_op_for(Opcode::Imnmx, Some(CmpOp::Gt)),
///     Some((sp_core::OP_MAX, CmpOp::Gt.to_bits()))
/// );
/// assert_eq!(sp_op_for(Opcode::Fadd, None), None);
/// ```
#[must_use]
pub fn sp_op_for(opcode: Opcode, cmp: Option<CmpOp>) -> Option<(u8, u8)> {
    use Opcode::*;
    let cmp_bits = cmp.map_or(0, CmpOp::to_bits);
    let op = match opcode {
        Iadd | Iadd32i => sp_core::OP_ADD,
        Isub => sp_core::OP_SUB,
        Imul | Imul32i => sp_core::OP_MUL,
        Imad => sp_core::OP_MAD,
        Imnmx => match cmp {
            Some(CmpOp::Gt) | Some(CmpOp::Ge) => sp_core::OP_MAX,
            _ => sp_core::OP_MIN,
        },
        Iset | Isetp => sp_core::OP_SET,
        Iabs => sp_core::OP_ABS,
        And | And32i => sp_core::OP_AND,
        Or | Or32i => sp_core::OP_OR,
        Xor | Xor32i => sp_core::OP_XOR,
        Not => sp_core::OP_NOT,
        Shl => sp_core::OP_SHL,
        Shr => sp_core::OP_SHR,
        Mov | Mov32i | S2r => sp_core::OP_MOV,
        Sel => sp_core::OP_SEL,
        _ => return None,
    };
    Some((op, cmp_bits))
}

/// Maps an FP32-class opcode (plus its comparison modifier) to the FP32
/// unit's `op` select code. `FFMA` returns `None`: it occupies the unit for
/// two passes (multiply, then add) and is captured as two patterns by the
/// hardware monitor.
#[must_use]
pub fn fp_op_for(opcode: Opcode, cmp: Option<CmpOp>) -> Option<u8> {
    use Opcode::*;
    let op = match opcode {
        Fadd | Fadd32i => fp32::OP_FADD,
        Fmul | Fmul32i => fp32::OP_FMUL,
        Fmnmx => match cmp {
            Some(CmpOp::Gt) | Some(CmpOp::Ge) => fp32::OP_FMAX,
            _ => fp32::OP_FMIN,
        },
        _ => return None,
    };
    Some(op)
}

/// Maps an SFU opcode to the SFU netlist's function select.
#[must_use]
pub fn sfu_func_for(opcode: Opcode) -> Option<u8> {
    let f = match opcode {
        Opcode::Rcp => sfu::F_RCP,
        Opcode::Rsq => sfu::F_RSQ,
        Opcode::Sin => sfu::F_SIN,
        Opcode::Cos => sfu::F_COS,
        Opcode::Ex2 => sfu::F_EX2,
        Opcode::Lg2 => sfu::F_LG2,
        _ => return None,
    };
    Some(f)
}

/// Computes the architectural result of a non-memory, non-control operation
/// on resolved operand values.
///
/// `a`, `b`, `c` are the resolved source values: immediates and
/// special-register values are already substituted, and for `SEL` the
/// selector predicate is in `c` bit 0. Returns `(register_result,
/// predicate_result)`; exactly the fields the opcode produces are `Some`.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::exec_alu;
/// use warpstl_isa::{CmpOp, Opcode};
///
/// assert_eq!(exec_alu(Opcode::Iadd, None, 2, 3, 0), (Some(5), None));
/// assert_eq!(
///     exec_alu(Opcode::Isetp, Some(CmpOp::Lt), 1, 2, 0),
///     (None, Some(true))
/// );
/// let two = 2.0f32.to_bits();
/// let (r, _) = exec_alu(Opcode::Fmul, None, two, two, 0);
/// assert_eq!(f32::from_bits(r.unwrap()), 4.0);
/// ```
#[must_use]
pub fn exec_alu(
    opcode: Opcode,
    cmp: Option<CmpOp>,
    a: u32,
    b: u32,
    c: u32,
) -> (Option<u32>, Option<bool>) {
    use Opcode::*;

    // SP-core datapath operations.
    if let Some((op, cmp_bits)) = sp_op_for(opcode, cmp) {
        let (y, flag) = sp_core::reference(op, cmp_bits, a, b, c);
        return match opcode {
            Isetp => (None, Some(flag)),
            _ => (Some(y), None),
        };
    }
    // SFU datapath operations.
    if let Some(f) = sfu_func_for(opcode) {
        return (Some(sfu::reference(f, a)), None);
    }

    // FP32-unit datapath operations (the gate model defines the
    // architectural result, as for the SP core and the SFU).
    if let Some(op) = fp_op_for(opcode, cmp) {
        return (Some(fp32::reference(op, a, b)), None);
    }

    let fa = f32::from_bits(a);
    let fb = f32::from_bits(b);
    match opcode {
        // FFMA occupies the FP32 unit twice: multiply, then add.
        Ffma => {
            let prod = fp32::reference(fp32::OP_FMUL, a, b);
            (Some(fp32::reference(fp32::OP_FADD, prod, c)), None)
        }
        Fset => {
            let flag = cmp.unwrap_or(CmpOp::Lt).eval_f32(fa, fb);
            (Some(flag as u32), None)
        }
        Fsetp => {
            let flag = cmp.unwrap_or(CmpOp::Lt).eval_f32(fa, fb);
            (None, Some(flag))
        }
        I2f => (Some(((a as i32) as f32).to_bits()), None),
        F2i => (Some((fa as i32) as u32), None),
        F2f => (Some(fa.to_bits()), None),
        I2i => (Some((a as u16 as i16 as i32) as u32), None),
        Nop => (None, None),
        _ => panic!("exec_alu called on non-ALU opcode {opcode}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops_match_sp_reference_semantics() {
        // IMUL is defined as the SP core's 16x16 product.
        let (r, _) = exec_alu(Opcode::Imul, None, 0x0002_0003, 0x0005_0007, 0);
        assert_eq!(r, Some(3 * 7));
        let (r, _) = exec_alu(Opcode::Isub, None, 3, 5, 0);
        assert_eq!(r, Some((-2i32) as u32));
        let (r, _) = exec_alu(Opcode::Iabs, None, (-9i32) as u32, 0, 0);
        assert_eq!(r, Some(9));
    }

    #[test]
    fn min_max_via_cmp_modifier() {
        let (min, _) = exec_alu(Opcode::Imnmx, Some(CmpOp::Lt), 5, 9, 0);
        assert_eq!(min, Some(5));
        let (max, _) = exec_alu(Opcode::Imnmx, Some(CmpOp::Gt), 5, 9, 0);
        assert_eq!(max, Some(9));
    }

    #[test]
    fn predicate_writers_return_predicates() {
        let (r, p) = exec_alu(Opcode::Isetp, Some(CmpOp::Ge), 7, 7, 0);
        assert_eq!(r, None);
        assert_eq!(p, Some(true));
        let (r, p) = exec_alu(Opcode::Fsetp, Some(CmpOp::Ne), 0, 0, 0);
        assert_eq!(r, None);
        assert_eq!(p, Some(false));
    }

    #[test]
    fn fp_ops_follow_the_fp32_datapath() {
        // Power-of-two values are exact in the simplified datapath.
        let h = 0.5f32.to_bits();
        let (r, _) = exec_alu(Opcode::Ffma, None, h, h, 1.0f32.to_bits());
        assert_eq!(f32::from_bits(r.unwrap()), 1.25);
        let (r, _) = exec_alu(Opcode::Fmnmx, Some(CmpOp::Lt), h, 1.0f32.to_bits(), 0);
        assert_eq!(f32::from_bits(r.unwrap()), 0.5);
        let (r, _) = exec_alu(Opcode::Fadd, None, h, h, 0);
        assert_eq!(f32::from_bits(r.unwrap()), 1.0);
        // And they agree bit-exactly with the gate model's reference.
        use warpstl_netlist::modules::fp32;
        let a = 0x1234_5678u32;
        let b = 0x9abc_def0u32;
        let (r, _) = exec_alu(Opcode::Fmul, None, a, b, 0);
        assert_eq!(r, Some(fp32::reference(fp32::OP_FMUL, a, b)));
    }

    #[test]
    fn conversions() {
        let (r, _) = exec_alu(Opcode::I2f, None, (-3i32) as u32, 0, 0);
        assert_eq!(f32::from_bits(r.unwrap()), -3.0);
        let (r, _) = exec_alu(Opcode::F2i, None, (-2.75f32).to_bits(), 0, 0);
        assert_eq!(r, Some((-2i32) as u32));
        let (r, _) = exec_alu(Opcode::I2i, None, 0x1234_8000, 0, 0);
        assert_eq!(r, Some(0xffff_8000));
    }

    #[test]
    fn sfu_ops_match_datapath_reference() {
        use warpstl_netlist::modules::sfu;
        let x = 0x3f80_0000u32;
        let (r, _) = exec_alu(Opcode::Rcp, None, x, 0, 0);
        assert_eq!(r, Some(sfu::reference(sfu::F_RCP, x)));
        let (r, _) = exec_alu(Opcode::Lg2, None, x, 0, 0);
        assert_eq!(r, Some(sfu::reference(sfu::F_LG2, x)));
    }

    #[test]
    fn sel_uses_c_bit0() {
        let (r, _) = exec_alu(Opcode::Sel, None, 10, 20, 1);
        assert_eq!(r, Some(10));
        let (r, _) = exec_alu(Opcode::Sel, None, 10, 20, 0);
        assert_eq!(r, Some(20));
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn memory_ops_are_rejected() {
        let _ = exec_alu(Opcode::Ldg, None, 0, 0, 0);
    }
}
