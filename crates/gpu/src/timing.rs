//! The pipeline timing model.
//!
//! FlexGripPlus pushes one warp instruction through five stages (fetch,
//! decode, read, execute, write) with little overlap, so each warp
//! instruction costs tens of clock cycles — the paper's PTPs average ~66 cc
//! per warp instruction for ALU work and ~95 cc for memory accesses.
//! MiniGrip charges:
//!
//! ```text
//! cost = FETCH + DECODE + READ + passes × execute_cycles + memory + WRITE
//! ```
//!
//! where `passes` is `warp_size / units` for the executing unit class.

use warpstl_isa::{ExecUnit, LatencyClass, Opcode};

use crate::GpuConfig;

/// Fetch-stage cycles.
pub const FETCH: u64 = 8;
/// Decode-stage cycles.
pub const DECODE: u64 = 8;
/// Operand-read cycles.
pub const READ: u64 = 12;
/// Write-back cycles.
pub const WRITE: u64 = 10;

/// The clock cycles one warp spends executing `opcode` on `config`.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::{instruction_cost, GpuConfig};
/// use warpstl_isa::Opcode;
///
/// let cfg = GpuConfig::default();
/// let alu = instruction_cost(Opcode::Iadd, &cfg);
/// let mem = instruction_cost(Opcode::Ldg, &cfg);
/// let sfu = instruction_cost(Opcode::Rcp, &cfg);
/// assert!(mem > alu);
/// assert!(sfu > alu); // only 2 SFUs -> 16 passes
/// ```
#[must_use]
pub fn instruction_cost(opcode: Opcode, config: &GpuConfig) -> u64 {
    let class = LatencyClass::of(opcode);
    let passes = execute_passes(opcode, config) as u64;
    FETCH + DECODE + READ + passes * class.execute_cycles() + class.memory_cycles() + WRITE
}

/// How many execute passes a warp instruction needs (the warp is fed
/// through the unit array in groups).
#[must_use]
pub fn execute_passes(opcode: Opcode, config: &GpuConfig) -> usize {
    match ExecUnit::of(opcode) {
        ExecUnit::SpCore | ExecUnit::Fp32 | ExecUnit::LoadStore => config.sp_passes_per_warp(),
        ExecUnit::Sfu => config.sfu_passes_per_warp(),
        ExecUnit::Control => 1,
    }
}

/// The clock cycle, relative to issue, at which the decoder consumes the
/// instruction word (the DU pattern timestamp).
#[must_use]
pub fn decode_offset() -> u64 {
    FETCH
}

/// The clock cycle, relative to issue, at which execute pass `pass` applies
/// its operands to the execution units (the SP/SFU pattern timestamps).
#[must_use]
pub fn execute_offset(opcode: Opcode, pass: usize) -> u64 {
    FETCH + DECODE + READ + pass as u64 * LatencyClass::of(opcode).execute_cycles()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_cost_is_in_the_flexgrip_band() {
        let cfg = GpuConfig::default();
        let c = instruction_cost(Opcode::Iadd, &cfg);
        assert!((50..90).contains(&c), "ALU cost {c} outside 50..90");
    }

    #[test]
    fn memory_adds_latency() {
        let cfg = GpuConfig::default();
        assert_eq!(
            instruction_cost(Opcode::Ldg, &cfg) - instruction_cost(Opcode::Iadd, &cfg),
            30
        );
    }

    #[test]
    fn more_sp_cores_reduce_cost() {
        let c8 = instruction_cost(Opcode::Iadd, &GpuConfig::with_sp_cores(8));
        let c32 = instruction_cost(Opcode::Iadd, &GpuConfig::with_sp_cores(32));
        assert!(c32 < c8);
    }

    #[test]
    fn pattern_offsets_fall_within_cost() {
        let cfg = GpuConfig::default();
        for op in [Opcode::Iadd, Opcode::Rcp, Opcode::Ldg, Opcode::Bra] {
            let cost = instruction_cost(op, &cfg);
            assert!(decode_offset() < cost);
            let last_pass = execute_passes(op, &cfg) - 1;
            assert!(execute_offset(op, last_pass) < cost, "{op}");
        }
    }
}
