//! Kernels: a program plus launch configuration and initial memory images.

use warpstl_isa::Instruction;

use crate::{KernelConfig, Memory, SimError};

/// Initial memory images for a kernel launch.
#[derive(Debug, Clone)]
pub struct KernelData {
    global: Memory,
    constant: Memory,
}

impl KernelData {
    /// Empty images sized per the default GPU configuration.
    #[must_use]
    pub fn new(global_bytes: usize, const_bytes: usize) -> KernelData {
        KernelData {
            global: Memory::new("global", global_bytes),
            constant: Memory::new("constant", const_bytes),
        }
    }

    /// Writes a word into the initial global-memory image.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] when `addr` exceeds the image.
    pub fn store_global_word(&mut self, addr: u64, value: u32) -> Result<(), SimError> {
        self.global.store_word(addr, value)
    }

    /// Writes a word into the constant-memory image.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] when `addr` exceeds the image.
    pub fn store_const_word(&mut self, addr: u64, value: u32) -> Result<(), SimError> {
        self.constant.store_word(addr, value)
    }

    /// The initial global memory image.
    #[must_use]
    pub fn global(&self) -> &Memory {
        &self.global
    }

    /// The constant memory image.
    #[must_use]
    pub fn constant(&self) -> &Memory {
        &self.constant
    }
}

/// A kernel: name, program, launch configuration and initial data.
///
/// # Examples
///
/// ```
/// use warpstl_gpu::{Kernel, KernelConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = warpstl_isa::asm::assemble("EXIT;")?;
/// let k = Kernel::new("noop", program, KernelConfig::new(1, 32));
/// assert_eq!(k.program.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (reports only).
    pub name: String,
    /// The instruction sequence.
    pub program: Vec<Instruction>,
    /// Launch configuration.
    pub config: KernelConfig,
    /// Initial memory images.
    pub data: KernelData,
}

impl Kernel {
    /// Creates a kernel with default-sized, zeroed memory images.
    #[must_use]
    pub fn new(name: &str, program: Vec<Instruction>, config: KernelConfig) -> Kernel {
        let gpu_defaults = crate::GpuConfig::default();
        Kernel {
            name: name.to_string(),
            program,
            config,
            data: KernelData::new(gpu_defaults.global_mem_bytes, gpu_defaults.const_mem_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_images_initialize() {
        let mut d = KernelData::new(64, 32);
        d.store_global_word(4, 9).unwrap();
        d.store_const_word(0, 5).unwrap();
        assert_eq!(d.global().load_word(4).unwrap(), 9);
        assert_eq!(d.constant().load_word(0).unwrap(), 5);
        assert!(d.store_global_word(64, 0).is_err());
    }
}
