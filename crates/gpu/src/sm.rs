//! The streaming-multiprocessor executor: runs one block's warps through
//! the five-stage pipeline, serially per warp instruction, with tracing and
//! module pattern capture.

use warpstl_isa::{encoding, ExecUnit, Instruction, Opcode, SpecialReg, SrcOperand};

use crate::exec::{exec_alu, fp_op_for, sfu_func_for, sp_op_for};
use crate::timing::{decode_offset, execute_offset, instruction_cost};
use crate::trace::{ModulePatterns, Trace, TraceRecord};
use crate::warp::Warp;
use crate::{GpuConfig, Memory, RunOptions, SimError};

pub(crate) struct BlockExec<'a> {
    config: &'a GpuConfig,
    opts: &'a RunOptions,
    program: &'a [Instruction],
    encoded: &'a [u64],
    block: usize,
    threads: usize,
    warps: Vec<Warp>,
    regs: Vec<u32>,
    preds: Vec<bool>,
    shared: Memory,
    local: Vec<u32>,
    /// Scoreboard shadow for the Decoder Unit pattern: the previous decoded
    /// instruction's destination register and write-enable.
    prev_dst: u8,
    prev_we: bool,
}

impl<'a> BlockExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: &'a GpuConfig,
        opts: &'a RunOptions,
        program: &'a [Instruction],
        encoded: &'a [u64],
        block: usize,
        threads: usize,
    ) -> BlockExec<'a> {
        let n_warps = threads.div_ceil(config.warp_size);
        let warps = (0..n_warps)
            .map(|w| {
                let lo = w * config.warp_size;
                let width = config.warp_size.min(threads - lo);
                Warp::new(w, width)
            })
            .collect();
        BlockExec {
            config,
            opts,
            program,
            encoded,
            block,
            threads,
            warps,
            regs: vec![0; threads * config.regs_per_thread],
            preds: vec![false; threads * 4],
            shared: Memory::new("shared", config.shared_mem_bytes),
            local: vec![0; threads * config.local_mem_bytes.div_ceil(4)],
            prev_dst: 0,
            prev_we: false,
        }
    }

    fn reg(&self, tid: usize, r: u8) -> u32 {
        self.regs[tid * self.config.regs_per_thread + r as usize]
    }

    fn set_reg(&mut self, tid: usize, r: u8, v: u32, signatures: &mut [u32]) {
        self.regs[tid * self.config.regs_per_thread + r as usize] = v;
        let s = &mut signatures[tid];
        *s = s.rotate_left(1) ^ v;
    }

    fn pred(&self, tid: usize, p: u8) -> bool {
        if p >= 4 {
            return true; // PT
        }
        self.preds[tid * 4 + p as usize]
    }

    fn special(&self, tid: usize, sr: SpecialReg) -> u32 {
        match sr {
            SpecialReg::TidX => tid as u32,
            SpecialReg::CtaIdX => self.block as u32,
            SpecialReg::NTidX => self.threads as u32,
            SpecialReg::LaneId => (tid % self.config.warp_size) as u32,
            SpecialReg::WarpId => (tid / self.config.warp_size) as u32,
        }
    }

    /// Resolves the (a, b, c) operand values for `tid`.
    fn operands(&self, instr: &Instruction, tid: usize) -> (u32, u32, u32) {
        let mut vals = [0u32; 3];
        for (i, s) in instr.srcs.iter().take(3).enumerate() {
            vals[i] = match s {
                SrcOperand::Reg(r) => self.reg(tid, r.index()),
                SrcOperand::Imm(v) => *v as u32,
                SrcOperand::Special(sr) => self.special(tid, *sr),
                SrcOperand::Pred(p) => self.pred(tid, p.index()) as u32,
                SrcOperand::Mem(_) => 0,
            };
        }
        (vals[0], vals[1], vals[2])
    }

    fn guard_mask(&self, instr: &Instruction, warp: &Warp) -> u32 {
        let base = warp.id() * self.config.warp_size;
        let mut mask = 0u32;
        let active = warp.active_mask();
        for lane in 0..self.config.warp_size {
            if active >> lane & 1 == 0 {
                continue;
            }
            let tid = base + lane;
            if tid >= self.threads {
                continue;
            }
            let pv = if instr.guard.pred.is_true() {
                true
            } else {
                self.pred(tid, instr.guard.pred.index())
            };
            if instr.guard.passes(pv) {
                mask |= 1 << lane;
            }
        }
        mask
    }

    fn check_target(&self, pc: usize, target: Option<usize>) -> Result<usize, SimError> {
        match target {
            Some(t) if t <= self.program.len() => Ok(t),
            Some(t) => Err(SimError::BadTarget { pc, target: t }),
            None => Err(SimError::BadTarget {
                pc,
                target: usize::MAX,
            }),
        }
    }

    /// Executes one instruction for warp `w`, advancing `cc`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step_warp(
        &mut self,
        w: usize,
        cc: &mut u64,
        trace: &mut Trace,
        patterns: &mut ModulePatterns,
        signatures: &mut [u32],
        global: &mut Memory,
        constant: &Memory,
    ) -> Result<(), SimError> {
        let pc = self.warps[w].pc();
        if pc >= self.program.len() {
            return Err(SimError::RanOffEnd);
        }
        let instr = &self.program[pc];
        let op = instr.opcode;
        let cost = instruction_cost(op, self.config);
        let cc_start = *cc;
        *cc = cc_start + cost;

        let active = self.warps[w].active_mask();
        if self.opts.trace {
            trace.push(TraceRecord {
                cc_start,
                cc_end: *cc,
                pc,
                block: self.block,
                warp: w,
                opcode: op,
                active_mask: active,
            });
        }
        if self.opts.capture_du {
            let bits = warpstl_netlist::modules::decoder_unit::pack_pattern(
                self.encoded[pc],
                pc as u16,
                self.prev_dst,
                self.prev_we,
            );
            patterns.du.push_bits(cc_start + decode_offset(), &bits);
        }
        self.prev_we = instr.dst.is_some();
        self.prev_dst = instr.dst.map_or(0, |d| d.index());

        let guard = self.guard_mask(instr, &self.warps[w]);
        let base = w * self.config.warp_size;

        match op {
            // --- Control flow ---
            Opcode::Bra => {
                let t = self.check_target(pc, instr.target())?;
                self.warps[w].diverge(t, guard)?;
            }
            Opcode::Ssy => {
                let t = self.check_target(pc, instr.target())?;
                self.warps[w].push_sync(t);
                self.warps[w].advance();
            }
            Opcode::Sync => self.warps[w].sync(),
            Opcode::Bar => {
                self.warps[w].set_at_barrier(true);
                self.warps[w].advance();
            }
            Opcode::Cal => {
                let t = self.check_target(pc, instr.target())?;
                self.warps[w].call(t)?;
            }
            Opcode::Ret => self.warps[w].ret()?,
            Opcode::Exit => {
                let _ = self.warps[w].exit();
            }
            Opcode::Nop => self.warps[w].advance(),

            // --- Memory ---
            _ if op.is_memory() => {
                let m = instr
                    .mem_ref()
                    .ok_or(SimError::BadTarget { pc, target: 0 })?;
                for lane in 0..self.config.warp_size {
                    if guard >> lane & 1 == 0 {
                        continue;
                    }
                    let tid = base + lane;
                    if tid >= self.threads {
                        continue;
                    }
                    let addr = self.reg(tid, m.base.index()) as u64 + m.offset as u64;
                    match op {
                        Opcode::Ldg => {
                            let v = global.load_word(addr)?;
                            let d = instr.dst.expect("load has dst").index();
                            self.set_reg(tid, d, v, signatures);
                        }
                        Opcode::Ldc => {
                            let v = constant.load_word(addr)?;
                            let d = instr.dst.expect("load has dst").index();
                            self.set_reg(tid, d, v, signatures);
                        }
                        Opcode::Lds => {
                            let v = self.shared.load_word(addr)?;
                            let d = instr.dst.expect("load has dst").index();
                            self.set_reg(tid, d, v, signatures);
                        }
                        Opcode::Ldl => {
                            let v = self.load_local(tid, addr)?;
                            let d = instr.dst.expect("load has dst").index();
                            self.set_reg(tid, d, v, signatures);
                        }
                        Opcode::Stg => {
                            let v = self.store_value(instr, tid);
                            global.store_word(addr, v)?;
                        }
                        Opcode::Sts => {
                            let v = self.store_value(instr, tid);
                            self.shared.store_word(addr, v)?;
                        }
                        Opcode::Stl => {
                            let v = self.store_value(instr, tid);
                            self.store_local(tid, addr, v)?;
                        }
                        _ => unreachable!("memory opcode {op}"),
                    }
                }
                self.warps[w].advance();
            }

            // --- ALU / FP / SFU / moves ---
            _ => {
                let units = match ExecUnit::of(op) {
                    ExecUnit::Sfu => self.config.sfus,
                    _ => self.config.sp_cores,
                };
                let sp_sel = sp_op_for(op, instr.cmp);
                let sfu_sel = sfu_func_for(op);
                let fp_sel = fp_op_for(op, instr.cmp);
                for lane in 0..self.config.warp_size {
                    let tid = base + lane;
                    if tid >= self.threads {
                        break;
                    }
                    let is_active = active >> lane & 1 == 1;
                    if !is_active {
                        continue;
                    }
                    let (a, b, c) = self.operands(instr, tid);
                    // Pattern capture: active lanes drive the unit whether
                    // or not the guard lets them write back.
                    let pass = lane / units;
                    let unit = lane % units;
                    let pat_cc = cc_start + execute_offset(op, pass);
                    if self.opts.capture_sp {
                        if let Some((spop, cmpb)) = sp_sel {
                            let bits = warpstl_netlist::modules::sp_core::pack_pattern(
                                spop, cmpb, a, b, c,
                            );
                            patterns.sp[unit].push_bits(pat_cc, &bits);
                        }
                    }
                    if self.opts.capture_sfu {
                        if let Some(f) = sfu_sel {
                            let bits = warpstl_netlist::modules::sfu::pack_pattern(f, a);
                            patterns.sfu[unit].push_bits(pat_cc, &bits);
                        }
                    }
                    if self.opts.capture_fp32 {
                        use warpstl_netlist::modules::fp32;
                        if let Some(fop) = fp_sel {
                            let bits = fp32::pack_pattern(fop, a, b);
                            patterns.fp32[unit].push_bits(pat_cc, &bits);
                        } else if op == Opcode::Ffma {
                            // FFMA occupies the unit twice: multiply, then
                            // add of the product and the addend.
                            let bits = fp32::pack_pattern(fp32::OP_FMUL, a, b);
                            patterns.fp32[unit].push_bits(pat_cc, &bits);
                            let prod = fp32::reference(fp32::OP_FMUL, a, b);
                            let bits = fp32::pack_pattern(fp32::OP_FADD, prod, c);
                            patterns.fp32[unit].push_bits(pat_cc + 1, &bits);
                        }
                    }
                    if guard >> lane & 1 == 0 {
                        continue;
                    }
                    let (result, pred_result) = exec_alu(op, instr.cmp, a, b, c);
                    if let (Some(v), Some(d)) = (result, instr.dst) {
                        self.set_reg(tid, d.index(), v, signatures);
                    }
                    if let (Some(pv), Some(p)) = (pred_result, instr.pdst) {
                        self.preds[tid * 4 + p.index() as usize] = pv;
                    }
                }
                self.warps[w].advance();
            }
        }
        Ok(())
    }

    fn store_value(&self, instr: &Instruction, tid: usize) -> u32 {
        match instr.srcs.get(1) {
            Some(SrcOperand::Reg(r)) => self.reg(tid, r.index()),
            _ => 0,
        }
    }

    fn local_words_per_thread(&self) -> usize {
        self.config.local_mem_bytes.div_ceil(4)
    }

    fn load_local(&self, tid: usize, addr: u64) -> Result<u32, SimError> {
        let wpt = self.local_words_per_thread();
        let idx = (addr / 4) as usize;
        if idx >= wpt {
            return Err(SimError::MemoryOutOfBounds {
                space: "local",
                addr,
                size: wpt * 4,
            });
        }
        Ok(self.local[tid * wpt + idx])
    }

    fn store_local(&mut self, tid: usize, addr: u64, v: u32) -> Result<(), SimError> {
        let wpt = self.local_words_per_thread();
        let idx = (addr / 4) as usize;
        if idx >= wpt {
            return Err(SimError::MemoryOutOfBounds {
                space: "local",
                addr,
                size: wpt * 4,
            });
        }
        self.local[tid * wpt + idx] = v;
        Ok(())
    }

    /// Runs the whole block to completion.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        &mut self,
        cc: &mut u64,
        trace: &mut Trace,
        patterns: &mut ModulePatterns,
        signatures: &mut [u32],
        global: &mut Memory,
        constant: &Memory,
    ) -> Result<(), SimError> {
        loop {
            let mut progressed = false;
            for w in 0..self.warps.len() {
                if self.warps[w].is_done() || self.warps[w].at_barrier() {
                    continue;
                }
                self.step_warp(w, cc, trace, patterns, signatures, global, constant)?;
                progressed = true;
                if *cc > self.config.max_cycles {
                    return Err(SimError::CycleLimit {
                        limit: self.config.max_cycles,
                    });
                }
            }
            let all_done = self.warps.iter().all(Warp::is_done);
            if all_done {
                return Ok(());
            }
            let waiting = self
                .warps
                .iter()
                .filter(|w| !w.is_done() && w.at_barrier())
                .count();
            let not_done = self.warps.iter().filter(|w| !w.is_done()).count();
            if waiting == not_done && waiting > 0 {
                // Barrier satisfied by every live warp: release.
                for w in &mut self.warps {
                    w.set_at_barrier(false);
                }
                progressed = true;
            }
            if !progressed {
                return Err(SimError::BarrierDeadlock);
            }
        }
    }
}

/// Encodes a program once for DU pattern capture.
pub(crate) fn encode_program(program: &[Instruction]) -> Vec<u64> {
    encoding::encode_program(program)
}
