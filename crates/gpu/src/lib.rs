#![warn(missing_docs)]
//! # warpstl-gpu
//!
//! MiniGrip: a cycle-level SIMT GPU model in the mould of FlexGripPlus (the
//! open-source G80-compatible model the paper evaluates on). One streaming
//! multiprocessor executes kernels written in the [`warpstl-isa`](warpstl_isa)
//! assembly: warps of 32 threads flow through a five-stage pipeline
//! (fetch, decode, read, execute, write) largely serially — which is why
//! FlexGripPlus test programs cost tens of clock cycles per instruction —
//! with 8/16/32 SP cores, paired FP32 units and two SFUs, a general-purpose
//! register file, shared/global/constant/local memories, and a SIMT
//! divergence stack driven by `SSY`/`BRA`/`SYNC`.
//!
//! Two observation features exist purely for the compaction flow:
//!
//! - the **hardware monitor** ([`Trace`]) records, per executed warp
//!   instruction, the clock-cycle interval, PC, warp id and active mask —
//!   the paper's RT-level *tracing report*;
//! - **module pattern capture** records the per-clock-cycle input vectors
//!   seen by the Decoder Unit, each SP core and each SFU — the paper's
//!   gate-level *test pattern report* (VCDE).
//!
//! # Examples
//!
//! ```
//! use warpstl_gpu::{Gpu, Kernel, KernelConfig, RunOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = warpstl_isa::asm::assemble(
//!     "S2R R0, SR_TID_X;\n\
//!      SHL R1, R0, 0x2;\n\
//!      LDG R2, [R1];\n\
//!      IADD R2, R2, 0x5;\n\
//!      STG [R1+0x100], R2;\n\
//!      EXIT;",
//! )?;
//! let mut kernel = Kernel::new("add5", program, KernelConfig::new(1, 32));
//! for t in 0..32 {
//!     kernel.data.store_global_word(t * 4, t as u32 * 10)?;
//! }
//! let gpu = Gpu::default();
//! let result = gpu.run(&kernel, &RunOptions::default())?;
//! assert_eq!(result.global_mem.load_word(0x100 + 3 * 4)?, 35);
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

mod config;
mod error;
mod exec;
mod kernel;
mod memory;
mod run;
mod sm;
mod timing;
mod trace;
mod warp;

pub use config::{GpuConfig, KernelConfig};
pub use error::SimError;
pub use exec::{exec_alu, fp_op_for, sfu_func_for, sp_op_for};
pub use kernel::{Kernel, KernelData};
pub use memory::Memory;
pub use run::{Gpu, RunOptions, RunResult};
pub use timing::instruction_cost;
pub use trace::{ModulePatterns, Trace, TraceRecord};
pub use warp::Warp;
