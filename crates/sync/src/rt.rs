//! The execution runtime behind the model checker.
//!
//! Real OS threads run the model's threads, but a scheduler thread (the
//! caller of [`run_once`]) permits exactly one of them to advance at a
//! time. Every synchronization operation parks the thread and publishes
//! the operation it is *about to* perform; the scheduler computes the set
//! of enabled threads, picks one (driven by the DFS explorer in
//! [`crate::model`]), applies the operation's bookkeeping effect, and
//! resumes that thread. Because threads only interact through these
//! published operations, the interleaving of yield points fully determines
//! the execution — which is what makes exhaustive exploration and
//! deterministic replay possible.
//!
//! Vocabulary: a *slot* is one model thread, a *vessel* is the reusable OS
//! thread carrying it (spawning an OS thread per model thread per
//! iteration would dominate the run time of small models).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once as StdOnce};

/// Panic payload used to unwind model threads abandoned after a
/// counterexample; the vessel harness swallows it.
struct Abandon;

/// The operation a parked thread will perform when next scheduled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Pending {
    /// Always enabled: plain yield points.
    Step,
    /// Always enabled: an operation on a named object (atomic, register).
    Op(usize),
    /// Enabled while the lock (keyed by address) is free.
    Lock(usize),
    /// Enabled when the condvar has a wakeup token (or in spurious mode).
    CondWake(usize),
    /// Enabled once the target thread has finished.
    Join(usize),
    /// Enabled once the once-cell has completed initialization.
    OnceWait(usize),
}

/// Lifecycle of a `OnceLock`/`Once` within one execution.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum OnceState {
    /// Some thread won the claim and is running the init closure.
    InProgress,
    /// Initialization completed; waiters may proceed.
    Done,
}

/// Outcome of a once-cell claim attempt.
pub(crate) enum OncePoll {
    /// Already initialized; read the value.
    Done,
    /// This thread won and must run the init closure.
    Won,
    /// Another thread is initializing; block until `Done`.
    Wait,
}

struct Slot {
    /// The published next operation plus its trace label; `None` while the
    /// thread is running.
    pending: Option<(Pending, &'static str)>,
    finished: bool,
}

pub(crate) struct State {
    slots: Vec<Slot>,
    /// The one thread currently allowed to run, if any.
    running: Option<usize>,
    /// Lock table: address → held.
    held: BTreeMap<usize, bool>,
    /// Condvar address → number of registered waiters.
    waiters: BTreeMap<usize, usize>,
    /// Condvar address → available wakeup tokens (capped by waiters).
    tokens: BTreeMap<usize, usize>,
    once: BTreeMap<usize, OnceState>,
    /// Stable display names for objects, in first-touch order (m0, c1, …).
    names: BTreeMap<usize, String>,
    kind_counts: BTreeMap<char, usize>,
    trace: Vec<String>,
    panic: Option<String>,
    abandoned: bool,
    spurious: bool,
}

impl State {
    fn new(spurious: bool) -> State {
        State {
            slots: Vec::new(),
            running: None,
            held: BTreeMap::new(),
            waiters: BTreeMap::new(),
            tokens: BTreeMap::new(),
            once: BTreeMap::new(),
            names: BTreeMap::new(),
            kind_counts: BTreeMap::new(),
            trace: Vec::new(),
            panic: None,
            abandoned: false,
            spurious,
        }
    }

    /// Registers `addr` under a one-letter kind on first touch and returns
    /// its display name. First-touch order is schedule-deterministic, so
    /// names are stable across replays of the same schedule.
    fn name(&mut self, addr: usize, kind: char) -> String {
        if let Some(name) = self.names.get(&addr) {
            return name.clone();
        }
        let n = self.kind_counts.entry(kind).or_insert(0);
        let name = format!("{kind}{n}");
        *n += 1;
        self.names.insert(addr, name.clone());
        name
    }
}

pub(crate) struct Exec {
    state: StdMutex<State>,
    /// Wakes the scheduler: a thread parked, finished, or panicked.
    sched: StdCondvar,
    /// Wakes parked threads: `running` changed or the execution was
    /// abandoned.
    threads: StdCondvar,
    /// The vessel pool shared across iterations of one `check()` call;
    /// model-spawned threads launch through it too.
    pool: Arc<StdMutex<Pool>>,
}

thread_local! {
    /// The execution this OS thread is currently a model thread of.
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
    /// Set while running a model thread body; the global panic hook keeps
    /// quiet for these (the counterexample carries the message instead).
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling OS thread is currently a model thread. Primitives
/// use this to decide between the scheduler protocol and passthrough.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn current() -> (Arc<Exec>, usize) {
    CURRENT
        .with(|c| c.borrow().clone())
        .expect("not inside a model execution")
}

fn install_panic_hook() {
    static HOOK: StdOnce = StdOnce::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Parks the calling model thread with `op` published and blocks until the
/// scheduler picks it. `first` marks a thread's initial park, which must
/// not clear `running` (the spawner still owns the schedule slot).
fn park(exec: &Exec, tid: usize, op: Pending, label: &'static str, first: bool) {
    let mut st = exec.state.lock().expect("model state poisoned");
    if st.abandoned {
        drop(st);
        std::panic::panic_any(Abandon);
    }
    st.slots[tid].pending = Some((op, label));
    if !first {
        st.running = None;
    }
    exec.sched.notify_all();
    while st.running != Some(tid) {
        if st.abandoned {
            drop(st);
            std::panic::panic_any(Abandon);
        }
        st = exec.threads.wait(st).expect("model state poisoned");
    }
}

/// A plain yield point (always-enabled operation).
fn step(label: &'static str) {
    let (exec, tid) = current();
    park(&exec, tid, Pending::Step, label, false);
}

// ---- hooks called by the primitives (only when `in_model()`) ----

/// Yield point for an operation on a named object (atomics, registers).
/// No-op outside a model execution, so `Register` and the atomics work in
/// plain code too.
pub(crate) fn object_point(addr: usize, kind: char, label: &'static str) {
    if !in_model() {
        return;
    }
    let (exec, tid) = current();
    // Name the object before parking so the trace line the scheduler
    // writes when applying the op can resolve it.
    exec.state
        .lock()
        .expect("model state poisoned")
        .name(addr, kind);
    park(&exec, tid, Pending::Op(addr), label, false);
}

/// Blocks until the lock at `addr` is free and marks it held.
pub(crate) fn acquire(addr: usize) {
    let (exec, tid) = current();
    exec.state
        .lock()
        .expect("model state poisoned")
        .name(addr, 'm');
    park(&exec, tid, Pending::Lock(addr), "lock", false);
}

/// Releases the lock at `addr`. Eager (no yield): everything between two
/// yield points is invisible to other threads, so a context switch at the
/// release reaches the same states as one at the releaser's next yield.
pub(crate) fn release(addr: usize) {
    let (exec, tid) = current();
    let mut st = exec.state.lock().expect("model state poisoned");
    st.held.insert(addr, false);
    let name = st.name(addr, 'm');
    let line = format!("t{tid} unlock {name}");
    st.trace.push(line);
}

/// Registers the calling thread as a waiter on the condvar at `addr`.
/// Eager: runs while the thread still owns the schedule slot, before the
/// paired mutex is released, so notifiers cannot observe a half-entered
/// wait.
pub(crate) fn cond_register(addr: usize) {
    let (exec, tid) = current();
    let mut st = exec.state.lock().expect("model state poisoned");
    *st.waiters.entry(addr).or_insert(0) += 1;
    let name = st.name(addr, 'c');
    let line = format!("t{tid} wait {name}");
    st.trace.push(line);
}

/// Parks until a wakeup token is available (or spuriously, if enabled).
pub(crate) fn cond_block(addr: usize) {
    let (exec, tid) = current();
    park(&exec, tid, Pending::CondWake(addr), "wake", false);
}

/// Makes wakeup tokens available to registered waiters. Eager, like
/// `release`. Tokens never exceed the number of registered waiters: a
/// notification with nobody waiting is lost, matching `std` semantics.
pub(crate) fn cond_notify(addr: usize, all: bool) {
    let (exec, tid) = current();
    let mut st = exec.state.lock().expect("model state poisoned");
    let waiting = st.waiters.get(&addr).copied().unwrap_or(0);
    let tokens = st.tokens.entry(addr).or_insert(0);
    if all {
        *tokens = waiting;
    } else if *tokens < waiting {
        *tokens += 1;
    }
    let label = if all { "notify_all" } else { "notify_one" };
    let name = st.name(addr, 'c');
    let line = format!("t{tid} {label} {name}");
    st.trace.push(line);
}

/// One claim attempt on the once-cell at `addr`, preceded by a yield so
/// competing initializers interleave. `Won` transitions the cell to
/// `InProgress` eagerly.
pub(crate) fn once_poll(addr: usize) -> OncePoll {
    let (exec, tid) = current();
    exec.state
        .lock()
        .expect("model state poisoned")
        .name(addr, 'o');
    park(&exec, tid, Pending::Step, "once", false);
    let mut st = exec.state.lock().expect("model state poisoned");
    match st.once.get(&addr) {
        Some(OnceState::Done) => OncePoll::Done,
        Some(OnceState::InProgress) => OncePoll::Wait,
        None => {
            st.once.insert(addr, OnceState::InProgress);
            let name = st.name(addr, 'o');
            let line = format!("t{tid} once_claim {name}");
            st.trace.push(line);
            OncePoll::Won
        }
    }
}

/// Marks the once-cell initialized, enabling `OnceWait` parkers. Eager.
pub(crate) fn once_done(addr: usize) {
    let (exec, tid) = current();
    let mut st = exec.state.lock().expect("model state poisoned");
    st.once.insert(addr, OnceState::Done);
    let name = st.name(addr, 'o');
    let line = format!("t{tid} once_done {name}");
    st.trace.push(line);
}

/// Parks until the once-cell at `addr` completes initialization.
pub(crate) fn once_wait(addr: usize) {
    let (exec, tid) = current();
    park(&exec, tid, Pending::OnceWait(addr), "once_wait", false);
}

/// A labeled always-enabled yield point (public via [`crate::model::point`]).
pub(crate) fn maybe_point(label: &'static str) {
    if in_model() {
        step(label);
    }
}

// ---- model threads ----

/// Spawns a model thread in the calling thread's execution. Must be called
/// from inside a model execution.
pub(crate) fn spawn<T, F>(body: F) -> (usize, Arc<StdMutex<Option<T>>>, Arc<Exec>)
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, _tid) = current();
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let tid = {
        let mut st = exec.state.lock().expect("model state poisoned");
        st.slots.push(Slot {
            pending: None,
            finished: false,
        });
        st.slots.len() - 1
    };
    let task = make_task(Arc::clone(&exec), tid, Arc::clone(&result), body);
    let pool = Arc::clone(&exec.pool);
    pool.lock().expect("pool poisoned").launch(Box::new(task));
    (tid, result, exec)
}

/// Parks until model thread `tid` finishes.
pub(crate) fn join(exec: &Arc<Exec>, target: usize) {
    let (my_exec, tid) = current();
    assert!(
        Arc::ptr_eq(exec, &my_exec),
        "JoinHandle used outside its execution"
    );
    park(exec, tid, Pending::Join(target), "join", false);
}

/// Wraps a model thread body with the park/finish/panic bookkeeping.
fn make_task<T, F>(
    exec: Arc<Exec>,
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
    body: F,
) -> impl FnOnce() + Send + 'static
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    move || {
        IN_MODEL.with(|f| f.set(true));
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
        let out = catch_unwind(AssertUnwindSafe(|| {
            park(&exec, tid, Pending::Step, "start", true);
            body()
        }));
        CURRENT.with(|c| *c.borrow_mut() = None);
        IN_MODEL.with(|f| f.set(false));
        match out {
            Ok(value) => {
                *result.lock().expect("model result poisoned") = Some(value);
                let mut st = exec.state.lock().expect("model state poisoned");
                st.slots[tid].finished = true;
                st.running = None;
                let line = format!("t{tid} exit");
                st.trace.push(line);
                exec.sched.notify_all();
            }
            Err(payload) if payload.is::<Abandon>() => {
                // Execution already failed; vanish quietly.
            }
            Err(payload) => {
                let msg: String = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic with non-string payload".to_string()
                };
                let mut st = exec.state.lock().expect("model state poisoned");
                st.slots[tid].finished = true;
                st.running = None;
                if st.panic.is_none() {
                    st.panic = Some(msg);
                }
                exec.sched.notify_all();
            }
        }
    }
}

// ---- vessels: reusable OS threads for the root of each iteration ----

enum VesselState {
    Idle,
    Queued(Box<dyn FnOnce() + Send>),
    Busy,
    Exit,
}

struct VesselShared {
    state: StdMutex<VesselState>,
    cv: StdCondvar,
}

/// A small pool of reusable OS threads; one `check()` call owns one pool.
pub(crate) struct Pool {
    vessels: Vec<Arc<VesselShared>>,
}

impl Pool {
    pub(crate) fn new() -> Pool {
        Pool {
            vessels: Vec::new(),
        }
    }

    fn launch(&mut self, task: Box<dyn FnOnce() + Send>) {
        for vessel in &self.vessels {
            let mut st = vessel.state.lock().expect("vessel poisoned");
            if matches!(*st, VesselState::Idle) {
                *st = VesselState::Queued(task);
                vessel.cv.notify_all();
                return;
            }
        }
        let shared = Arc::new(VesselShared {
            state: StdMutex::new(VesselState::Queued(task)),
            cv: StdCondvar::new(),
        });
        let for_thread = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("model-vessel-{}", self.vessels.len()))
            .spawn(move || vessel_loop(&for_thread))
            .expect("spawn model vessel");
        self.vessels.push(shared);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for vessel in &self.vessels {
            let mut st = vessel.state.lock().expect("vessel poisoned");
            *st = VesselState::Exit;
            vessel.cv.notify_all();
        }
    }
}

fn vessel_loop(shared: &VesselShared) {
    loop {
        let task = {
            let mut st = shared.state.lock().expect("vessel poisoned");
            loop {
                match &*st {
                    VesselState::Exit => return,
                    VesselState::Queued(_) => break,
                    VesselState::Idle | VesselState::Busy => {
                        st = shared.cv.wait(st).expect("vessel poisoned");
                    }
                }
            }
            match std::mem::replace(&mut *st, VesselState::Busy) {
                VesselState::Queued(task) => task,
                _ => unreachable!("checked above"),
            }
        };
        task();
        let mut st = shared.state.lock().expect("vessel poisoned");
        if matches!(*st, VesselState::Exit) {
            return;
        }
        *st = VesselState::Idle;
    }
}

// ---- one execution, driven by the explorer or a replay schedule ----

/// One scheduler decision: which of `n` enabled threads ran.
pub(crate) struct Branch {
    /// How many choices were available (after preemption bounding).
    pub(crate) n: usize,
    /// Index into the (sorted) choice list taken this iteration.
    pub(crate) chosen: usize,
    /// The thread id that index resolved to (for schedule strings).
    pub(crate) tid: usize,
}

/// How `run_once` picks among enabled threads.
pub(crate) enum Mode<'a> {
    /// DFS: follow the branch stack prefix, extend with first choices.
    Explore(&'a mut Vec<Branch>),
    /// Follow a recorded schedule (branch-point thread ids).
    Replay(&'a [usize]),
}

/// How one execution ended.
pub(crate) enum RunOutcome {
    /// All threads finished.
    Ok,
    /// A model thread panicked (assertion failure or bug).
    Panic(String),
    /// Every live thread was blocked.
    Deadlock,
}

fn enabled_of(st: &State, tid: usize) -> bool {
    match st.slots[tid].pending {
        None => false,
        Some((Pending::Step | Pending::Op(_), _)) => true,
        Some((Pending::Lock(a), _)) => !st.held.get(&a).copied().unwrap_or(false),
        Some((Pending::CondWake(c), _)) => {
            st.spurious || st.tokens.get(&c).copied().unwrap_or(0) > 0
        }
        Some((Pending::Join(t), _)) => st.slots[t].finished,
        Some((Pending::OnceWait(o), _)) => matches!(st.once.get(&o), Some(OnceState::Done)),
    }
}

/// Applies the chosen thread's pending operation's effect and logs it.
fn apply(st: &mut State, tid: usize) {
    let (op, label) = st.slots[tid]
        .pending
        .take()
        .expect("chosen thread not parked");
    let line = match op {
        Pending::Step => format!("t{tid} {label}"),
        Pending::Op(a) => {
            let name = st.names.get(&a).cloned().unwrap_or_default();
            format!("t{tid} {label} {name}")
        }
        Pending::Lock(a) => {
            st.held.insert(a, true);
            let name = st.name(a, 'm');
            format!("t{tid} {label} {name}")
        }
        Pending::CondWake(c) => {
            let tokens = st.tokens.entry(c).or_insert(0);
            let spurious = *tokens == 0;
            *tokens = tokens.saturating_sub(1);
            let waiters = st.waiters.entry(c).or_insert(1);
            *waiters = waiters.saturating_sub(1);
            let name = st.name(c, 'c');
            if spurious {
                format!("t{tid} {label} {name} (spurious)")
            } else {
                format!("t{tid} {label} {name}")
            }
        }
        Pending::Join(t) => format!("t{tid} {label} t{t}"),
        Pending::OnceWait(o) => {
            let name = st.name(o, 'o');
            format!("t{tid} {label} {name}")
        }
    };
    st.trace.push(line);
}

fn abandon(exec: &Exec, st: &mut State) {
    st.abandoned = true;
    exec.threads.notify_all();
}

/// Knobs shared by `run_once` and the explorer (mirrors
/// [`crate::model::ModelOpts`] without the iteration cap).
pub(crate) struct RunOpts {
    pub(crate) preemption_bound: Option<usize>,
    pub(crate) spurious: bool,
}

/// Runs the model program once under `mode`'s schedule and returns how it
/// ended plus the operation trace.
pub(crate) fn run_once(
    opts: &RunOpts,
    pool: &Arc<StdMutex<Pool>>,
    mut mode: Mode<'_>,
    root: &Arc<dyn Fn() + Send + Sync>,
) -> (RunOutcome, Vec<String>) {
    install_panic_hook();
    let exec = Arc::new(Exec {
        state: StdMutex::new(State::new(opts.spurious)),
        sched: StdCondvar::new(),
        threads: StdCondvar::new(),
        pool: Arc::clone(pool),
    });
    exec.state
        .lock()
        .expect("model state poisoned")
        .slots
        .push(Slot {
            pending: None,
            finished: false,
        });
    let root_result: Arc<StdMutex<Option<()>>> = Arc::new(StdMutex::new(None));
    let body = {
        let root = Arc::clone(root);
        move || root()
    };
    let task = make_task(Arc::clone(&exec), 0, root_result, body);
    pool.lock().expect("pool poisoned").launch(Box::new(task));

    let mut prev: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut depth = 0usize;
    let mut replay_next = 0usize;
    let outcome = loop {
        let mut st = exec.state.lock().expect("model state poisoned");
        loop {
            if st.panic.is_some() {
                break;
            }
            let quiescent =
                st.running.is_none() && st.slots.iter().all(|s| s.finished || s.pending.is_some());
            if quiescent {
                break;
            }
            st = exec.sched.wait(st).expect("model state poisoned");
        }
        if let Some(msg) = st.panic.take() {
            abandon(&exec, &mut st);
            break RunOutcome::Panic(msg);
        }
        let live: Vec<usize> = (0..st.slots.len())
            .filter(|&i| !st.slots[i].finished)
            .collect();
        if live.is_empty() {
            break RunOutcome::Ok;
        }
        let enabled: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| enabled_of(&st, i))
            .collect();
        if enabled.is_empty() {
            abandon(&exec, &mut st);
            break RunOutcome::Deadlock;
        }
        let mut choices = enabled.clone();
        if let (Some(bound), Some(p)) = (opts.preemption_bound, prev) {
            if preemptions >= bound && choices.contains(&p) {
                choices = vec![p];
            }
        }
        let tid = match &mut mode {
            Mode::Explore(stack) => {
                if depth == stack.len() {
                    stack.push(Branch {
                        n: choices.len(),
                        chosen: 0,
                        tid: choices[0],
                    });
                }
                let branch = &mut stack[depth];
                assert!(
                    branch.n == choices.len(),
                    "model program is nondeterministic across iterations \
                     (does it read clocks, OS randomness, or process-wide \
                     state initialized mid-run, e.g. a static OnceLock?)"
                );
                branch.tid = choices[branch.chosen];
                branch.tid
            }
            Mode::Replay(tids) => {
                if choices.len() == 1 {
                    choices[0]
                } else {
                    let want = tids
                        .get(replay_next)
                        .copied()
                        .unwrap_or_else(|| panic!("replay: schedule ended before the program did"));
                    replay_next += 1;
                    assert!(
                        choices.contains(&want),
                        "replay: schedule picks t{want}, which is not among \
                         the enabled threads {choices:?}"
                    );
                    want
                }
            }
        };
        depth += 1;
        if let Some(p) = prev {
            if tid != p && enabled.contains(&p) {
                preemptions += 1;
            }
        }
        prev = Some(tid);
        apply(&mut st, tid);
        st.running = Some(tid);
        drop(st);
        exec.threads.notify_all();
    };
    let trace = exec
        .state
        .lock()
        .expect("model state poisoned")
        .trace
        .clone();
    (outcome, trace)
}

/// Always-true atomic used by primitive hooks to skip the thread-local
/// lookup entirely when no checker has ever run in this process.
pub(crate) static EVER_MODELED: AtomicBool = AtomicBool::new(false);

/// Marks that a model execution exists in this process (cheap fast-path
/// gate for the primitive hooks).
pub(crate) fn mark_modeling() {
    EVER_MODELED.store(true, Ordering::Relaxed);
}

/// Fast check used by primitive hooks: `false` means no `check()` has ever
/// run, so `in_model()` cannot be true on any thread.
pub(crate) fn maybe_modeling() -> bool {
    EVER_MODELED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_first_touch_ordered_per_kind() {
        let mut st = State::new(false);
        assert_eq!(st.name(0x10, 'm'), "m0");
        assert_eq!(st.name(0x20, 'm'), "m1");
        assert_eq!(st.name(0x30, 'c'), "c0");
        assert_eq!(st.name(0x10, 'm'), "m0");
    }

    #[test]
    fn enabled_respects_lock_and_token_state() {
        let mut st = State::new(false);
        st.slots.push(Slot {
            pending: Some((Pending::Lock(1), "lock")),
            finished: false,
        });
        st.slots.push(Slot {
            pending: Some((Pending::CondWake(2), "wake")),
            finished: false,
        });
        assert!(enabled_of(&st, 0));
        st.held.insert(1, true);
        assert!(!enabled_of(&st, 0));
        assert!(!enabled_of(&st, 1));
        st.tokens.insert(2, 1);
        assert!(enabled_of(&st, 1));
        st.tokens.insert(2, 0);
        st.spurious = true;
        assert!(enabled_of(&st, 1));
    }
}
