//! Environment-variable reading with consistent, once-per-process
//! warnings.
//!
//! Every `WARPSTL_*` knob shares one failure story: an unusable value
//! warns once on stderr — in one format — and falls back; it never warns
//! again for the same variable, no matter how many subsystems re-read it.

use std::collections::BTreeSet;

use crate::Mutex;

/// Variables that have already produced a warning in this process.
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Emits the shared one-line warning for an invalid value of `var`,
/// unless this process already warned about `var`. Returns whether the
/// warning was printed (tests key off this; callers may ignore it).
pub fn warn_invalid_once(var: &'static str, value: &str, expected: &str, fallback: &str) -> bool {
    if !WARNED.lock().insert(var) {
        return false;
    }
    eprintln!(
        "warning: invalid {var} value `{value}` (expected {expected}); falling back to {fallback}"
    );
    true
}

/// Reads `var` and runs it through `parse`. Unset returns `None`
/// silently; a value `parse` rejects — or a non-Unicode value — warns
/// once via [`warn_invalid_once`] and returns `None` so the caller takes
/// its fallback path.
pub fn parsed_var<T>(
    var: &'static str,
    expected: &str,
    fallback: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    match std::env::var(var) {
        Ok(raw) => match parse(&raw) {
            Some(value) => Some(value),
            None => {
                warn_invalid_once(var, &raw, expected, fallback);
                None
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_invalid_once(var, "<non-unicode>", expected, fallback);
            None
        }
    }
}

/// [`parsed_var`] for variables whose value is the string itself (paths,
/// names). Only non-Unicode values are invalid.
pub fn string_var(var: &'static str, expected: &str, fallback: &str) -> Option<String> {
    parsed_var(var, expected, fallback, |s| Some(s.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warns_exactly_once_per_variable() {
        assert!(warn_invalid_once(
            "WARPSTL_TEST_ONCE_A",
            "x",
            "a number",
            "default"
        ));
        assert!(!warn_invalid_once(
            "WARPSTL_TEST_ONCE_A",
            "y",
            "a number",
            "default"
        ));
        assert!(warn_invalid_once(
            "WARPSTL_TEST_ONCE_B",
            "x",
            "a number",
            "default"
        ));
    }

    #[test]
    fn parsed_var_takes_valid_values_and_falls_back_on_bad_ones() {
        std::env::set_var("WARPSTL_TEST_PARSED", "8");
        let parse = |s: &str| s.parse::<usize>().ok().filter(|n| *n > 0);
        assert_eq!(
            parsed_var(
                "WARPSTL_TEST_PARSED",
                "a positive integer",
                "default",
                parse
            ),
            Some(8)
        );
        std::env::set_var("WARPSTL_TEST_PARSED", "zero");
        assert_eq!(
            parsed_var(
                "WARPSTL_TEST_PARSED",
                "a positive integer",
                "default",
                parse
            ),
            None
        );
        std::env::remove_var("WARPSTL_TEST_PARSED");
        assert_eq!(
            parsed_var(
                "WARPSTL_TEST_PARSED",
                "a positive integer",
                "default",
                parse
            ),
            None
        );
    }

    #[test]
    fn string_var_reads_utf8_values() {
        std::env::set_var("WARPSTL_TEST_STRING", "/tmp/cache");
        assert_eq!(
            string_var("WARPSTL_TEST_STRING", "a path", "no cache"),
            Some("/tmp/cache".to_string())
        );
        std::env::remove_var("WARPSTL_TEST_STRING");
        assert_eq!(
            string_var("WARPSTL_TEST_STRING", "a path", "no cache"),
            None
        );
    }
}
