//! The wrapper primitives: `std::sync` passthroughs normally, scheduler
//! yield points under `cfg(warpstl_model)` inside a model execution.
//!
//! Poisoning policy: a poisoned lock means a thread panicked while
//! holding it; the toolkit treats that as fatal everywhere, so `lock()`
//! panics rather than returning a `Result` (this is what every former
//! `.lock().expect(...)` call site did by hand). Under the model checker
//! poison is *recovered* instead — the checker reports the original panic
//! as the counterexample, and unwinding must not cascade.

use std::sync::atomic::Ordering;

#[cfg(warpstl_model)]
use crate::rt;

/// A model-aware [`std::sync::Mutex`]. `lock()` panics on poison (see the
/// module docs) and is an interleaving point under the model checker.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the calling thread until it is free.
    ///
    /// # Panics
    ///
    /// If a previous holder panicked (poison) — outside the model checker.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            rt::acquire(self as *const Mutex<T> as usize);
            // The model scheduler already guarantees exclusivity, so the
            // real lock below is uncontended; recover poison left by an
            // abandoned execution's unwinding.
            let inner = match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            return MutexGuard {
                lock: self,
                inner: Some(inner),
            };
        }
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|_| panic!("warpstl-sync: mutex poisoned by a panicking holder"));
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`]; releasing it is *not* an
/// interleaving point (a release only becomes observable at the next
/// operation anyway).
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` after `Condvar::wait` has taken the inner guard over.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let inner = self.inner.take();
        if inner.is_none() {
            return; // ownership moved into Condvar::wait
        }
        drop(inner);
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            rt::release(self.lock as *const Mutex<T> as usize);
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by Condvar::wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by Condvar::wait")
    }
}

/// A model-aware [`std::sync::Condvar`]. Under the model checker, which
/// waiter a notification wakes — and whether a wakeup is spurious — is a
/// scheduler choice, so all wakeup orders are explored.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and blocks until notified
    /// (possibly spuriously — callers must re-check their condition in a
    /// loop), then reacquires the mutex.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            let lock = guard.lock;
            let addr = self as *const Condvar as usize;
            // Register while still holding the mutex (and the schedule
            // slot): a notifier scheduled after our release always sees
            // us as waiting, preserving no-lost-wakeup up to the same
            // guarantee std gives.
            rt::cond_register(addr);
            drop(guard); // releases the model lock
            rt::cond_block(addr);
            return lock.lock();
        }
        let lock = guard.lock;
        let inner = guard.inner.take().expect("guard taken by Condvar::wait");
        drop(guard);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(|_| panic!("warpstl-sync: mutex poisoned by a panicking holder"));
        MutexGuard {
            lock,
            inner: Some(inner),
        }
    }

    /// Wakes one waiting thread, if any.
    pub fn notify_one(&self) {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            rt::cond_notify(self as *const Condvar as usize, false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            rt::cond_notify(self as *const Condvar as usize, true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

macro_rules! atomic_int {
    ($name:ident, $std:path, $prim:ty) => {
        #[doc = concat!("A model-aware [`", stringify!($std), "`]: every operation is an interleaving point under the model checker.")]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// A new atomic holding `value`.
            pub const fn new(value: $prim) -> $name {
                $name { inner: <$std>::new(value) }
            }

            fn point(&self, label: &'static str) {
                #[cfg(warpstl_model)]
                if rt::maybe_modeling() {
                    rt::object_point(self as *const $name as usize, 'a', label);
                }
                #[cfg(not(warpstl_model))]
                let _ = label;
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> $prim {
                self.point("atomic.load");
                self.inner.load(order)
            }

            /// Stores `value`.
            pub fn store(&self, value: $prim, order: Ordering) {
                self.point("atomic.store");
                self.inner.store(value, order);
            }

            /// Adds `value`, returning the previous value (one atomic
            /// read-modify-write — a single interleaving point).
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.point("atomic.fetch_add");
                self.inner.fetch_add(value, order)
            }

            /// Swaps in `value`, returning the previous value.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.point("atomic.swap");
                self.inner.swap(value, order)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(0)
            }
        }
    };
}

atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// A model-aware [`std::sync::atomic::AtomicBool`]: every operation is an
/// interleaving point under the model checker.
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new atomic holding `value`.
    #[must_use]
    pub const fn new(value: bool) -> AtomicBool {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    fn point(&self, label: &'static str) {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() {
            rt::object_point(self as *const AtomicBool as usize, 'a', label);
        }
        #[cfg(not(warpstl_model))]
        let _ = label;
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> bool {
        self.point("atomic.load");
        self.inner.load(order)
    }

    /// Stores `value`.
    pub fn store(&self, value: bool, order: Ordering) {
        self.point("atomic.store");
        self.inner.store(value, order);
    }

    /// Swaps in `value`, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.point("atomic.swap");
        self.inner.swap(value, order)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

/// A model-aware [`std::sync::OnceLock`]. Under the model checker the
/// initialization race is explored: which thread runs the closure and
/// which threads block on it is a scheduler choice.
///
/// Model caveat: a `static` `OnceLock` that gets initialized *during* a
/// model execution makes later iterations see different interleavings
/// than the first, which the checker rejects as nondeterminism —
/// initialize process-wide statics before `model::check`, or keep the
/// cell per-execution.
pub struct OnceLock<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// A new empty cell.
    #[must_use]
    pub const fn new() -> OnceLock<T> {
        OnceLock {
            inner: std::sync::OnceLock::new(),
        }
    }

    /// The value, if initialized.
    pub fn get(&self) -> Option<&T> {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() {
            rt::object_point(self as *const OnceLock<T> as usize, 'o', "oncelock.get");
        }
        self.inner.get()
    }

    /// Returns the value, initializing it with `f` if empty. Exactly one
    /// caller runs `f`; concurrent callers block until it finishes.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            return self.model_get_or_init(f);
        }
        self.inner.get_or_init(f)
    }

    #[cfg(warpstl_model)]
    fn model_get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        let addr = self as *const OnceLock<T> as usize;
        if let Some(value) = self.inner.get() {
            rt::object_point(addr, 'o', "oncelock.get");
            return value;
        }
        let mut f = Some(f);
        loop {
            match rt::once_poll(addr) {
                rt::OncePoll::Done => {
                    return self.inner.get().expect("once-cell done without a value")
                }
                rt::OncePoll::Won => {
                    let value = (f.take().expect("once claim won twice"))();
                    let _ = self.inner.set(value);
                    rt::once_done(addr);
                    return self.inner.get().expect("value was just set");
                }
                rt::OncePoll::Wait => rt::once_wait(addr),
            }
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A model-aware [`std::sync::Once`]. Same exploration semantics (and the
/// same `static` caveat) as [`OnceLock`].
pub struct Once {
    inner: std::sync::Once,
}

impl Once {
    /// A new once-cell.
    #[must_use]
    pub const fn new() -> Once {
        Once {
            inner: std::sync::Once::new(),
        }
    }

    /// Runs `f` if no call has completed yet; otherwise blocks until the
    /// running call finishes.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        #[cfg(warpstl_model)]
        if rt::maybe_modeling() && rt::in_model() {
            self.model_call_once(f);
            return;
        }
        self.inner.call_once(f);
    }

    #[cfg(warpstl_model)]
    fn model_call_once<F: FnOnce()>(&self, f: F) {
        let addr = self as *const Once as usize;
        if self.inner.is_completed() {
            rt::object_point(addr, 'o', "once.check");
            return;
        }
        let mut f = Some(f);
        loop {
            match rt::once_poll(addr) {
                rt::OncePoll::Done => return,
                rt::OncePoll::Won => {
                    self.inner
                        .call_once(f.take().expect("once claim won twice"));
                    rt::once_done(addr);
                    return;
                }
                rt::OncePoll::Wait => rt::once_wait(addr),
            }
        }
    }
}

impl Default for Once {
    fn default() -> Once {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_pass_through() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let cv = Condvar::new();
        cv.notify_one(); // no waiters: lost, like std
        cv.notify_all();
    }

    #[test]
    fn atomics_pass_through() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        assert_eq!(a.swap(9, Ordering::SeqCst), 3);
        let b = AtomicBool::new(false);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));
        assert!(b.swap(false, Ordering::SeqCst));
        let u = AtomicUsize::new(0);
        u.fetch_add(7, Ordering::Relaxed);
        assert_eq!(u.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn once_cells_initialize_exactly_once() {
        let cell: OnceLock<u32> = OnceLock::new();
        assert_eq!(cell.get(), None);
        assert_eq!(*cell.get_or_init(|| 7), 7);
        assert_eq!(*cell.get_or_init(|| 8), 7);
        assert_eq!(cell.get(), Some(&7));
        let once = Once::new();
        let mut calls = 0;
        once.call_once(|| calls += 1);
        once.call_once(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn condvar_wakes_real_waiters() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        *pair.0.lock() = true;
        pair.1.notify_one();
        waiter.join().expect("waiter thread");
    }
}
