//! A schedule-exploring model checker for the crate's primitives.
//!
//! [`check`] runs a closure — the *model program* — under every reachable
//! interleaving of its threads' synchronization operations, up to a
//! preemption bound, and reports the first assertion failure or deadlock
//! as a [`Counterexample`] whose schedule string replays deterministically
//! via [`replay`]. Threads are spawned with [`spawn`] (not
//! `std::thread::spawn`: the checker must own scheduling); extra
//! interleaving points can be injected with [`point`] or a [`Register`].
//!
//! Exploration is a depth-first search over scheduler choices. At every
//! point where more than one thread could advance, the checker tries each
//! in turn, backtracking by re-running the program along a recorded
//! decision prefix — so the model program must be deterministic apart from
//! scheduling: no clocks, no OS randomness, no process-wide state that
//! changes between iterations (a `static` `OnceLock` initialized mid-run
//! is the classic trap; initialize it before calling [`check`]).
//!
//! The crate's `Mutex`/`Condvar`/atomics/`OnceLock` participate as
//! interleaving points only when the workspace is compiled with
//! `RUSTFLAGS="--cfg warpstl_model"`; [`Register`] and [`point`] always
//! participate, which keeps the checker itself testable in normal builds.
//!
//! ```
//! use warpstl_sync::model;
//!
//! // Two unsynchronized read-modify-write threads lose an update under
//! // some schedule; the checker finds it.
//! let result = model::check(|| {
//!     let cell = std::sync::Arc::new(model::Register::new(0));
//!     let a = {
//!         let cell = cell.clone();
//!         model::spawn(move || cell.set(cell.get() + 1))
//!     };
//!     let b = {
//!         let cell = cell.clone();
//!         model::spawn(move || cell.set(cell.get() + 1))
//!     };
//!     a.join();
//!     b.join();
//!     assert_eq!(cell.get(), 2, "lost update");
//! });
//! assert!(result.is_err());
//! ```

use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::{self, Branch, Mode, Pool, RunOpts, RunOutcome};

/// Exploration knobs for [`check_with`] and [`replay`].
#[derive(Debug, Clone)]
pub struct ModelOpts {
    /// Maximum number of preemptive context switches per execution
    /// (switching away from a thread that could still run). `None` is
    /// unbounded. Almost all real concurrency bugs trip within 2
    /// preemptions, and the bound cuts the schedule space from
    /// exponential to polynomial.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions; exploration that hits it returns
    /// [`ModelStats::complete`]` == false` rather than running forever.
    pub max_iterations: usize,
    /// Also explore spurious condvar wakeups (wakeups without a
    /// notification). Costs extra schedules; enable for wait-loop models.
    pub spurious: bool,
}

impl Default for ModelOpts {
    fn default() -> ModelOpts {
        ModelOpts {
            preemption_bound: Some(2),
            max_iterations: 50_000,
            spurious: false,
        }
    }
}

/// What a completed exploration covered.
#[derive(Debug, Clone, Copy)]
pub struct ModelStats {
    /// Number of distinct executions run.
    pub iterations: usize,
    /// Whether the schedule space (within the preemption bound) was
    /// exhausted; `false` means `max_iterations` truncated the search.
    pub complete: bool,
}

/// A failing execution: the bug, the schedule that reaches it, and the
/// operation trace along the way.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The panic message or `"deadlock: ..."`.
    pub message: String,
    /// Branch-point thread ids, dot-separated (e.g. `"1.0.1"`): at every
    /// scheduler decision with more than one enabled thread, the id that
    /// ran. Feed to [`replay`] with the same [`ModelOpts`].
    pub schedule: String,
    /// Human-readable operation log of the failing execution, one line
    /// per scheduled operation (`t1 lock m0`, `t0 notify_one c0`, ...).
    pub trace: Vec<String>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model counterexample: {}", self.message)?;
        writeln!(
            f,
            "schedule: {}",
            if self.schedule.is_empty() {
                "(deterministic)"
            } else {
                &self.schedule
            }
        )?;
        writeln!(f, "trace:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

fn counterexample(stack: &[Branch], trace: Vec<String>, message: String) -> Box<Counterexample> {
    let schedule: Vec<String> = stack
        .iter()
        .filter(|b| b.n > 1)
        .map(|b| b.tid.to_string())
        .collect();
    Box::new(Counterexample {
        message,
        schedule: schedule.join("."),
        trace,
    })
}

/// [`check_with`] under default options.
///
/// # Errors
///
/// The first [`Counterexample`] found, if any.
pub fn check<F>(f: F) -> Result<ModelStats, Box<Counterexample>>
where
    F: Fn() + Send + Sync + 'static,
{
    check_with(&ModelOpts::default(), f)
}

/// Explores every schedule of the model program `f` (depth-first, within
/// `opts`), returning stats on success or the first counterexample found.
///
/// `f` runs once per explored schedule and must be deterministic apart
/// from scheduling (see the module docs).
///
/// # Errors
///
/// The first [`Counterexample`] found: an assertion failure / panic in a
/// model thread, or a deadlock (every live thread blocked).
pub fn check_with<F>(opts: &ModelOpts, f: F) -> Result<ModelStats, Box<Counterexample>>
where
    F: Fn() + Send + Sync + 'static,
{
    rt::mark_modeling();
    let root: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let pool = Arc::new(StdMutex::new(Pool::new()));
    let run_opts = RunOpts {
        preemption_bound: opts.preemption_bound,
        spurious: opts.spurious,
    };
    let mut stack: Vec<Branch> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let (outcome, trace) = rt::run_once(&run_opts, &pool, Mode::Explore(&mut stack), &root);
        match outcome {
            RunOutcome::Ok => {}
            RunOutcome::Panic(message) => return Err(counterexample(&stack, trace, message)),
            RunOutcome::Deadlock => {
                return Err(counterexample(
                    &stack,
                    trace,
                    "deadlock: every live thread is blocked".to_string(),
                ))
            }
        }
        // Backtrack: advance the deepest branch point with an untried
        // choice; exploration is exhausted when none remains.
        loop {
            match stack.last_mut() {
                None => {
                    return Ok(ModelStats {
                        iterations,
                        complete: true,
                    })
                }
                Some(branch) if branch.chosen + 1 < branch.n => {
                    branch.chosen += 1;
                    break;
                }
                Some(_) => {
                    stack.pop();
                }
            }
        }
        if iterations >= opts.max_iterations {
            return Ok(ModelStats {
                iterations,
                complete: false,
            });
        }
    }
}

/// Re-runs the model program along a [`Counterexample::schedule`] recorded
/// under the same `opts`. `Ok(())` means the schedule ran clean (the bug
/// did not reproduce — e.g. the code was fixed).
///
/// # Errors
///
/// The reproduced [`Counterexample`].
///
/// # Panics
///
/// If `schedule` is malformed or inconsistent with the program (picks a
/// thread that is not enabled, or ends before the program does).
pub fn replay<F>(opts: &ModelOpts, schedule: &str, f: F) -> Result<(), Box<Counterexample>>
where
    F: Fn() + Send + Sync + 'static,
{
    rt::mark_modeling();
    let tids: Vec<usize> = schedule
        .split('.')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.parse()
                .expect("schedule must be dot-separated thread ids")
        })
        .collect();
    let root: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let pool = Arc::new(StdMutex::new(Pool::new()));
    let run_opts = RunOpts {
        preemption_bound: opts.preemption_bound,
        spurious: opts.spurious,
    };
    let (outcome, trace) = rt::run_once(&run_opts, &pool, Mode::Replay(&tids), &root);
    match outcome {
        RunOutcome::Ok => Ok(()),
        RunOutcome::Panic(message) => Err(Box::new(Counterexample {
            message,
            schedule: schedule.to_string(),
            trace,
        })),
        RunOutcome::Deadlock => Err(Box::new(Counterexample {
            message: "deadlock: every live thread is blocked".to_string(),
            schedule: schedule.to_string(),
            trace,
        })),
    }
}

/// A thread spawned with [`spawn`]; [`JoinHandle::join`] is a blocking
/// model operation.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
    exec: Arc<rt::Exec>,
}

impl<T> JoinHandle<T> {
    /// Blocks (as a model operation) until the thread finishes, then
    /// returns its value.
    ///
    /// # Panics
    ///
    /// If the joined thread panicked (the execution is already failing at
    /// that point; the checker reports the original panic).
    pub fn join(self) -> T {
        rt::join(&self.exec, self.tid);
        self.result
            .lock()
            .expect("model result poisoned")
            .take()
            .expect("joined model thread produced no value")
    }
}

/// Spawns a model thread. Panics when called outside a [`check`] /
/// [`replay`] execution — model programs own their threads; production
/// code should keep using `std::thread`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tid, result, exec) = rt::spawn(f);
    JoinHandle { tid, result, exec }
}

/// An explicit labeled interleaving point. No-op outside a model
/// execution; inside one, the scheduler may switch threads here. Use it
/// to mark steps of a protocol being modeled abstractly.
pub fn point(label: &'static str) {
    rt::maybe_point(label);
}

/// A `u64` cell whose every access is an interleaving point — in *all*
/// builds, unlike the crate's atomics, which only participate under
/// `cfg(warpstl_model)`. The checker's own tests are built on it, and it
/// is the right tool for modeling a shared variable in a protocol model.
///
/// Outside a model execution it behaves like a mutex-protected `u64`.
pub struct Register {
    value: StdMutex<u64>,
}

impl Register {
    /// A register holding `value`.
    #[must_use]
    pub const fn new(value: u64) -> Register {
        Register {
            value: StdMutex::new(value),
        }
    }

    /// Reads the value (one interleaving point).
    pub fn get(&self) -> u64 {
        rt::object_point(self as *const Register as usize, 'r', "read");
        *self.value.lock().expect("register poisoned")
    }

    /// Writes the value (one interleaving point).
    pub fn set(&self, value: u64) {
        rt::object_point(self as *const Register as usize, 'r', "write");
        *self.value.lock().expect("register poisoned") = value;
    }

    /// `get` + `set` as *two* interleaving points — deliberately not
    /// atomic, exactly like a load/modify/store race in real code.
    pub fn add(&self, delta: u64) {
        let v = self.get();
        self.set(v + delta);
    }
}
