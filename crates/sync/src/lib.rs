#![warn(missing_docs)]
//! # warpstl-sync
//!
//! The workspace's synchronization layer: thin wrappers over the
//! `std::sync` primitives that compile to zero-cost passthroughs
//! normally, plus a dependency-free, schedule-exploring **model checker**
//! ([`model`]) they route through when the workspace is built with
//! `RUSTFLAGS="--cfg warpstl_model"`.
//!
//! Why a layer at all: PR 8's store races (torn reads, gc-vs-writer
//! unlink) were found reactively, by stress tests getting lucky. The
//! wrappers make every lock, condvar wait, and atomic op an interleaving
//! point the checker can enumerate, so the synchronization protocols of
//! the serve queue, the store commit path, and the fault engine are
//! *proved* over all schedules (up to a preemption bound) instead of
//! sampled. `warpstl xlint` enforces that no crate outside this one uses
//! `std::sync` primitives directly (`Arc` excepted — it has no
//! interleaving semantics worth modeling).
//!
//! Passthrough cost: one `#[cfg]`-compiled branch that the normal build
//! does not even contain. The wrappers intentionally panic on lock
//! poisoning (the toolkit's universal policy — every former call site
//! spelled `.lock().expect(...)`), which also keeps the lock API
//! guard-shaped instead of `Result`-shaped.
//!
//! Also here, because it sits at the very bottom of the crate graph:
//! [`mod@env`], the shared once-per-process invalid-environment-variable
//! warning helper used by every `WARPSTL_*` knob.

pub mod env;
pub mod model;
mod primitives;
#[cfg_attr(not(warpstl_model), allow(dead_code))]
mod rt;

pub use primitives::{
    AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Once, OnceLock,
};
