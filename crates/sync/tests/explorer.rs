//! Self-tests for the model checker's explorer that run in *normal*
//! builds: they interleave via [`model::Register`] and [`model::point`],
//! which are always active inside a model execution, so no
//! `cfg(warpstl_model)` is needed. The primitive-interception tests live
//! in `tests/model.rs` and only run under that cfg.

use std::sync::Arc;

use warpstl_sync::model::{self, ModelOpts, Register};

/// Two threads doing `get`/`set` increments: the classic lost update.
fn lost_update_program() {
    let cell = Arc::new(Register::new(0));
    let a = {
        let cell = Arc::clone(&cell);
        model::spawn(move || cell.add(1))
    };
    let b = {
        let cell = Arc::clone(&cell);
        model::spawn(move || cell.add(1))
    };
    a.join();
    b.join();
    assert_eq!(
        cell.get(),
        2,
        "lost update: both increments read the same value"
    );
}

#[test]
fn finds_the_lost_update_and_prints_a_replayable_schedule() {
    let cx = model::check(lost_update_program).expect_err("checker must find the lost update");
    assert!(
        cx.message.contains("lost update"),
        "unexpected message: {}",
        cx.message
    );
    assert!(
        !cx.schedule.is_empty(),
        "a race needs at least one branch decision"
    );
    assert!(!cx.trace.is_empty());
    // The counterexample renders as a schedule plus an op trace.
    let shown = cx.to_string();
    assert!(shown.contains("schedule:"), "display output: {shown}");
    assert!(shown.contains("trace:"), "display output: {shown}");

    // Replaying the recorded schedule reproduces the same failure.
    let replayed = model::replay(&ModelOpts::default(), &cx.schedule, lost_update_program)
        .expect_err("the schedule must reproduce the bug");
    assert!(replayed.message.contains("lost update"));
}

#[test]
fn counterexamples_are_deterministic_across_runs() {
    let first = model::check(lost_update_program).expect_err("racy program");
    let second = model::check(lost_update_program).expect_err("racy program");
    assert_eq!(first.schedule, second.schedule, "DFS must be deterministic");
    assert_eq!(first.trace, second.trace);
}

#[test]
fn passes_a_correct_program_and_reports_exhaustive_stats() {
    // A sequential handoff has no races: exploration completes clean.
    let stats = model::check(|| {
        let cell = Arc::new(Register::new(0));
        let writer = {
            let cell = Arc::clone(&cell);
            model::spawn(move || cell.set(41))
        };
        writer.join(); // join orders the write before the read
        cell.set(cell.get() + 1);
        assert_eq!(cell.get(), 42);
    })
    .expect("correct program must verify");
    assert!(stats.complete, "tiny program must be exhaustible");
    assert!(stats.iterations >= 1);
}

#[test]
fn explores_multiple_interleavings_not_just_one() {
    // Two independent writers to distinct registers: schedules differ but
    // nothing fails; the explorer must try more than one interleaving.
    let stats = model::check(|| {
        let x = Arc::new(Register::new(0));
        let y = Arc::new(Register::new(0));
        let a = {
            let x = Arc::clone(&x);
            model::spawn(move || x.set(1))
        };
        let b = {
            let y = Arc::clone(&y);
            model::spawn(move || y.set(1))
        };
        a.join();
        b.join();
        assert_eq!((x.get(), y.get()), (1, 1));
    })
    .expect("independent writers cannot fail");
    assert!(stats.complete);
    assert!(
        stats.iterations > 1,
        "only {} interleavings explored",
        stats.iterations
    );
}

#[test]
fn preemption_bound_zero_still_finds_order_dependent_bugs() {
    // With zero preemptions the scheduler can still choose who runs at
    // each blocking/termination point — enough to flip a plain ordering
    // race (which of two atomic-free writers lands last).
    let cx = model::check_with(
        &ModelOpts {
            preemption_bound: Some(0),
            ..ModelOpts::default()
        },
        || {
            let cell = Arc::new(Register::new(0));
            let a = {
                let cell = Arc::clone(&cell);
                model::spawn(move || cell.set(1))
            };
            let b = {
                let cell = Arc::clone(&cell);
                model::spawn(move || cell.set(2))
            };
            a.join();
            b.join();
            assert_eq!(cell.get(), 2, "writer order is not fixed");
        },
    )
    .expect_err("one of the two completion orders must fail");
    assert!(cx.message.contains("writer order"));
}

#[test]
fn iteration_cap_truncates_instead_of_hanging() {
    let stats = model::check_with(
        &ModelOpts {
            max_iterations: 3,
            ..ModelOpts::default()
        },
        || {
            let cell = Arc::new(Register::new(0));
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    model::spawn(move || {
                        cell.get();
                        cell.get();
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
        },
    )
    .expect("nothing to find");
    assert!(!stats.complete, "3 iterations cannot exhaust this program");
    assert_eq!(stats.iterations, 3);
}

#[test]
fn replay_of_a_clean_schedule_returns_ok() {
    // An empty schedule on a single-threaded program: no branch points.
    let result = model::replay(&ModelOpts::default(), "", || {
        let cell = Register::new(1);
        model::point("checkpoint");
        assert_eq!(cell.get(), 1);
    });
    assert!(result.is_ok());
}

#[test]
fn labeled_points_appear_in_the_trace() {
    let cx = model::check(|| {
        model::point("before-the-bug");
        panic!("deliberate failure");
    })
    .expect_err("program always panics");
    assert!(cx.message.contains("deliberate failure"));
    assert!(
        cx.trace.iter().any(|line| line.contains("before-the-bug")),
        "trace missing labeled point: {:?}",
        cx.trace
    );
}
