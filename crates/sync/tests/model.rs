//! Primitive-interception self-tests: these prove the crate's `Mutex`,
//! `Condvar`, and `OnceLock` wrappers participate as interleaving points,
//! so they only run when the workspace is compiled with
//! `RUSTFLAGS="--cfg warpstl_model"` (see `scripts/check.sh`). The
//! centerpiece is a seeded known-racy queue the checker must catch
//! deterministically, with a schedule that replays.
#![cfg(warpstl_model)]

use std::collections::VecDeque;
use std::sync::Arc;

use warpstl_sync::model::{self, ModelOpts, Register};
use warpstl_sync::{Condvar, Mutex, OnceLock};

/// The seeded bug: `pop` checks emptiness and pops in *two* critical
/// sections, so two consumers racing over one item can both pass the
/// check.
struct RacyQueue {
    items: Mutex<VecDeque<u64>>,
}

impl RacyQueue {
    fn new() -> RacyQueue {
        RacyQueue {
            items: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, v: u64) {
        self.items.lock().push_back(v);
    }

    fn racy_pop(&self) -> Option<u64> {
        if self.items.lock().is_empty() {
            return None;
        }
        // BUG window: another consumer may drain the queue between the
        // emptiness check above and the pop below.
        Some(
            self.items
                .lock()
                .pop_front()
                .expect("queue drained between check and pop"),
        )
    }

    /// The fix: check and pop under one lock acquisition.
    fn correct_pop(&self) -> Option<u64> {
        self.items.lock().pop_front()
    }
}

fn racy_queue_program() {
    let q = Arc::new(RacyQueue::new());
    q.push(7);
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            model::spawn(move || {
                let _ = q.racy_pop();
            })
        })
        .collect();
    for c in consumers {
        c.join();
    }
}

#[test]
fn seeded_racy_queue_is_caught_deterministically_with_a_replayable_schedule() {
    let first = model::check(racy_queue_program).expect_err("checker must catch the TOCTOU pop");
    assert!(
        first
            .message
            .contains("queue drained between check and pop"),
        "unexpected counterexample: {first}"
    );
    assert!(!first.schedule.is_empty());
    // Deterministic: same bug, same schedule, every run.
    let second = model::check(racy_queue_program).expect_err("still racy");
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.trace, second.trace);
    // The printed schedule replays to the same failure.
    let replayed = model::replay(&ModelOpts::default(), &first.schedule, racy_queue_program)
        .expect_err("schedule must reproduce the bug");
    assert!(replayed
        .message
        .contains("queue drained between check and pop"));
    // And the trace shows the interleaved lock operations.
    assert!(
        first.trace.iter().any(|l| l.contains("lock")),
        "trace: {:?}",
        first.trace
    );
}

#[test]
fn single_lock_pop_verifies_exhaustively() {
    let stats = model::check(|| {
        let q = Arc::new(RacyQueue::new());
        q.push(7);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                model::spawn(move || q.correct_pop().map_or(0, |_| 1))
            })
            .collect();
        let got: u64 = consumers.into_iter().map(model::JoinHandle::join).sum();
        assert_eq!(got, 1, "exactly one consumer gets the item");
    })
    .expect("single-lock pop has no race");
    assert!(stats.complete);
}

#[test]
fn mutex_guarantees_exclusion_across_interleaved_critical_sections() {
    // The increments interleave at the Register yield points *inside*
    // the critical section; the lock must still serialize them.
    let stats = model::check(|| {
        let m = Arc::new(Mutex::new(()));
        let cell = Arc::new(Register::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    let _guard = m.lock();
                    cell.add(1); // two yield points under the lock
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(cell.get(), 2, "mutex failed to serialize increments");
    })
    .expect("locked increments cannot race");
    assert!(stats.complete);
}

#[test]
fn condvar_wait_loop_handshake_verifies() {
    let stats = model::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            model::spawn(move || {
                let (m, cv) = &*pair;
                let mut ready = m.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        waiter.join();
    })
    .expect("the canonical wait loop is correct");
    assert!(stats.complete);
}

#[test]
fn lost_wakeup_deadlock_is_detected() {
    // The bug: the consumer re-checks the flag *outside* the wait loop,
    // leaving a window where the producer's only notification fires with
    // nobody waiting — a lost wakeup, then a wait that never returns.
    let cx = model::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let consumer = {
            let pair = Arc::clone(&pair);
            model::spawn(move || {
                let (m, cv) = &*pair;
                loop {
                    if *m.lock() {
                        break;
                    }
                    // BUG window: the flag may be set — and the only
                    // notification fired — right here, after the check
                    // released the lock; the wait below then never
                    // returns.
                    let guard = m.lock();
                    let _woken = cv.wait(guard);
                }
            })
        };
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        consumer.join();
    })
    .expect_err("checker must find the lost-wakeup deadlock");
    assert!(cx.message.contains("deadlock"), "unexpected: {cx}");
    assert!(!cx.schedule.is_empty());
}

#[test]
fn oncelock_initializes_exactly_once_under_contention() {
    let stats = model::check(|| {
        let cell: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let inits = Arc::new(Register::new(0));
        let readers: Vec<_> = (0..2)
            .map(|i| {
                let cell = Arc::clone(&cell);
                let inits = Arc::clone(&inits);
                model::spawn(move || {
                    *cell.get_or_init(|| {
                        inits.add(1);
                        40 + i
                    })
                })
            })
            .collect();
        let values: Vec<u64> = readers.into_iter().map(model::JoinHandle::join).collect();
        assert_eq!(
            values[0], values[1],
            "both readers must see the winner's value"
        );
        assert_eq!(inits.get(), 1, "init closure must run exactly once");
    })
    .expect("OnceLock has no double-init schedule");
    assert!(stats.complete);
}

#[test]
fn atomics_interleave_but_rmw_is_atomic() {
    use std::sync::atomic::Ordering;
    use warpstl_sync::AtomicU64;
    // fetch_add is one interleaving point, so concurrent increments never
    // lose updates — unlike the Register's split load/store.
    let stats = model::check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect("fetch_add cannot lose updates");
    assert!(stats.complete);

    // But a load/store split on the same atomic does race.
    let cx = model::check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost atomic update");
    })
    .expect_err("load/store split must lose an update under some schedule");
    assert!(cx.message.contains("lost atomic update"));
}

#[test]
fn spurious_wakeup_mode_breaks_if_wait_is_not_in_a_loop() {
    let opts = ModelOpts {
        spurious: true,
        ..ModelOpts::default()
    };
    let cx = model::check_with(&opts, || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            model::spawn(move || {
                let (m, cv) = &*pair;
                let ready = m.lock();
                // BUG: `if` instead of `while` — a spurious wakeup slips
                // through with the flag still false.
                let ready = if !*ready { cv.wait(ready) } else { ready };
                assert!(*ready, "woke with the condition still false");
            })
        };
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        waiter.join();
    })
    .expect_err("spurious mode must catch the if-instead-of-while wait");
    assert!(
        cx.message.contains("condition still false"),
        "unexpected: {cx}"
    );
}
