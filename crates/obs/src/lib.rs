#![warn(missing_docs)]
//! # warpstl-obs
//!
//! Pipeline observability for the compaction toolkit: lightweight
//! hierarchical **spans** with monotonic timestamps, a **metrics registry**
//! (counters and histograms), and a **Chrome trace-event** exporter so a
//! full STL compaction renders in `about://tracing` / [Perfetto].
//!
//! The design goal is *zero cost when disabled*: every instrumentation
//! point takes an [`Obs`] handle — an `Option<&Recorder>` — and the `None`
//! path neither reads the clock nor formats a string nor touches a lock.
//! Enabled, a [`Recorder`] collects events behind one mutex; spans are
//! recorded once per scope (stage, worker, batch group), never per pattern,
//! so contention stays negligible next to gate evaluation.
//!
//! [Perfetto]: https://ui.perfetto.dev
//!
//! # Examples
//!
//! ```
//! use warpstl_obs::{Obs, ObsExt, Recorder};
//!
//! let rec = Recorder::new();
//! let obs: Obs<'_> = Some(&rec);
//! {
//!     let _outer = obs.span("stage", "stage.fsim");
//!     let _inner = obs.span("fsim", "fsim.worker").with_arg("batches", 42);
//!     obs.add("fsim.batches", 42);
//!     obs.record("fsim.batches_per_worker", 42.0);
//! }
//! let trace = rec.to_chrome_trace();
//! assert!(trace.contains("\"stage.fsim\""));
//! assert_eq!(rec.metrics().counter("fsim.batches"), 42);
//!
//! // Disabled: the same code, no recorder, no work.
//! let off: Obs<'_> = None;
//! let _s = off.span("stage", "stage.fsim");
//! off.add("fsim.batches", 42);
//! ```

mod metrics;
mod trace;

pub use metrics::{HistogramSummary, Metrics};

/// Well-known counter names shared by the crates that emit them and the
/// crates (CLI, tests) that read them back off a [`Metrics`] snapshot.
pub mod names {
    /// An artifact was served from the content-addressed store.
    pub const CACHE_HIT: &str = "cache.hit";
    /// A store lookup fell back to recomputation (all reasons).
    pub const CACHE_MISS: &str = "cache.miss";
    /// Subset of misses caused by a corrupt or truncated entry.
    pub const CACHE_MISS_CORRUPT: &str = "cache.miss.corrupt";
    /// Subset of misses caused by an entry-format version mismatch.
    pub const CACHE_MISS_VERSION: &str = "cache.miss.version";
    /// An artifact was written to the store.
    pub const CACHE_WRITE: &str = "cache.write";
    /// A store write failed at the filesystem (entry simply absent).
    pub const CACHE_WRITE_ERROR: &str = "cache.write.error";
    /// A serve job was accepted onto the queue.
    pub const SERVE_ACCEPTED: &str = "serve.accepted";
    /// A serve job completed and its response was written.
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// A serve job failed (bad request or compaction failure).
    pub const SERVE_FAILED: &str = "serve.failed";
    /// A serve job was rejected with 429 because the queue was full.
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// One campaign matrix cell ran (span name; counters below tally it).
    pub const CAMPAIGN_CELL: &str = "campaign.cell";
    /// A campaign cell completed with at least one artifact-store hit.
    pub const CAMPAIGN_HIT: &str = "campaign.hit";
    /// A campaign cell completed without a single artifact-store hit.
    pub const CAMPAIGN_MISS: &str = "campaign.miss";
    /// A campaign cell failed (bad request or compaction failure).
    pub const CAMPAIGN_FAILED: &str = "campaign.failed";
}

use std::collections::BTreeMap;
use std::thread::ThreadId;
use std::time::Instant;
use warpstl_sync::Mutex;

/// The handle instrumented code passes around: `Some` records into the
/// [`Recorder`], `None` is a guaranteed no-op (no clock reads, no locks,
/// no allocation).
pub type Obs<'a> = Option<&'a Recorder>;

/// One completed span, in recorder-epoch microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name (e.g. `stage.fsim`, `fsim.worker`).
    pub name: String,
    /// Trace category (groups related spans in viewers).
    pub cat: &'static str,
    /// The OS thread the span ran on.
    pub thread: ThreadId,
    /// Start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Key/value annotations shown in the trace viewer.
    pub args: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

/// The event sink: collects spans and metrics from every thread of a run.
///
/// Create one per traced invocation, share it by reference (it is `Sync`),
/// and export with [`Recorder::to_chrome_trace`] / [`Recorder::metrics`].
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder whose epoch (trace time zero) is now.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Adds `n` to the counter `name` (created at zero on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                inner.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn record(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                inner
                    .histograms
                    .insert(name.to_string(), HistogramSummary::of(value));
            }
        }
    }

    /// Merges a whole [`Metrics`] snapshot into the registry (used by
    /// workers that accumulate locally and flush once).
    pub fn merge_metrics(&self, m: &Metrics) {
        let mut inner = self.inner.lock();
        for (k, &v) in &m.counters {
            match inner.counters.get_mut(k) {
                Some(c) => *c += v,
                None => {
                    inner.counters.insert(k.clone(), v);
                }
            }
        }
        for (k, h) in &m.histograms {
            match inner.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    inner.histograms.insert(k.clone(), *h);
                }
            }
        }
    }

    /// A snapshot of every counter and histogram recorded so far.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let inner = self.inner.lock();
        Metrics {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// The completed spans recorded so far, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner.lock().spans.clone()
    }

    fn push_span(&self, ev: SpanEvent) {
        self.inner.lock().spans.push(ev);
    }
}

/// An open span; records a [`SpanEvent`] into its recorder on drop.
///
/// Obtained from [`ObsExt::span`]. When the handle was `None` the guard is
/// inert: construction read no clock and drop does nothing.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    args: Vec<(String, String)>,
}

impl<'a> Span<'a> {
    /// Attaches a key/value annotation (no-op on an inert span, and the
    /// value is only formatted when recording is live).
    pub fn with_arg(mut self, key: &str, value: impl std::fmt::Display) -> Span<'a> {
        if self.rec.is_some() {
            self.args.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Like [`Span::with_arg`] for use through a `&mut` borrow.
    pub fn arg(&mut self, key: &str, value: impl std::fmt::Display) {
        if self.rec.is_some() {
            self.args.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let end = rec.now_us();
            rec.push_span(SpanEvent {
                name: self.name.to_string(),
                cat: self.cat,
                thread: std::thread::current().id(),
                start_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// The instrumentation surface on [`Obs`] handles.
pub trait ObsExt<'a> {
    /// Opens a span named `name` under category `cat`; the returned guard
    /// records the span when it drops. Inert when the handle is `None`.
    fn span(&self, cat: &'static str, name: &'static str) -> Span<'a>;

    /// Adds `n` to counter `name`. No-op when the handle is `None`.
    fn add(&self, name: &str, n: u64);

    /// Records `value` into histogram `name`. No-op when `None`.
    fn record(&self, name: &str, value: f64);

    /// Whether recording is live (callers can skip building expensive
    /// annotations when it is not).
    fn enabled(&self) -> bool;
}

impl<'a> ObsExt<'a> for Obs<'a> {
    fn span(&self, cat: &'static str, name: &'static str) -> Span<'a> {
        match self {
            Some(rec) => Span {
                rec: Some(rec),
                name,
                cat,
                start_us: rec.now_us(),
                args: Vec::new(),
            },
            None => Span {
                rec: None,
                name,
                cat,
                start_us: 0,
                args: Vec::new(),
            },
        }
    }

    fn add(&self, name: &str, n: u64) {
        if let Some(rec) = self {
            rec.add(name, n);
        }
    }

    fn record(&self, name: &str, value: f64) {
        if let Some(rec) = self {
            rec.record(name, value);
        }
    }

    fn enabled(&self) -> bool {
        self.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_on_drop() {
        let rec = Recorder::new();
        let obs: Obs<'_> = Some(&rec);
        {
            let _outer = obs.span("stage", "outer");
            let _inner = obs.span("stage", "inner").with_arg("k", 7);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        // Inner drops first (LIFO), so it is recorded first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].args, vec![("k".to_string(), "7".to_string())]);
        assert_eq!(spans[1].name, "outer");
        assert!(spans[1].start_us <= spans[0].start_us);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let obs: Obs<'_> = None;
        assert!(!obs.enabled());
        let _s = obs.span("stage", "ghost").with_arg("k", 1);
        obs.add("c", 5);
        obs.record("h", 1.0);
        // Nothing to assert against — the point is it compiles to no-ops
        // and panics nowhere.
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::new();
        let obs: Obs<'_> = Some(&rec);
        obs.add("c", 2);
        obs.add("c", 3);
        obs.record("h", 1.0);
        obs.record("h", 3.0);
        let m = rec.metrics();
        assert_eq!(m.counter("c"), 5);
        let h = m.histograms.get("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    let obs: Obs<'_> = Some(rec);
                    let _sp = obs.span("w", "worker").with_arg("i", i);
                    obs.add("work", 1);
                });
            }
        });
        assert_eq!(rec.metrics().counter("work"), 4);
        assert_eq!(rec.spans().len(), 4);
        // Spans from distinct OS threads carry distinct thread ids.
        let tids: std::collections::HashSet<_> = rec.spans().iter().map(|s| s.thread).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn merge_metrics_folds_worker_buffers() {
        let rec = Recorder::new();
        let mut local = Metrics::default();
        local.add("c", 10);
        local.observe("h", 2.0);
        rec.merge_metrics(&local);
        rec.merge_metrics(&local);
        let m = rec.metrics();
        assert_eq!(m.counter("c"), 20);
        assert_eq!(m.histograms["h"].count, 2);
    }
}
