//! Metric snapshots: named counters and histogram summaries.

use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics of one histogram: count, sum, min and max of the
/// observed values (enough for means and rates without storing samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    /// A summary of a single observation.
    #[must_use]
    pub fn of(value: f64) -> HistogramSummary {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Folds one more observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary (as if its observations were recorded here).
    pub fn merge(&mut self, other: &HistogramSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistogramSummary {
    fn default() -> HistogramSummary {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// A point-in-time snapshot of the metrics registry: every counter and
/// histogram by name. Mergeable (across workers, instances, and PTPs) and
/// diffable (for per-compaction deltas out of a shared recorder).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Metrics {
    /// The value of counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` in: counters add, histograms fold.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The change since `earlier` (a previous snapshot of the same
    /// registry): counters subtract; histogram counts and sums subtract,
    /// while `min`/`max` keep the later snapshot's run-wide extremes
    /// (per-interval extremes are not recoverable from summaries).
    #[must_use]
    pub fn delta_since(&self, earlier: &Metrics) -> Metrics {
        let mut out = Metrics::default();
        for (k, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(k));
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, h) in &self.histograms {
            let prev = earlier.histograms.get(k);
            let count = h.count.saturating_sub(prev.map_or(0, |p| p.count));
            if count > 0 {
                out.histograms.insert(
                    k.clone(),
                    HistogramSummary {
                        count,
                        sum: h.sum - prev.map_or(0.0, |p| p.sum),
                        min: h.min,
                        max: h.max,
                    },
                );
            }
        }
        out
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k} ~ count {} mean {:.3} min {:.3} max {:.3}",
                h.count,
                h.mean(),
                h.min,
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_folds_histograms() {
        let mut a = Metrics::default();
        a.add("c", 1);
        a.observe("h", 5.0);
        let mut b = Metrics::default();
        b.add("c", 2);
        b.add("only_b", 7);
        b.observe("h", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.histograms["h"].min, 1.0);
        assert_eq!(a.histograms["h"].max, 5.0);
    }

    #[test]
    fn delta_subtracts_counters() {
        let mut before = Metrics::default();
        before.add("c", 10);
        before.observe("h", 1.0);
        let mut after = before.clone();
        after.add("c", 5);
        after.add("new", 2);
        after.observe("h", 3.0);
        let d = after.delta_since(&before);
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.counter("new"), 2);
        assert_eq!(d.histograms["h"].count, 1);
        assert!((d.histograms["h"].sum - 3.0).abs() < 1e-12);
        // Unchanged counters are omitted from the delta.
        assert!(!d.counters.contains_key("h_missing"));
    }

    #[test]
    fn display_lists_every_metric() {
        let mut m = Metrics::default();
        m.add("a.count", 3);
        m.observe("b.hist", 2.0);
        let s = m.to_string();
        assert!(s.contains("a.count = 3"));
        assert!(s.contains("b.hist ~ count 1"));
    }

    #[test]
    fn empty_histogram_merge_is_identity() {
        let mut h = HistogramSummary::of(4.0);
        h.merge(&HistogramSummary::default());
        assert_eq!(h.count, 1);
        let mut e = HistogramSummary::default();
        e.merge(&HistogramSummary::of(4.0));
        assert_eq!(e.count, 1);
        assert_eq!(e.min, 4.0);
    }
}
