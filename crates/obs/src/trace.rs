//! Chrome trace-event JSON export.
//!
//! The emitted file follows the [Trace Event Format] (JSON object form):
//! every span becomes a complete event (`"ph": "X"`) with microsecond
//! `ts`/`dur`, and every thread seen gets a `thread_name` metadata event so
//! viewers label the lanes. Metrics ride along under a top-level
//! `"warpstlMetrics"` key, which the format explicitly allows and viewers
//! ignore. Load the file in `about://tracing` or <https://ui.perfetto.dev>.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::thread::ThreadId;

use crate::Recorder;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as JSON (no NaN/Infinity in the grammar — clamp to
/// null-free sentinels).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl Recorder {
    /// Serializes everything recorded so far as a Chrome trace-event JSON
    /// document (spans as complete events, thread-name metadata, metrics
    /// under `warpstlMetrics`).
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.spans();
        let metrics = self.metrics();

        // Stable small integers per OS thread, in order of first
        // appearance; tid 0 is whichever thread recorded first (usually
        // the pipeline thread).
        let mut tids: BTreeMap<u64, u32> = BTreeMap::new();
        let mut order: Vec<ThreadId> = Vec::new();
        let mut tid_of = |t: ThreadId, order: &mut Vec<ThreadId>| -> u32 {
            let key = thread_key(t);
            *tids.entry(key).or_insert_with(|| {
                order.push(t);
                u32::try_from(order.len() - 1).unwrap_or(u32::MAX)
            })
        };

        let mut out = String::new();
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
        let mut first = true;
        for span in &spans {
            let tid = tid_of(span.thread, &mut order);
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}",
                json_escape(&span.name),
                json_escape(span.cat),
                tid,
                span.start_us,
                span.dur_us
            );
            if !span.args.is_empty() {
                out.push_str(", \"args\": {");
                for (i, (k, v)) in span.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
                }
                out.push('}');
            }
            out.push('}');
        }
        // Thread-name metadata so viewers label lanes meaningfully.
        for (i, _) in order.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let label = if i == 0 {
                "pipeline".to_string()
            } else {
                format!("worker-{i}")
            };
            let _ = write!(
                out,
                "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {i}, \"args\": {{\"name\": \"{label}\"}}}}",
            );
        }
        out.push_str("\n  ],\n  \"warpstlMetrics\": {\n    \"counters\": {");
        for (i, (k, v)) in metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n      \"{}\": {v}", json_escape(k));
        }
        out.push_str("\n    },\n    \"histograms\": {");
        for (i, (k, h)) in metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json_escape(k),
                h.count,
                json_f64(h.sum),
                json_f64(if h.count == 0 { 0.0 } else { h.min }),
                json_f64(if h.count == 0 { 0.0 } else { h.max })
            );
        }
        out.push_str("\n    }\n  }\n}\n");
        out
    }
}

/// A stable sort key for a [`ThreadId`] (its Debug form carries the
/// numeric id; falling back to a hash keeps this total if that ever
/// changes).
fn thread_key(t: ThreadId) -> u64 {
    let dbg = format!("{t:?}");
    let digits: String = dbg.chars().filter(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    })
}

#[cfg(test)]
mod tests {
    use crate::{Obs, ObsExt, Recorder};

    /// A minimal JSON well-formedness walker: verifies balanced structure
    /// and quoting without a parser dependency.
    fn assert_json_balanced(s: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in s.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn export_contains_spans_threads_and_metrics() {
        let rec = Recorder::new();
        let obs: Obs<'_> = Some(&rec);
        {
            let _a = obs.span("stage", "stage.trace").with_arg("ptp", "IMM");
            obs.add("pipeline.ptps", 1);
            obs.record("fsim.batches_per_worker", 3.0);
        }
        std::thread::scope(|s| {
            let rec = &rec;
            s.spawn(move || {
                let obs: Obs<'_> = Some(rec);
                let _w = obs.span("fsim", "fsim.worker");
            });
        });
        let json = rec.to_chrome_trace();
        assert_json_balanced(&json);
        assert!(json.contains("\"stage.trace\""));
        assert!(json.contains("\"fsim.worker\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"pipeline.ptps\": 1"));
        assert!(json.contains("\"fsim.batches_per_worker\""));
        // Two distinct lanes: pipeline + one worker.
        assert!(json.contains("\"name\": \"pipeline\""));
        assert!(json.contains("\"name\": \"worker-1\""));
    }

    #[test]
    fn strings_are_escaped() {
        let rec = Recorder::new();
        let obs: Obs<'_> = Some(&rec);
        drop(obs.span("cat", "name").with_arg("k", "a\"b\\c\nd"));
        let json = rec.to_chrome_trace();
        assert_json_balanced(&json);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn empty_recorder_exports_valid_document() {
        let rec = Recorder::new();
        let json = rec.to_chrome_trace();
        assert_json_balanced(&json);
        assert!(json.contains("\"traceEvents\""));
    }
}
