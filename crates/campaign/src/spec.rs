//! Campaign specs: the declarative JSON naming a scenario matrix.
//!
//! A spec is a flat object. `modules` is the only required field; every
//! axis and knob has a default, so the smallest useful spec is one line:
//!
//! ```json
//! { "modules": ["decoder_unit"] }
//! ```
//!
//! The full schema (defaults in parentheses):
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `name` | string (`"campaign"`) | report title |
//! | `modules` | \[string\] (required) | target modules, by [`ModuleKind`] name |
//! | `lanes` | \[number\] (`[8]`) | SP lanes per SM; validated *per cell* by the job layer, so `[8, 12]` runs the 8-lane cells and reports the 12-lane cells as failed |
//! | `fault_models` | \[string\] (`["stuck-at"]`) | `stuck-at` / `bridging` |
//! | `backends` | \[string\] (`["auto"]`) | `auto` / `event` / `kernel` / `kernel64` |
//! | `drop` | \[bool\] (`[true]`) | fault dropping between patterns |
//! | `sb_count` | number (`6`) | Small Blocks per generated test program |
//! | `seed` | number (`1`) | generator seed |
//! | `bridge_pairs` | number (`0` = model default) | bridging net-pair budget |
//!
//! Axis values are *not* deduplicated: the matrix is exactly the cross
//! product in spec order, module-major, so cell indices are stable and
//! the report is reproducible from the spec text alone.

use std::fmt;

use warpstl_fault::{FaultModel, SimBackend};
use warpstl_netlist::modules::ModuleKind;
use warpstl_serve::json::{parse, Json};

/// One point of the campaign matrix: everything that varies between jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Target module.
    pub module: ModuleKind,
    /// SP lanes per SM (validated by the job layer; 8/16/32 are valid).
    pub lanes: usize,
    /// Fault model the cell compacts against.
    pub model: FaultModel,
    /// Fault-simulation backend.
    pub backend: SimBackend,
    /// Drop detected faults between patterns.
    pub drop_detected: bool,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}x{}/{}{}",
            self.module.name(),
            self.lanes,
            self.model,
            self.backend,
            if self.drop_detected { "" } else { "/no-drop" }
        )
    }
}

/// A parsed campaign spec: the matrix axes plus generator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign title, echoed into the report.
    pub name: String,
    /// Target modules, in spec order (the outermost matrix axis).
    pub modules: Vec<ModuleKind>,
    /// Lane counts to sweep. Not validated here: a bad shape becomes a
    /// *failed cell* (the job layer's `BadRequest`), not a dead spec.
    pub lanes: Vec<usize>,
    /// Fault models to sweep.
    pub fault_models: Vec<FaultModel>,
    /// Simulation backends to sweep.
    pub backends: Vec<SimBackend>,
    /// Fault-dropping modes to sweep.
    pub drop: Vec<bool>,
    /// Small Blocks per generated test program.
    pub sb_count: usize,
    /// Generator seed.
    pub seed: u64,
    /// Bridging net-pair budget (`0` keeps the model default).
    pub bridge_pairs: usize,
}

impl CampaignSpec {
    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, a missing or empty
    /// `modules` array, an unknown module/model/backend name, or a field
    /// of the wrong type. Lane *values* are deliberately not validated
    /// (see [`CampaignSpec::lanes`]).
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let doc = parse(text)?;
        if !matches!(doc, Json::Obj(_)) {
            return Err("campaign spec must be a JSON object".to_string());
        }

        let name = match doc.get("name") {
            None => "campaign".to_string(),
            Some(v) => v
                .as_str()
                .ok_or("field `name` must be a string")?
                .to_string(),
        };

        let modules = string_axis(&doc, "modules")?
            .ok_or("field `modules` is required (an array of module names)")?
            .iter()
            .map(|s| module_by_name(s))
            .collect::<Result<Vec<_>, _>>()?;

        let lanes = match doc.get("lanes") {
            None => vec![8],
            Some(v) => non_empty(count_array(v, "lanes")?, "lanes")?,
        };

        let fault_models = match string_axis(&doc, "fault_models")? {
            None => vec![FaultModel::StuckAt],
            Some(names) => names
                .iter()
                .map(|s| {
                    FaultModel::parse(s)
                        .ok_or_else(|| format!("unknown fault model `{s}` (stuck-at|bridging)"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        let backends = match string_axis(&doc, "backends")? {
            None => vec![SimBackend::Auto],
            Some(names) => names
                .iter()
                .map(|s| {
                    SimBackend::parse(s).ok_or_else(|| {
                        format!("unknown backend `{s}` (auto|event|kernel|kernel64)")
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        let drop = match doc.get("drop") {
            None => vec![true],
            Some(Json::Arr(items)) => non_empty(
                items
                    .iter()
                    .map(|v| {
                        v.as_bool()
                            .ok_or("field `drop` must be an array of booleans")
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                "drop",
            )?,
            Some(_) => return Err("field `drop` must be an array of booleans".to_string()),
        };

        let sb_count = count_field(&doc, "sb_count")?.unwrap_or(6);
        if sb_count == 0 {
            return Err("field `sb_count` must be at least 1".to_string());
        }
        let seed = count_field(&doc, "seed")?.unwrap_or(1) as u64;
        let bridge_pairs = count_field(&doc, "bridge_pairs")?.unwrap_or(0);

        Ok(CampaignSpec {
            name,
            modules,
            lanes,
            fault_models,
            backends,
            drop,
            sb_count,
            seed,
            bridge_pairs,
        })
    }

    /// Expands the matrix in spec order, module-major: for each module,
    /// every lane count, then every fault model, backend, and drop mode.
    /// Cell indices are the report's row order.
    #[must_use]
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells =
            Vec::with_capacity(self.modules.len() * self.lanes.len() * self.fault_models.len());
        for &module in &self.modules {
            for &lanes in &self.lanes {
                for &model in &self.fault_models {
                    for &backend in &self.backends {
                        for &drop_detected in &self.drop {
                            cells.push(Cell {
                                module,
                                lanes,
                                model,
                                backend,
                                drop_detected,
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

fn module_by_name(name: &str) -> Result<ModuleKind, String> {
    ModuleKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = ModuleKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown module `{name}` (one of: {})", known.join(", "))
        })
}

/// An optional axis of strings; `Ok(None)` when absent.
fn string_axis(doc: &Json, field: &str) -> Result<Option<Vec<String>>, String> {
    match doc.get(field) {
        None => Ok(None),
        Some(Json::Arr(items)) => {
            let values = items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("field `{field}` must be an array of strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Some(non_empty(values, field)?))
        }
        Some(_) => Err(format!("field `{field}` must be an array of strings")),
    }
}

fn count_array(value: &Json, field: &str) -> Result<Vec<usize>, String> {
    match value {
        Json::Arr(items) => items
            .iter()
            .map(|v| {
                v.as_count().ok_or_else(|| {
                    format!("field `{field}` must be an array of non-negative integers")
                })
            })
            .collect(),
        _ => Err(format!(
            "field `{field}` must be an array of non-negative integers"
        )),
    }
}

fn count_field(doc: &Json, field: &str) -> Result<Option<usize>, String> {
    match doc.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_count()
            .map(Some)
            .ok_or_else(|| format!("field `{field}` must be a non-negative integer")),
    }
}

fn non_empty<T>(values: Vec<T>, field: &str) -> Result<Vec<T>, String> {
    if values.is_empty() {
        Err(format!("field `{field}` must not be empty"))
    } else {
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_fills_every_default() {
        let spec = CampaignSpec::parse(r#"{"modules": ["decoder_unit"]}"#).unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.modules, vec![ModuleKind::DecoderUnit]);
        assert_eq!(spec.lanes, vec![8]);
        assert_eq!(spec.fault_models, vec![FaultModel::StuckAt]);
        assert_eq!(spec.backends, vec![SimBackend::Auto]);
        assert_eq!(spec.drop, vec![true]);
        assert_eq!(spec.sb_count, 6);
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.bridge_pairs, 0);
    }

    #[test]
    fn full_spec_round_trips_every_axis() {
        let spec = CampaignSpec::parse(
            r#"{
                "name": "sweep",
                "modules": ["sfu", "fp32"],
                "lanes": [8, 16, 32],
                "fault_models": ["stuck-at", "bridging"],
                "backends": ["event", "kernel"],
                "drop": [true, false],
                "sb_count": 4,
                "seed": 7,
                "bridge_pairs": 32
            }"#,
        )
        .unwrap();
        assert_eq!(spec.modules, vec![ModuleKind::Sfu, ModuleKind::Fp32]);
        assert_eq!(spec.lanes, vec![8, 16, 32]);
        assert_eq!(
            spec.fault_models,
            vec![FaultModel::StuckAt, FaultModel::Bridging]
        );
        assert_eq!(spec.backends, vec![SimBackend::Event, SimBackend::Kernel]);
        assert_eq!(spec.drop, vec![true, false]);
        assert_eq!((spec.sb_count, spec.seed, spec.bridge_pairs), (4, 7, 32));
        assert_eq!(spec.expand().len(), 2 * 3 * 2 * 2 * 2);
    }

    #[test]
    fn expansion_is_module_major_and_ordered() {
        let spec = CampaignSpec::parse(
            r#"{"modules": ["decoder_unit", "sfu"], "lanes": [8, 32], "fault_models": ["stuck-at", "bridging"]}"#,
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 8);
        // Outermost axis first: all decoder_unit cells precede all sfu cells.
        assert!(cells[..4]
            .iter()
            .all(|c| c.module == ModuleKind::DecoderUnit));
        assert!(cells[4..].iter().all(|c| c.module == ModuleKind::Sfu));
        // Within a module: lanes-major, then model.
        assert_eq!((cells[0].lanes, cells[0].model), (8, FaultModel::StuckAt));
        assert_eq!((cells[1].lanes, cells[1].model), (8, FaultModel::Bridging));
        assert_eq!((cells[2].lanes, cells[2].model), (32, FaultModel::StuckAt));
        assert_eq!(cells[0].to_string(), "decoder_unit/8xstuck-at/auto");
    }

    #[test]
    fn bad_specs_name_the_offending_field() {
        for (text, needle) in [
            ("[]", "must be a JSON object"),
            ("{", ""), // parser error; any message
            (r#"{"lanes": [8]}"#, "`modules` is required"),
            (r#"{"modules": []}"#, "must not be empty"),
            (r#"{"modules": ["warp_scheduler"]}"#, "unknown module"),
            (
                r#"{"modules": ["sfu"], "fault_models": ["nope"]}"#,
                "unknown fault model",
            ),
            (
                r#"{"modules": ["sfu"], "backends": ["gpu"]}"#,
                "unknown backend",
            ),
            (r#"{"modules": ["sfu"], "lanes": [-8]}"#, "non-negative"),
            (r#"{"modules": ["sfu"], "lanes": 8}"#, "array"),
            (r#"{"modules": ["sfu"], "drop": [1]}"#, "booleans"),
            (r#"{"modules": ["sfu"], "sb_count": 0}"#, "at least 1"),
            (
                r#"{"modules": ["sfu"], "name": 3}"#,
                "`name` must be a string",
            ),
        ] {
            let err = CampaignSpec::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn invalid_lane_values_parse_but_stay_in_the_matrix() {
        // The job layer owns shape validation; the spec only types the axis.
        let spec = CampaignSpec::parse(r#"{"modules": ["sfu"], "lanes": [8, 12]}"#).unwrap();
        assert_eq!(spec.lanes, vec![8, 12]);
    }
}
