//! The campaign runner: matrix expansion, the bounded worker pool, and
//! per-cell job planning.
//!
//! Every cell funnels through [`compact_job`] — the same store-keyed entry
//! point the CLI and `warpstl serve` dispatch — so a campaign cell is
//! byte-identical to the equivalent `warpstl compact` invocation by
//! construction. The pool mirrors serve's sizing: `N` workers each hand
//! their jobs `host_parallelism() / N` engine threads (at least 1), so a
//! wide matrix does not oversubscribe the host.
//!
//! Worker scheduling is observable but not *load-bearing*: results land in
//! an index-addressed slot table, so the report's row order is the matrix
//! order no matter which worker finished first.

use std::sync::Arc;

use warpstl_core::{compact_job, JobOptions};
use warpstl_fault::host_parallelism;
use warpstl_netlist::modules::ModuleKind;
use warpstl_obs::{names, Obs, ObsExt, Recorder};
use warpstl_programs::generators::{
    generate_fpu, generate_imm, generate_rand_sp, generate_sfu_imm, FpuConfig, ImmConfig,
    RandConfig, SfuImmConfig,
};
use warpstl_programs::serialize::ptp_to_text;
use warpstl_serve::queue::JobQueue;
use warpstl_store::Store;
use warpstl_sync::Mutex;

use crate::report::{CampaignReport, CellResult};
use crate::spec::{CampaignSpec, Cell};

/// How to run a campaign: pool width and the shared facilities.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfig {
    /// Concurrent cells. `0` resolves like serve's worker default:
    /// `min(4, host_parallelism())`.
    pub jobs: usize,
    /// The artifact store shared by *every* cell (one warm store is the
    /// point of a campaign); `None` runs uncached.
    pub store: Option<Arc<Store>>,
    /// Observability sink: receives one `campaign.cell` span plus a
    /// `campaign.hit` / `campaign.miss` / `campaign.failed` count per
    /// cell, and the merged per-cell pipeline metrics.
    pub obs: Option<Arc<Recorder>>,
}

/// Expands the spec's matrix and runs every cell to completion.
///
/// Cells are independent jobs: a failed cell (bad lane count, compaction
/// failure) becomes an error row in the report and the rest of the matrix
/// still runs. The returned report is deterministic — identical for any
/// `jobs` setting and across warm-store reruns.
#[must_use]
pub fn run_campaign(spec: &CampaignSpec, config: &CampaignConfig) -> CampaignReport {
    let cells = spec.expand();
    let ptps = generate_ptps(spec);

    let jobs = if config.jobs == 0 {
        host_parallelism().min(4)
    } else {
        config.jobs
    };
    let workers = jobs.min(cells.len()).max(1);
    let threads_each = (host_parallelism() / workers).max(1);

    let queue: JobQueue<usize> = JobQueue::new(cells.len().max(1));
    for index in 0..cells.len() {
        if queue.try_push(index).is_err() {
            break; // capacity equals the cell count; rejection is impossible
        }
    }
    queue.close();

    let slots: Mutex<Vec<Option<CellResult>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(index) = queue.pop() {
                    let cell = cells[index];
                    let outcome = run_cell(spec, &cell, &ptps, threads_each, config);
                    slots.lock()[index] = Some(CellResult { cell, outcome });
                }
            });
        }
    });

    let mut collected = std::mem::take(&mut *slots.lock());
    let results = cells
        .iter()
        .zip(collected.drain(..))
        .map(|(&cell, slot)| {
            slot.unwrap_or_else(|| CellResult {
                cell,
                outcome: Err("cell never ran (worker lost)".to_string()),
            })
        })
        .collect();

    CampaignReport {
        name: spec.name.clone(),
        cells: results,
    }
}

/// One generated test program per *distinct* module, in spec order. Cells
/// of the same module share the text — the compaction input is part of
/// what a shape/model comparison must hold fixed.
fn generate_ptps(spec: &CampaignSpec) -> Vec<(ModuleKind, String)> {
    let mut ptps: Vec<(ModuleKind, String)> = Vec::new();
    for &module in &spec.modules {
        if !ptps.iter().any(|(kind, _)| *kind == module) {
            ptps.push((module, ptp_text_for(module, spec.sb_count, spec.seed)));
        }
    }
    ptps
}

/// The bundled generator targeting `module`, sized by the spec's knobs.
fn ptp_text_for(module: ModuleKind, sb_count: usize, seed: u64) -> String {
    match module {
        ModuleKind::DecoderUnit => ptp_to_text(&generate_imm(&ImmConfig {
            sb_count,
            seed,
            ..ImmConfig::default()
        })),
        ModuleKind::SpCore => ptp_to_text(&generate_rand_sp(&RandConfig {
            sb_count,
            seed,
            ..RandConfig::default()
        })),
        ModuleKind::Sfu => ptp_to_text(&generate_sfu_imm(&SfuImmConfig {
            max_patterns: sb_count,
            seed,
            ..SfuImmConfig::default()
        })),
        ModuleKind::Fp32 => ptp_to_text(&generate_fpu(&FpuConfig {
            sb_count,
            seed,
            ..FpuConfig::default()
        })),
    }
}

fn run_cell(
    spec: &CampaignSpec,
    cell: &Cell,
    ptps: &[(ModuleKind, String)],
    threads: usize,
    config: &CampaignConfig,
) -> Result<warpstl_core::CompactionReport, String> {
    let obs: Obs<'_> = config.obs.as_deref();
    let _span = obs
        .span("campaign", names::CAMPAIGN_CELL)
        .with_arg("module", cell.module.name())
        .with_arg("lanes", cell.lanes)
        .with_arg("model", cell.model);

    let text = ptps
        .iter()
        .find(|(kind, _)| *kind == cell.module)
        .map_or("", |(_, text)| text.as_str());

    let opts = JobOptions {
        // Mirror the STL flow's per-module convention so a campaign cell
        // and `compact-stl` agree on the SFU's pattern order.
        reverse: cell.module == ModuleKind::Sfu,
        backend: cell.backend,
        threads,
        lanes: cell.lanes,
        fault_model: cell.model,
        bridge_pairs: spec.bridge_pairs,
        drop_detected: cell.drop_detected,
        ..JobOptions::default()
    };

    // A fresh recorder per cell isolates its cache traffic; the metrics
    // fold into the campaign recorder afterwards so nothing is lost.
    let cell_rec = Arc::new(Recorder::new());
    let out = compact_job(text, &opts, config.store.clone(), Some(cell_rec.clone()));

    let cell_metrics = cell_rec.metrics();
    let hits = cell_metrics.counter(names::CACHE_HIT);
    if let Some(rec) = config.obs.as_deref() {
        rec.merge_metrics(&cell_metrics);
    }
    match out {
        Ok(result) => {
            obs.add(
                if hits > 0 {
                    names::CAMPAIGN_HIT
                } else {
                    names::CAMPAIGN_MISS
                },
                1,
            );
            Ok(result.report)
        }
        Err(err) => {
            obs.add(names::CAMPAIGN_FAILED, 1);
            Err(err.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn spec(text: &str) -> CampaignSpec {
        CampaignSpec::parse(text).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("warpstl-campaign-{tag}-{}", std::process::id()))
    }

    #[test]
    fn report_is_byte_identical_across_pool_widths() {
        let spec = spec(r#"{"modules": ["decoder_unit", "sfu"], "lanes": [8, 16], "sb_count": 3}"#);
        let serial = run_campaign(
            &spec,
            &CampaignConfig {
                jobs: 1,
                ..CampaignConfig::default()
            },
        );
        let wide = run_campaign(
            &spec,
            &CampaignConfig {
                jobs: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(serial.cells.len(), 4);
        assert_eq!(serial.to_json(), wide.to_json());
    }

    #[test]
    fn invalid_shapes_fail_their_cells_without_sinking_the_campaign() {
        let rec = Arc::new(Recorder::new());
        let spec = spec(r#"{"modules": ["decoder_unit"], "lanes": [8, 12], "sb_count": 3}"#);
        let report = run_campaign(
            &spec,
            &CampaignConfig {
                jobs: 2,
                obs: Some(rec.clone()),
                ..CampaignConfig::default()
            },
        );
        assert!(report.cells[0].outcome.is_ok());
        let err = report.cells[1].outcome.as_ref().unwrap_err();
        assert!(err.contains("invalid lane count 12"), "{err}");
        let metrics = rec.metrics();
        assert_eq!(metrics.counter(names::CAMPAIGN_FAILED), 1);
        assert_eq!(
            metrics.counter(names::CAMPAIGN_HIT) + metrics.counter(names::CAMPAIGN_MISS),
            1
        );
        // One span per cell, failures included.
        let cell_spans = rec
            .spans()
            .iter()
            .filter(|s| s.name == names::CAMPAIGN_CELL)
            .count();
        assert_eq!(cell_spans, 2);
    }

    #[test]
    fn both_fault_models_complete_in_one_matrix() {
        let spec = spec(
            r#"{"modules": ["decoder_unit"], "fault_models": ["stuck-at", "bridging"], "sb_count": 3, "bridge_pairs": 16}"#,
        );
        let report = run_campaign(&spec, &CampaignConfig::default());
        let stuck = report.cells[0].outcome.as_ref().unwrap();
        let bridge = report.cells[1].outcome.as_ref().unwrap();
        assert!(stuck.fc_before > 0.0);
        assert!(bridge.fc_before > 0.0);
        // Untestability proofs are stuck-at constructs.
        assert_eq!(bridge.untestable, 0);
    }

    #[test]
    fn warm_store_reruns_hit_the_cache_and_keep_the_bytes() {
        let dir = temp_dir("warm");
        let spec = spec(r#"{"modules": ["decoder_unit"], "lanes": [8, 16], "sb_count": 3}"#);

        let cold_store = Arc::new(Store::open(&dir).unwrap());
        let cold = run_campaign(
            &spec,
            &CampaignConfig {
                jobs: 2,
                store: Some(cold_store.clone()),
                ..CampaignConfig::default()
            },
        );
        assert!(cold_store.session().writes > 0);

        let warm_store = Arc::new(Store::open(&dir).unwrap());
        let rec = Arc::new(Recorder::new());
        let warm = run_campaign(
            &spec,
            &CampaignConfig {
                jobs: 2,
                store: Some(warm_store.clone()),
                obs: Some(rec.clone()),
            },
        );
        assert!(warm_store.session().hits > 0);
        assert_eq!(rec.metrics().counter(names::CAMPAIGN_HIT), 2);
        assert_eq!(cold.to_json(), warm.to_json());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
