#![warn(missing_docs)]
//! # warpstl-campaign
//!
//! Declarative compaction campaigns: one JSON spec names a **matrix of
//! scenarios** — {target module × GPU shape × fault model × simulation
//! backend × drop mode} — and the runner expands the matrix, plans each
//! cell as a store-keyed [`compact_job`](warpstl_core::compact_job), fans
//! the cells out over a bounded worker pool, and folds the results into a
//! deterministic [`CampaignReport`].
//!
//! The point of a campaign is the *comparison*: the same test program
//! compacted against 8/16/32-lane GPU shapes, or against stuck-at vs
//! bridging fault universes, in one invocation with one warm artifact
//! store. Cells that share work share cache entries — every cell of a
//! module reuses the analyze artifact, and identical (netlist, stream,
//! fault-list, model) cells replay fault-simulation stamps — so the matrix
//! costs far less than its cell count suggests.
//!
//! Three layers, mirroring `warpstl serve`'s split:
//!
//! - [`CampaignSpec`] ([`spec`]) — the parsed, validated spec: matrix axes
//!   plus generator knobs (`sb_count`, `seed`, `bridge_pairs`).
//! - [`run_campaign`] ([`runner`]) — matrix expansion, the
//!   [`JobQueue`](warpstl_serve::queue::JobQueue)-fed worker pool, and
//!   per-cell observability (`campaign.cell` spans, `campaign.hit` /
//!   `campaign.miss` / `campaign.failed` counters).
//! - [`CampaignReport`] ([`report`]) — per-cell rows plus cross-cell
//!   aggregates (best shape per module, coverage delta vs each module's
//!   baseline cell), rendered as JSON that is byte-identical across rerun
//!   and across `--jobs 1` vs `--jobs N`.
//!
//! # Determinism contract
//!
//! [`CampaignReport::to_json`] carries only fields that are reproducible
//! functions of the spec: sizes, cycle-accurate durations, coverages,
//! Small-Block counts. Wall-clock timings and cache-traffic counts are
//! deliberately excluded — concurrent cold cells race their store writes,
//! so hit counts differ between `--jobs 1` and `--jobs N` even when every
//! result byte matches. Cache traffic is still visible: per-cell metrics
//! merge into the campaign [`Recorder`](warpstl_obs::Recorder) and the
//! shared store's session counters.
//!
//! # Examples
//!
//! ```
//! use warpstl_campaign::{run_campaign, CampaignConfig, CampaignSpec};
//!
//! # fn main() -> Result<(), String> {
//! let spec = CampaignSpec::parse(
//!     r#"{
//!         "name": "shape-sweep",
//!         "modules": ["decoder_unit"],
//!         "lanes": [8, 32],
//!         "sb_count": 3
//!     }"#,
//! )?;
//! let report = run_campaign(&spec, &CampaignConfig::default());
//! assert_eq!(report.cells.len(), 2);
//! assert_eq!(report.to_json(), run_campaign(&spec, &CampaignConfig::default()).to_json());
//! # Ok(())
//! # }
//! ```

pub mod report;
pub mod runner;
pub mod spec;

pub use report::{CampaignReport, CellResult};
pub use runner::{run_campaign, CampaignConfig};
pub use spec::{CampaignSpec, Cell};
