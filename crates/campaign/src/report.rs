//! Campaign reports: per-cell rows plus cross-cell aggregates, rendered
//! as deterministic JSON.
//!
//! The JSON carries only fields that are reproducible functions of the
//! spec — sizes, cycle-accurate durations, coverages, Small-Block counts.
//! Wall-clock timings and cache-traffic counters are excluded on purpose:
//! concurrent cold cells race their store writes, so per-cell hit counts
//! differ between `--jobs 1` and `--jobs N` runs whose results are
//! otherwise identical. Byte-compare the JSON; read cache traffic off the
//! store session or the campaign recorder.

use std::fmt;

use warpstl_core::CompactionReport;
use warpstl_netlist::modules::ModuleKind;
use warpstl_serve::json::escape;

use crate::spec::Cell;

/// One matrix cell's outcome: the compaction report, or why it failed.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// The job's report, or its error rendered as text.
    pub outcome: Result<CompactionReport, String>,
}

/// The winning GPU shape for one module (see [`CampaignReport::best_shape`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestShape {
    /// The module.
    pub module: ModuleKind,
    /// Lane count of the winning cell.
    pub lanes: usize,
    /// That cell's post-compaction coverage.
    pub fc_after: f64,
}

/// Every cell of a finished campaign, in matrix order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The spec's `name`.
    pub name: String,
    /// One row per matrix cell, index-aligned with
    /// [`CampaignSpec::expand`](crate::CampaignSpec::expand).
    pub cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Completed cells (failed rows excluded), with their indices.
    fn ok_cells(&self) -> impl Iterator<Item = (usize, &Cell, &CompactionReport)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.outcome.as_ref().ok().map(|rep| (i, &r.cell, rep)))
    }

    /// The module's *baseline* cell: its first completed cell in matrix
    /// order (the spec's first listed shape/model/backend combination).
    #[must_use]
    pub fn baseline_of(&self, module: ModuleKind) -> Option<&CompactionReport> {
        self.ok_cells()
            .find(|(_, cell, _)| cell.module == module)
            .map(|(_, _, rep)| rep)
    }

    /// Post-compaction coverage delta of cell `index` vs its module's
    /// baseline cell, in coverage points. `None` for failed cells; exactly
    /// `0.0` for each baseline cell itself.
    #[must_use]
    pub fn coverage_delta(&self, index: usize) -> Option<f64> {
        let report = self.cells.get(index)?.outcome.as_ref().ok()?;
        let baseline = self.baseline_of(self.cells[index].cell.module)?;
        Some(report.fc_after - baseline.fc_after)
    }

    /// The best GPU shape per module: among completed cells, the highest
    /// post-compaction coverage, ties broken toward fewer lanes (the
    /// cheaper shape). Modules appear in first-cell order; a module with
    /// no completed cells has no entry.
    #[must_use]
    pub fn best_shape(&self) -> Vec<BestShape> {
        let mut best: Vec<BestShape> = Vec::new();
        for (_, cell, report) in self.ok_cells() {
            match best.iter_mut().find(|b| b.module == cell.module) {
                None => best.push(BestShape {
                    module: cell.module,
                    lanes: cell.lanes,
                    fc_after: report.fc_after,
                }),
                Some(entry) => {
                    let better = report.fc_after > entry.fc_after
                        || (report.fc_after == entry.fc_after && cell.lanes < entry.lanes);
                    if better {
                        entry.lanes = cell.lanes;
                        entry.fc_after = report.fc_after;
                    }
                }
            }
        }
        best
    }

    /// Completed-cell count.
    #[must_use]
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Serializes the campaign's *deterministic* fields as a JSON object —
    /// byte-identical across pool widths and warm-store reruns (see the
    /// module docs for what is excluded and why).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"cells\": [");
        for (index, row) in self.cells.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let cell = &row.cell;
            out.push_str(&format!("      \"module\": \"{}\",\n", cell.module.name()));
            out.push_str(&format!("      \"lanes\": {},\n", cell.lanes));
            out.push_str(&format!("      \"fault_model\": \"{}\",\n", cell.model));
            out.push_str(&format!("      \"backend\": \"{}\",\n", cell.backend));
            out.push_str(&format!(
                "      \"drop_detected\": {},\n",
                cell.drop_detected
            ));
            match &row.outcome {
                Err(err) => {
                    out.push_str("      \"status\": \"failed\",\n");
                    out.push_str(&format!("      \"error\": \"{}\"\n", escape(err)));
                }
                Ok(report) => {
                    out.push_str("      \"status\": \"ok\",\n");
                    out.push_str(&format!(
                        "      \"original_size\": {},\n",
                        report.original_size
                    ));
                    out.push_str(&format!(
                        "      \"compacted_size\": {},\n",
                        report.compacted_size
                    ));
                    out.push_str(&format!(
                        "      \"size_ratio\": {},\n",
                        report.compacted_size as f64 / report.original_size.max(1) as f64
                    ));
                    out.push_str(&format!(
                        "      \"original_duration\": {},\n",
                        report.original_duration
                    ));
                    out.push_str(&format!(
                        "      \"compacted_duration\": {},\n",
                        report.compacted_duration
                    ));
                    out.push_str(&format!("      \"fc_before\": {},\n", report.fc_before));
                    out.push_str(&format!("      \"fc_after\": {},\n", report.fc_after));
                    out.push_str(&format!("      \"sbs_total\": {},\n", report.sbs_total));
                    out.push_str(&format!("      \"sbs_removed\": {},\n", report.sbs_removed));
                    out.push_str(&format!("      \"untestable\": {},\n", report.untestable));
                    out.push_str(&format!(
                        "      \"coverage_delta\": {}\n",
                        self.coverage_delta(index).unwrap_or(0.0)
                    ));
                }
            }
            out.push_str("    }");
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"aggregates\": {\n");
        out.push_str(&format!("    \"cells_total\": {},\n", self.cells.len()));
        out.push_str(&format!("    \"cells_ok\": {},\n", self.ok_count()));
        out.push_str(&format!(
            "    \"cells_failed\": {},\n",
            self.cells.len() - self.ok_count()
        ));
        out.push_str("    \"best_shape\": [");
        let best = self.best_shape();
        for (i, b) in best.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"module\": \"{}\", \"lanes\": {}, \"fc_after\": {}}}",
                b.module.name(),
                b.lanes,
                b.fc_after
            ));
        }
        if !best.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n");
        out.push_str("  }\n}\n");
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign {}: {} cell(s), {} ok, {} failed",
            self.name,
            self.cells.len(),
            self.ok_count(),
            self.cells.len() - self.ok_count()
        )?;
        for (index, row) in self.cells.iter().enumerate() {
            match &row.outcome {
                Ok(report) => writeln!(
                    f,
                    "{:<36} size {:>5} -> {:<5} cycles {:>8} -> {:<8} fc {:.2}% -> {:.2}% ({:+.2} vs baseline)",
                    row.cell.to_string(),
                    report.original_size,
                    report.compacted_size,
                    report.original_duration,
                    report.compacted_duration,
                    report.fc_before * 100.0,
                    report.fc_after * 100.0,
                    self.coverage_delta(index).unwrap_or(0.0) * 100.0,
                )?,
                Err(err) => writeln!(f, "{:<36} FAILED: {err}", row.cell.to_string())?,
            }
        }
        for b in self.best_shape() {
            writeln!(
                f,
                "best shape for {:<12} {:>2} lanes (fc_after {:.2}%)",
                b.module.name(),
                b.lanes,
                b.fc_after * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_core::{compact_job, JobOptions};
    use warpstl_fault::{FaultModel, SimBackend};
    use warpstl_programs::generators::{generate_imm, ImmConfig};
    use warpstl_programs::serialize::ptp_to_text;

    fn base_report() -> CompactionReport {
        let text = ptp_to_text(&generate_imm(&ImmConfig {
            sb_count: 2,
            ..ImmConfig::default()
        }));
        compact_job(&text, &JobOptions::default(), None, None)
            .unwrap()
            .report
    }

    fn cell(module: ModuleKind, lanes: usize) -> Cell {
        Cell {
            module,
            lanes,
            model: FaultModel::StuckAt,
            backend: SimBackend::Auto,
            drop_detected: true,
        }
    }

    fn ok_row(module: ModuleKind, lanes: usize, fc_after: f64) -> CellResult {
        let mut report = base_report();
        report.fc_after = fc_after;
        CellResult {
            cell: cell(module, lanes),
            outcome: Ok(report),
        }
    }

    #[test]
    fn best_shape_prefers_coverage_then_fewer_lanes() {
        let report = CampaignReport {
            name: "t".into(),
            cells: vec![
                ok_row(ModuleKind::DecoderUnit, 32, 0.75),
                ok_row(ModuleKind::DecoderUnit, 8, 0.80),
                ok_row(ModuleKind::Sfu, 16, 0.60),
                ok_row(ModuleKind::Sfu, 8, 0.60), // tie: fewer lanes wins
            ],
        };
        let best = report.best_shape();
        assert_eq!(best.len(), 2);
        assert_eq!(
            (best[0].module, best[0].lanes),
            (ModuleKind::DecoderUnit, 8)
        );
        assert_eq!((best[1].module, best[1].lanes), (ModuleKind::Sfu, 8));
    }

    #[test]
    fn coverage_delta_is_relative_to_the_first_ok_cell_of_the_module() {
        let report = CampaignReport {
            name: "t".into(),
            cells: vec![
                CellResult {
                    cell: cell(ModuleKind::DecoderUnit, 12),
                    outcome: Err("bad request: invalid lane count 12".into()),
                },
                ok_row(ModuleKind::DecoderUnit, 8, 0.50),
                ok_row(ModuleKind::DecoderUnit, 16, 0.75),
            ],
        };
        // The failed cell is skipped: the baseline is the first *ok* cell.
        assert_eq!(report.coverage_delta(0), None);
        assert_eq!(report.coverage_delta(1), Some(0.0));
        assert_eq!(report.coverage_delta(2), Some(0.25));
    }

    #[test]
    fn json_is_deterministic_and_escapes_errors() {
        let report = CampaignReport {
            name: "q\"uote".into(),
            cells: vec![
                ok_row(ModuleKind::DecoderUnit, 8, 0.5),
                CellResult {
                    cell: cell(ModuleKind::DecoderUnit, 12),
                    outcome: Err("lane \"12\" rejected".into()),
                },
            ],
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.contains("\"campaign\": \"q\\\"uote\""), "{json}");
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("\"error\": \"lane \\\"12\\\" rejected\""));
        assert!(json.contains("\"cells_total\": 2"));
        assert!(json.contains("\"cells_ok\": 1"));
        assert!(json.contains("\"cells_failed\": 1"));
        assert!(json.contains("\"coverage_delta\": 0\n"));
        assert!(json.contains("\"best_shape\": [\n      {\"module\": \"decoder_unit\", \"lanes\": 8, \"fc_after\": 0.5}"));
        // Volatile fields stay out of the byte-compared document.
        assert!(!json.contains("compaction_time"));
        assert!(!json.contains("cache"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn display_lists_cells_and_winners() {
        let report = CampaignReport {
            name: "view".into(),
            cells: vec![
                ok_row(ModuleKind::DecoderUnit, 8, 0.5),
                CellResult {
                    cell: cell(ModuleKind::DecoderUnit, 12),
                    outcome: Err("nope".into()),
                },
            ],
        };
        let text = report.to_string();
        assert!(text.contains("campaign view: 2 cell(s), 1 ok, 1 failed"));
        assert!(text.contains("FAILED: nope"));
        assert!(text.contains("best shape for decoder_unit"));
    }
}
