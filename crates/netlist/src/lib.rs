#![warn(missing_docs)]
//! # warpstl-netlist
//!
//! The gate-level substrate of the warpstl workspace: structural netlists,
//! a bit-parallel logic simulator, a pattern-sequence format ("VCDE", after
//! the format named in the paper), and generators for the three GPU modules
//! the paper targets (Decoder Unit, SP core, SFU datapath).
//!
//! The paper synthesizes these modules from the FlexGripPlus RTL with a
//! commercial flow onto the Nangate 15 nm library. We instead *construct*
//! gate-level implementations directly: real gate graphs with the same I/O
//! semantics the instruction stream exercises, sized at a few thousand gates
//! each. Stuck-at fault behaviour (warpstl-fault) and ATPG (warpstl-atpg)
//! operate on these structures.
//!
//! # Examples
//!
//! Build a 4-bit adder and simulate it:
//!
//! ```
//! use warpstl_netlist::{Builder, LogicSim};
//!
//! let mut b = Builder::new("adder4");
//! let a = b.input_bus("a", 4);
//! let c = b.input_bus("b", 4);
//! let (sum, carry) = b.add(&a, &c);
//! b.output_bus("sum", &sum);
//! b.output("carry", carry);
//! let netlist = b.finish();
//!
//! let mut sim = LogicSim::new(&netlist);
//! sim.set_input_u64("a", 11);
//! sim.set_input_u64("b", 6);
//! sim.eval_comb();
//! assert_eq!(sim.output_u64("sum"), (11 + 6) & 0xf);
//! assert_eq!(sim.output_u64("carry"), 1);
//! ```

mod builder;
mod cones;
pub mod fixtures;
mod gate;
pub mod io;
mod level;
pub mod modules;
mod netlist;
mod sim;
mod vcde;

pub use builder::{Builder, Bus};
pub use cones::FanoutCones;
pub use gate::{Gate, GateKind, NetId};
pub use level::{LevelSegment, Levelization};
pub use netlist::{Netlist, NetlistError, PortMap};
pub use sim::{simulate_seq, LogicSim};
pub use vcde::{ParseVcdeError, PatternSeq};
