//! Topological levelization: ranks every gate by logic depth and packs the
//! result into flat, rank-major structure-of-arrays form.
//!
//! This is the classic GPU-simulator layout (GATSPI-style): gates of equal
//! rank are independent, so a simulator can evaluate one rank after another
//! as tight loops over contiguous arrays instead of dispatching per gate.
//! Within a rank the gates are additionally grouped by [`GateKind`], so each
//! run of identical cells — a [`LevelSegment`] — evaluates as one branch-free
//! loop over wide pattern words. The fault engine's levelized kernel
//! (`warpstl-fault`) consumes this layout; the companion [`FanoutCones`]
//! analysis supplies the per-fault pruning (a fault's cone spans a contiguous
//! rank range starting at its site's rank, which is how cone pruning becomes
//! rank-range masking in the kernel).
//!
//! Ranks follow the same convention as [`Netlist::logic_depth`]: primary
//! inputs, constants, and flip-flop outputs are rank 0 (their values are
//! fixed before combinational settling), and a logic gate's rank is one more
//! than the maximum rank of its inputs.
//!
//! [`FanoutCones`]: crate::FanoutCones

use crate::{GateKind, Netlist};

/// A maximal run of same-kind gates within one rank of a [`Levelization`]:
/// `order[start..end]` all have kind `kind` and rank `rank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSegment {
    /// The cell type shared by every gate in the segment.
    pub kind: GateKind,
    /// The topological rank shared by every gate in the segment.
    pub rank: u32,
    /// First index into [`Levelization::order`] (inclusive).
    pub start: u32,
    /// Last index into [`Levelization::order`] (exclusive).
    pub end: u32,
}

impl LevelSegment {
    /// The segment's index range into [`Levelization::order`].
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }

    /// The number of gates in the segment.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the segment is empty (never produced by [`Levelization::of`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Rank-major structure-of-arrays view of a [`Netlist`], built once per
/// module and reused by every simulation run (see the module docs).
///
/// # Examples
///
/// ```
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("chain");
/// let a = b.input("a");
/// let x = b.not(a);
/// let y = b.not(x);
/// b.output("y", y);
/// let n = b.finish();
///
/// let levels = n.levelize();
/// assert_eq!(levels.ranks(), 3); // input at 0, the two inverters at 1, 2
/// assert_eq!(levels.rank_of(y.index()), 2);
/// // Segments partition the rank-major order into same-kind runs.
/// assert_eq!(levels.segments().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Topological rank per gate, indexed by gate index.
    rank_of: Vec<u32>,
    /// Number of distinct ranks (`max rank + 1`; 0 for an empty netlist).
    ranks: u32,
    /// Gate indices sorted by `(rank, kind, index)` — the evaluation order.
    order: Vec<u32>,
    /// Input net ids per gate, aligned with `order` (unused pins hold
    /// `u32::MAX` and must not be read past the kind's arity).
    pins: Vec<[u32; 3]>,
    /// Same-kind runs within each rank, covering `order` exactly.
    segments: Vec<LevelSegment>,
}

impl Levelization {
    /// Builds the levelization of `netlist`.
    ///
    /// Well-formed netlists (the [`Builder`](crate::Builder) and
    /// `Netlist::from_parts` invariant: non-DFF gates read strictly
    /// earlier nets) get exact ranks. On relaxed netlists a forward or
    /// self reference contributes rank 0, keeping the pass total; such
    /// netlists fail the lint gate before any simulator consumes this.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Levelization {
        let gates = netlist.gates();
        let n = gates.len();
        let mut rank_of = vec![0u32; n];
        let mut max_rank = 0u32;
        for (i, g) in gates.iter().enumerate() {
            let r = match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => 0,
                _ => {
                    let mut m = 0u32;
                    for &p in g.inputs() {
                        if p.index() < i {
                            m = m.max(rank_of[p.index()]);
                        }
                    }
                    m + 1
                }
            };
            rank_of[i] = r;
            max_rank = max_rank.max(r);
        }

        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&g| (rank_of[g as usize], gates[g as usize].kind as u8, g));
        let pins: Vec<[u32; 3]> = order
            .iter()
            .map(|&g| {
                let p = gates[g as usize].pins;
                [p[0].0, p[1].0, p[2].0]
            })
            .collect();

        let mut segments = Vec::new();
        let mut s = 0usize;
        while s < order.len() {
            let g0 = order[s] as usize;
            let (rank, kind) = (rank_of[g0], gates[g0].kind);
            let mut e = s + 1;
            while e < order.len() && {
                let gi = order[e] as usize;
                rank_of[gi] == rank && gates[gi].kind == kind
            } {
                e += 1;
            }
            segments.push(LevelSegment {
                kind,
                rank,
                start: s as u32,
                end: e as u32,
            });
            s = e;
        }

        Levelization {
            rank_of,
            ranks: if n == 0 { 0 } else { max_rank + 1 },
            order,
            pins,
            segments,
        }
    }

    /// The number of gates covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// Whether the underlying netlist had no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// The number of distinct ranks (`max rank + 1`; 0 when empty).
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.ranks as usize
    }

    /// The topological rank of gate `gate`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    #[must_use]
    pub fn rank_of(&self, gate: usize) -> u32 {
        self.rank_of[gate]
    }

    /// Gate indices in rank-major `(rank, kind, index)` order.
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Input net ids aligned with [`Levelization::order`]; entries past a
    /// gate's arity hold `u32::MAX`.
    #[must_use]
    pub fn pins(&self) -> &[[u32; 3]] {
        &self.pins
    }

    /// The same-kind runs partitioning [`Levelization::order`].
    #[must_use]
    pub fn segments(&self) -> &[LevelSegment] {
        &self.segments
    }

    /// The half-open rank range `[lo, hi)` spanned by `gates` — the
    /// rank-range mask of a fanout cone. Returns `(0, 0)` for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if a gate index is out of range.
    #[must_use]
    pub fn rank_range<I: IntoIterator<Item = u32>>(&self, gates: I) -> (u32, u32) {
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for g in gates {
            let r = self.rank_of[g as usize];
            lo = lo.min(r);
            hi = hi.max(r + 1);
        }
        if lo == u32::MAX {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

impl Netlist {
    /// Builds the [`Levelization`] analysis for this netlist.
    #[must_use]
    pub fn levelize(&self) -> Levelization {
        Levelization::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn single_gate_module_is_one_rank() {
        // Smallest well-formed module: one input fed straight to an output.
        let mut b = Builder::new("wire");
        let a = b.input("a");
        b.output("a_out", a);
        let n = b.finish();
        let l = n.levelize();
        assert_eq!(l.len(), 1);
        assert_eq!(l.ranks(), 1);
        assert_eq!(l.rank_of(0), 0);
        assert_eq!(l.order(), &[0]);
        assert_eq!(l.segments().len(), 1);
        assert_eq!(l.segments()[0].kind, GateKind::Input);
        assert_eq!(l.segments()[0].range(), 0..1);
    }

    #[test]
    fn maximum_rank_chain_counts_every_gate() {
        // A chain of N inverters must produce N + 1 ranks with exactly one
        // gate in each logic rank — the worst case for rank count.
        const N: usize = 97;
        let mut b = Builder::new("chain");
        let mut net = b.input("a");
        for _ in 0..N {
            net = b.not(net);
        }
        b.output("z", net);
        let n = b.finish();
        let l = n.levelize();
        assert_eq!(l.ranks(), N + 1);
        assert_eq!(l.rank_of(net.index()), N as u32);
        assert_eq!(l.segments().len(), N + 1);
        assert!(l.segments().iter().skip(1).all(|s| s.len() == 1));
        // Rank-range masking of the last gate's singleton cone.
        assert_eq!(l.rank_range([net.index() as u32]), (N as u32, N as u32 + 1));
        assert_eq!(l.rank_range(std::iter::empty()), (0, 0));
    }

    #[test]
    fn disconnected_outputs_and_sinkless_gates_are_ranked() {
        // An output net nothing reads, plus logic that feeds no output at
        // all: levelization ranks every gate regardless of observability.
        let mut b = Builder::new("loose");
        let a = b.input("a");
        let c = b.input("c");
        let dangling = b.and(a, c); // never read, never an output
        let solo = b.not(a);
        b.output("solo", solo); // read by nothing downstream
        let n = b.finish();
        let l = n.levelize();
        assert_eq!(l.len(), n.gates().len());
        assert_eq!(l.rank_of(dangling.index()), 1);
        assert_eq!(l.rank_of(solo.index()), 1);
        // The order is a permutation of all gates.
        let mut seen = l.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..n.gates().len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn segments_partition_order_and_respect_dependencies() {
        let n = crate::modules::ModuleKind::DecoderUnit.build();
        let l = n.levelize();
        // Segments tile `order` exactly, in rank order.
        let mut pos = 0u32;
        for s in l.segments() {
            assert_eq!(s.start, pos);
            assert!(s.end > s.start);
            for &g in &l.order()[s.range()] {
                assert_eq!(l.rank_of(g as usize), s.rank);
                assert_eq!(n.gates()[g as usize].kind, s.kind);
            }
            pos = s.end;
        }
        assert_eq!(pos as usize, n.gates().len());
        // Every logic gate's inputs sit at strictly lower ranks, so a
        // rank-major sweep is a valid evaluation order.
        for (i, g) in n.gates().iter().enumerate() {
            if g.kind.arity() > 0 && g.kind != GateKind::Dff {
                for &p in g.inputs() {
                    assert!(l.rank_of(p.index()) < l.rank_of(i));
                }
            }
        }
        // Pins travel with the order.
        for (k, &g) in l.order().iter().enumerate() {
            let gate = &n.gates()[g as usize];
            for (q, &p) in gate.inputs().iter().enumerate() {
                assert_eq!(l.pins()[k][q], p.0);
            }
        }
    }

    #[test]
    fn dffs_rank_zero_like_inputs() {
        // q <- XOR(q, in): the flip-flop output is a rank-0 source even
        // though its D cone feeds back.
        let mut b = Builder::new("acc");
        let i = b.input("in");
        let q = b.dff_placeholder();
        let x = b.xor(q, i);
        b.connect_dff(q, x);
        b.output("q", q);
        let n = b.finish();
        let l = n.levelize();
        assert_eq!(l.rank_of(q.index()), 0);
        assert_eq!(l.rank_of(x.index()), 1);
        assert_eq!(l.ranks(), 2);
    }

    #[test]
    fn matches_logic_depth() {
        // `ranks` agrees with the netlist's own depth metric on a real
        // module: logic_depth is the maximum logic rank.
        for kind in crate::modules::ModuleKind::ALL {
            let n = kind.build();
            let l = n.levelize();
            assert_eq!(l.ranks(), n.logic_depth() + 1, "{kind:?}");
        }
    }
}
