//! Deliberately malformed netlists for exercising the static analyzer.
//!
//! [`Builder::finish`](crate::Builder::finish) enforces the structural
//! invariants (causal pin references, no dangling nets), so a *valid*
//! netlist can never contain a combinational loop or an undriven pin.
//! The analyzer lints still have to detect those defects — they guard
//! netlists imported from outside the builder — and these fixtures are
//! the seeded counterexamples the lint tests and the
//! `warpstl analyze` CLI smoke tests run against.
//!
//! The malformed fixtures must only be *analyzed*: simulating one is
//! undefined (the simulators assume the invariants they break). The
//! exception is [`redundant_logic`], which is a valid netlist seeded
//! with provably redundant logic for the implication engine.

use crate::{Builder, Gate, GateKind, NetId, Netlist, PortMap};

/// A netlist with a two-gate combinational loop.
///
/// ```text
/// n0 = INPUT x        n2 = AND(n0, n3)   <- reads n3, built later
/// n1 = INPUT y        n3 = AND(n2, n1)   <- closes the cycle n2 -> n3 -> n2
///                     n4 = OR(n3, n0)    -> output z
/// ```
///
/// # Examples
///
/// ```
/// let n = warpstl_netlist::fixtures::combinational_loop();
/// assert!(n.is_combinational());
/// assert_eq!(n.gates().len(), 5);
/// ```
#[must_use]
pub fn combinational_loop() -> Netlist {
    let gates = vec![
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::And, &[NetId(0), NetId(3)]),
        Gate::new(GateKind::And, &[NetId(2), NetId(1)]),
        Gate::new(GateKind::Or, &[NetId(3), NetId(0)]),
    ];
    let mut inputs = PortMap::new();
    inputs.push("x", &[NetId(0)]);
    inputs.push("y", &[NetId(1)]);
    let mut outputs = PortMap::new();
    outputs.push("z", &[NetId(4)]);
    Netlist::from_parts_relaxed("fixture_comb_loop".to_string(), gates, inputs, outputs)
}

/// A netlist with an undriven (dangling) pin reference.
///
/// Gate `n2` reads net `n7`, but only three gates exist: the pin floats.
///
/// # Examples
///
/// ```
/// let n = warpstl_netlist::fixtures::undriven();
/// assert_eq!(n.gates().len(), 3);
/// ```
#[must_use]
pub fn undriven() -> Netlist {
    let gates = vec![
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::And, &[NetId(0), NetId(7)]),
    ];
    let mut inputs = PortMap::new();
    inputs.push("x", &[NetId(0)]);
    inputs.push("y", &[NetId(1)]);
    let mut outputs = PortMap::new();
    outputs.push("z", &[NetId(2)]);
    Netlist::from_parts_relaxed("fixture_undriven".to_string(), gates, inputs, outputs)
}

/// A *valid* netlist seeded with implication-provable redundant logic,
/// for exercising the static implication engine and the
/// `redundant-logic` lint.
///
/// `s = OR(a, NOT a)` is a tautology, so the mux `m = MUX(s, w, g2)`
/// never selects `g2 = AND(c, d)`: every fault on `g2`'s stem (and on
/// the mux's deselected data pin) is untestable, and `s` itself can
/// never be driven to 0. Unlike the malformed fixtures above, this one
/// satisfies every builder invariant and may be simulated.
///
/// ```text
/// n0 = INPUT a     n3 = INPUT c      n6 = INPUT w
/// n1 = NOT n0      n4 = INPUT d      n7 = MUX(n2, n6, n5) -> output m
/// n2 = OR(n0, n1)  n5 = AND(n3, n4)
/// ```
///
/// # Examples
///
/// ```
/// let n = warpstl_netlist::fixtures::redundant_logic();
/// assert!(n.is_combinational());
/// assert_eq!(n.gates().len(), 8);
/// ```
#[must_use]
pub fn redundant_logic() -> Netlist {
    let mut b = Builder::new("fixture_redundant_logic");
    let a = b.input("a");
    let na = b.not(a);
    let s = b.or(a, na);
    let c = b.input("c");
    let d = b.input("d");
    let g2 = b.and(c, d);
    let w = b.input("w");
    let m = b.mux(s, w, g2);
    b.output("m", m);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_fixture_shape() {
        let n = combinational_loop();
        assert_eq!(n.name(), "fixture_comb_loop");
        assert!(n.is_combinational());
        // The cycle: n2 reads n3 and n3 reads n2.
        assert!(n.gates()[2].inputs().contains(&NetId(3)));
        assert!(n.gates()[3].inputs().contains(&NetId(2)));
        // Structural accessors stay usable.
        assert_eq!(n.fanout(NetId(3)), 2);
        let _ = n.logic_depth();
    }

    #[test]
    fn redundant_logic_fixture_shape() {
        let n = redundant_logic();
        assert_eq!(n.name(), "fixture_redundant_logic");
        assert!(n.is_combinational());
        assert_eq!(n.inputs().width(), 4);
        // n2 = OR(a, NOT a) is the tautologous select.
        assert_eq!(n.gates()[2].kind, GateKind::Or);
        assert_eq!(n.gates()[7].kind, GateKind::Mux);
        assert_eq!(n.gates()[7].pins[0], NetId(2));
    }

    #[test]
    fn undriven_fixture_shape() {
        let n = undriven();
        assert!(n.gates()[2]
            .inputs()
            .iter()
            .any(|p| p.index() >= n.gates().len()));
        // Dangling pins are skipped by fanout counting and depth.
        let _ = n.logic_depth();
    }
}
