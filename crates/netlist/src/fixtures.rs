//! Deliberately malformed netlists for exercising the static analyzer.
//!
//! [`Builder::finish`](crate::Builder::finish) enforces the structural
//! invariants (causal pin references, no dangling nets), so a *valid*
//! netlist can never contain a combinational loop or an undriven pin.
//! The analyzer lints still have to detect those defects — they guard
//! netlists imported from outside the builder — and these fixtures are
//! the seeded counterexamples the lint tests and the
//! `warpstl analyze` CLI smoke tests run against.
//!
//! Fixture netlists must only be *analyzed*: simulating one is undefined
//! (the simulators assume the invariants these fixtures break).

use crate::{Gate, GateKind, NetId, Netlist, PortMap};

/// A netlist with a two-gate combinational loop.
///
/// ```text
/// n0 = INPUT x        n2 = AND(n0, n3)   <- reads n3, built later
/// n1 = INPUT y        n3 = AND(n2, n1)   <- closes the cycle n2 -> n3 -> n2
///                     n4 = OR(n3, n0)    -> output z
/// ```
///
/// # Examples
///
/// ```
/// let n = warpstl_netlist::fixtures::combinational_loop();
/// assert!(n.is_combinational());
/// assert_eq!(n.gates().len(), 5);
/// ```
#[must_use]
pub fn combinational_loop() -> Netlist {
    let gates = vec![
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::And, &[NetId(0), NetId(3)]),
        Gate::new(GateKind::And, &[NetId(2), NetId(1)]),
        Gate::new(GateKind::Or, &[NetId(3), NetId(0)]),
    ];
    let mut inputs = PortMap::new();
    inputs.push("x", &[NetId(0)]);
    inputs.push("y", &[NetId(1)]);
    let mut outputs = PortMap::new();
    outputs.push("z", &[NetId(4)]);
    Netlist::from_parts_relaxed("fixture_comb_loop".to_string(), gates, inputs, outputs)
}

/// A netlist with an undriven (dangling) pin reference.
///
/// Gate `n2` reads net `n7`, but only three gates exist: the pin floats.
///
/// # Examples
///
/// ```
/// let n = warpstl_netlist::fixtures::undriven();
/// assert_eq!(n.gates().len(), 3);
/// ```
#[must_use]
pub fn undriven() -> Netlist {
    let gates = vec![
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::Input, &[]),
        Gate::new(GateKind::And, &[NetId(0), NetId(7)]),
    ];
    let mut inputs = PortMap::new();
    inputs.push("x", &[NetId(0)]);
    inputs.push("y", &[NetId(1)]);
    let mut outputs = PortMap::new();
    outputs.push("z", &[NetId(2)]);
    Netlist::from_parts_relaxed("fixture_undriven".to_string(), gates, inputs, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_fixture_shape() {
        let n = combinational_loop();
        assert_eq!(n.name(), "fixture_comb_loop");
        assert!(n.is_combinational());
        // The cycle: n2 reads n3 and n3 reads n2.
        assert!(n.gates()[2].inputs().contains(&NetId(3)));
        assert!(n.gates()[3].inputs().contains(&NetId(2)));
        // Structural accessors stay usable.
        assert_eq!(n.fanout(NetId(3)), 2);
        let _ = n.logic_depth();
    }

    #[test]
    fn undriven_fixture_shape() {
        let n = undriven();
        assert!(n.gates()[2]
            .inputs()
            .iter()
            .any(|p| p.index() >= n.gates().len()));
        // Dangling pins are skipped by fanout counting and depth.
        let _ = n.logic_depth();
    }
}
