//! Fanout-cone analysis: which gates can a net's value ever influence?
//!
//! The fault simulator uses this to prune work: when a batch injects faults
//! at up to 63 sites, every gate *outside* the union of the sites' fanout
//! cones carries exactly the good-machine value in all lanes, so only cone
//! gates need per-batch re-evaluation.
//!
//! Reachability is computed over the *static* gate graph including the
//! D-input edges of flip-flops, so a cone also covers multi-cycle fault
//! propagation through state: if a fault can reach a DFF's D pin in cycle
//! *t*, the DFF (and transitively its readers) are in the cone and carry
//! per-batch state from cycle *t + 1* on.

use crate::{NetId, Netlist};

/// Precomputed fanout successor graph of a [`Netlist`], in compressed
/// sparse-row form, with union-cone queries.
///
/// Built once per netlist (O(gates + pins)); each union-cone query is a
/// breadth-first traversal touching only the cone itself.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::{Builder, FanoutCones};
///
/// let mut b = Builder::new("chain");
/// let a = b.input("a");
/// let x = b.not(a);     // n1
/// let y = b.and(a, x);  // n2
/// b.output("y", y);
/// let n = b.finish();
///
/// let cones = FanoutCones::of(&n);
/// // `a` reaches everything; `x` reaches only itself and `y`.
/// assert_eq!(cones.cone_of(a).len(), 3);
/// assert_eq!(cones.cone_of(x), vec![x.index() as u32, y.index() as u32]);
/// ```
#[derive(Debug, Clone)]
pub struct FanoutCones {
    /// CSR offsets: successors of gate `g` are `succs[offsets[g]..offsets[g + 1]]`.
    offsets: Vec<u32>,
    /// Successor gate indices, grouped by source gate.
    succs: Vec<u32>,
}

impl FanoutCones {
    /// Builds the successor graph of `netlist`.
    #[must_use]
    pub fn of(netlist: &Netlist) -> FanoutCones {
        let gates = netlist.gates();
        let n = gates.len();
        let mut counts = vec![0u32; n + 1];
        for g in gates {
            for &pin in g.inputs() {
                counts[pin.index() + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut next = offsets.clone();
        let mut succs = vec![0u32; offsets[n] as usize];
        for (i, g) in gates.iter().enumerate() {
            for &pin in g.inputs() {
                let slot = next[pin.index()] as usize;
                succs[slot] = i as u32;
                next[pin.index()] += 1;
            }
        }
        FanoutCones { offsets, succs }
    }

    /// The number of gates in the underlying netlist.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the netlist has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The gates directly reading net `net` (DFFs appear as successors of
    /// their D input).
    #[must_use]
    pub fn successors(&self, net: usize) -> &[u32] {
        &self.succs[self.offsets[net] as usize..self.offsets[net + 1] as usize]
    }

    /// The transitive fanout cone of one net, including the driving gate
    /// itself, as ascending gate indices (ascending order is a topological
    /// order of the combinational logic).
    #[must_use]
    pub fn cone_of(&self, net: NetId) -> Vec<u32> {
        self.union_cone([net.index()])
    }

    /// The union of the fanout cones of `seeds`, including the seeds, as
    /// ascending gate indices.
    ///
    /// # Panics
    ///
    /// Panics if a seed is out of range.
    #[must_use]
    pub fn union_cone<I: IntoIterator<Item = usize>>(&self, seeds: I) -> Vec<u32> {
        let mut in_cone = vec![false; self.len()];
        let mut frontier: Vec<u32> = Vec::new();
        for s in seeds {
            assert!(s < self.len(), "seed gate {s} out of range");
            if !in_cone[s] {
                in_cone[s] = true;
                frontier.push(s as u32);
            }
        }
        let mut cone = frontier.clone();
        while let Some(g) = frontier.pop() {
            for &r in self.successors(g as usize) {
                if !in_cone[r as usize] {
                    in_cone[r as usize] = true;
                    cone.push(r);
                    frontier.push(r);
                }
            }
        }
        cone.sort_unstable();
        cone
    }
}

impl Netlist {
    /// Builds the [`FanoutCones`] analysis for this netlist.
    #[must_use]
    pub fn fanout_cones(&self) -> FanoutCones {
        FanoutCones::of(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::Builder;

    #[test]
    fn combinational_cone_is_forward_reachability() {
        // a -> x = NOT a -> y = AND(a, x); z = NOT b independent.
        let mut b = Builder::new("t");
        let a = b.input("a");
        let bb = b.input("b");
        let x = b.not(a);
        let y = b.and(a, x);
        let z = b.not(bb);
        b.output("y", y);
        b.output("z", z);
        let n = b.finish();
        let cones = n.fanout_cones();

        assert_eq!(
            cones.cone_of(a),
            vec![a.index() as u32, x.index() as u32, y.index() as u32]
        );
        assert_eq!(cones.cone_of(bb), vec![bb.index() as u32, z.index() as u32]);
        // Sinks reach only themselves.
        assert_eq!(cones.cone_of(y), vec![y.index() as u32]);
    }

    #[test]
    fn union_cone_merges_and_dedups() {
        let mut b = Builder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.and(a, c);
        b.output("x", x);
        let n = b.finish();
        let cones = n.fanout_cones();
        let u = cones.union_cone([a.index(), c.index()]);
        assert_eq!(
            u,
            vec![a.index() as u32, c.index() as u32, x.index() as u32]
        );
        // Seeds already inside another seed's cone collapse.
        let u2 = cones.union_cone([a.index(), x.index()]);
        assert_eq!(u2, cones.cone_of(a));
    }

    #[test]
    fn cones_cross_dff_boundaries() {
        // in -> DFF -> out: the input's cone must include the DFF and its
        // readers (multi-cycle propagation through state).
        let mut b = Builder::new("seq");
        let d = b.input("d");
        let q = b.dff(d);
        let z = b.not(q);
        b.output("z", z);
        let n = b.finish();
        let cones = n.fanout_cones();
        let cone = cones.cone_of(d);
        assert!(cone.contains(&(q.index() as u32)));
        assert!(cone.contains(&(z.index() as u32)));
    }

    #[test]
    fn dff_feedback_loops_terminate() {
        // q <- XOR(q, in): reachability over the cyclic graph must not spin.
        let mut b = Builder::new("acc");
        let i = b.input("in");
        let q = b.dff_placeholder();
        let x = b.xor(q, i);
        b.connect_dff(q, x);
        b.output("q", q);
        let n = b.finish();
        let cones = n.fanout_cones();
        let cone = cones.cone_of(i);
        assert!(cone.contains(&(q.index() as u32)));
        assert!(cone.contains(&(x.index() as u32)));
        // The q-cone includes the feedback XOR and itself.
        let qcone = cones.cone_of(q);
        assert!(qcone.contains(&(x.index() as u32)));
        assert!(qcone.contains(&(q.index() as u32)));
    }

    #[test]
    fn cones_are_sorted_ascending() {
        let n = crate::modules::ModuleKind::DecoderUnit.build();
        let cones = n.fanout_cones();
        let inputs = n.inputs().nets().to_vec();
        let u = cones.union_cone(inputs.iter().map(|n| n.index()));
        assert!(u.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        assert!(u.len() <= n.gates().len());
    }
}
