//! The FP32 unit: a single-precision floating-point add/multiply datapath
//! (unpack, exponent compare, mantissa align, add/multiply, normalize).
//!
//! FlexGripPlus pairs one FP32 unit with each SP core (the paper's SM has
//! 8 of them). The paper's evaluated STL targets the DU, SPs and SFUs; the
//! FP32 unit is provided as the natural extension target — the FPU test
//! program generator in `warpstl-programs` exercises it the same way.
//!
//! Inputs:
//!
//! | port | width | meaning |
//! |---|---|---|
//! | `op` | 2  | 0 = add, 1 = mul, 2 = min, 3 = max |
//! | `a`  | 32 | IEEE-754 operand A |
//! | `b`  | 32 | IEEE-754 operand B |
//!
//! Output: `y` (32-bit result). The datapath implements a *simplified*
//! round-toward-zero single precision without subnormals, NaN payloads or
//! overflow saturation — the [`reference()`] function defines the architectural semantics
//! bit-exactly, and the MiniGrip GPU model uses it for the FP32 opcodes'
//! results so functional and gate-level views agree.

use crate::{Builder, Bus, Netlist};

/// Operation select: add.
pub const OP_FADD: u8 = 0;
/// Operation select: multiply.
pub const OP_FMUL: u8 = 1;
/// Operation select: minimum (by magnitude ordering of the encoding).
pub const OP_FMIN: u8 = 2;
/// Operation select: maximum.
pub const OP_FMAX: u8 = 3;

/// The pattern width of the FP32 unit (`op` + two operands).
pub const PATTERN_WIDTH: usize = 2 + 32 + 32;

/// Builds the FP32 unit netlist.
#[must_use]
pub fn build() -> Netlist {
    let mut b = Builder::new("fp32");
    let op = b.input_bus("op", 2);
    let a = b.input_bus("a", 32);
    let bb = b.input_bus("b", 32);

    // Unpack.
    let (sa, ea, ma) = unpack(&a);
    let (sb, eb, mb) = unpack(&bb);

    // ---- Multiplier path: sign, exponent sum, mantissa product ----
    let s_mul = b.xor(sa, sb);
    // e_mul = ea + eb - 127 (9-bit arithmetic).
    let ea9: Bus = widen(&mut b, &ea, 9);
    let eb9: Bus = widen(&mut b, &eb, 9);
    let (esum, _) = b.add(&ea9, &eb9);
    let bias = b.constant(9, 127);
    let (e_mul_raw, _) = b.sub(&esum, &bias);
    // Mantissa product: (1.m_a[22:11]) * (1.m_b[22:11]) using the top 12
    // mantissa bits each (13-bit significands with the hidden one).
    let sig_a = significand(&mut b, &ma, &ea);
    let sig_b = significand(&mut b, &mb, &eb);
    let prod = b.mul(&sig_a, &sig_b); // 26 bits
                                      // Normalize: if prod[25] the product is in [2,4): shift right one and
                                      // bump the exponent.
    let norm_hi = prod[25];
    let shifted: Bus = prod[1..26].to_vec();
    let unshifted: Bus = prod[0..25].to_vec();
    let prod_n = b.mux_bus(norm_hi, &shifted, &unshifted); // 25 bits
    let one9 = b.constant(9, 1);
    let (e_mul_inc, _) = b.add(&e_mul_raw, &one9);
    let e_mul = b.mux_bus(norm_hi, &e_mul_inc, &e_mul_raw);
    // Result mantissa: bits below the hidden one, widened to 23.
    let m_mul: Bus = {
        let mut m: Bus = prod_n[..12].to_vec(); // low product bits
        let zero = b.const0();
        while m.len() < 23 {
            m.insert(0, zero);
        }
        m
    };

    // ---- Adder path: align smaller exponent, add/sub significands ----
    let a_ge_b = {
        let lt = b.lt_unsigned(&ea, &eb);
        b.not(lt)
    };
    let e_big = b.mux_bus(a_ge_b, &ea, &eb);
    let (ediff_ab, _) = b.sub(&ea, &eb);
    let (ediff_ba, _) = b.sub(&eb, &ea);
    let ediff = b.mux_bus(a_ge_b, &ediff_ab, &ediff_ba);
    let sig_big = b.mux_bus(a_ge_b, &sig_a, &sig_b);
    let sig_small = b.mux_bus(a_ge_b, &sig_b, &sig_a);
    // Align: shift the smaller significand right by min(ediff, 15).
    let sig_small_al = b.shr_barrel(&sig_small, &ediff[..4]);
    let signs_equal = b.xnor(sa, sb);
    // Same sign: add; different: subtract (big - small).
    let (sum, carry) = b.add(&sig_big, &sig_small_al);
    let (diff, _) = b.sub(&sig_big, &sig_small_al);
    let mag = b.mux_bus(signs_equal, &sum, &diff); // 13 bits
    let s_add = b.mux(a_ge_b, sa, sb);
    // Normalize the add result: carry-out shifts right once.
    let carry_and_same = b.and(signs_equal, carry);
    let mag_shift: Bus = {
        let mut v: Bus = mag[1..].to_vec();
        v.push(carry);
        v
    };
    let mag_n = b.mux_bus(carry_and_same, &mag_shift, &mag);
    let e_add9: Bus = widen(&mut b, &e_big, 9);
    let (e_add_inc, _) = b.add(&e_add9, &one9);
    let e_add = b.mux_bus(carry_and_same, &e_add_inc, &e_add9);
    let m_add: Bus = {
        let mut m: Bus = mag_n[..12].to_vec();
        let zero = b.const0();
        while m.len() < 23 {
            m.insert(0, zero);
        }
        m
    };

    // ---- Min/max path: compare the raw encodings as sign-magnitude ----
    let a_lt_b = float_lt(&mut b, &a, &bb, sa, sb);
    let min_r = b.mux_bus(a_lt_b, &a, &bb);
    let max_r = b.mux_bus(a_lt_b, &bb, &a);

    // ---- Pack and select ----
    let y_mul = pack(&mut b, s_mul, &e_mul[..8], &m_mul);
    let y_add = pack(&mut b, s_add, &e_add[..8], &m_add);
    let sel = b.decoder(&op);
    let mut y = Vec::with_capacity(32);
    for bit in 0..32 {
        let t0 = b.and(sel[OP_FADD as usize], y_add[bit]);
        let t1 = b.and(sel[OP_FMUL as usize], y_mul[bit]);
        let t2 = b.and(sel[OP_FMIN as usize], min_r[bit]);
        let t3 = b.and(sel[OP_FMAX as usize], max_r[bit]);
        let o1 = b.or(t0, t1);
        let o2 = b.or(t2, t3);
        y.push(b.or(o1, o2));
    }
    b.output_bus("y", &y);
    b.finish()
}

fn unpack(v: &[crate::NetId]) -> (crate::NetId, Bus, Bus) {
    (v[31], v[23..31].to_vec(), v[0..23].to_vec())
}

fn widen(b: &mut Builder, bus: &[crate::NetId], width: usize) -> Bus {
    let zero = b.const0();
    let mut v: Bus = bus.to_vec();
    while v.len() < width {
        v.push(zero);
    }
    v
}

/// The 13-bit significand: top 12 mantissa bits plus the hidden one (which
/// is 0 for zero/subnormal exponents).
fn significand(b: &mut Builder, m: &[crate::NetId], e: &[crate::NetId]) -> Bus {
    let e_nonzero = b.or_many(e);
    let mut sig: Bus = m[11..23].to_vec();
    sig.push(e_nonzero);
    sig
}

/// IEEE-style less-than on packed encodings (sign-magnitude order).
fn float_lt(
    b: &mut Builder,
    a: &[crate::NetId],
    bb: &[crate::NetId],
    sa: crate::NetId,
    sb: crate::NetId,
) -> crate::NetId {
    let mag_lt = b.lt_unsigned(&a[..31], &bb[..31]);
    let mag_gt = b.lt_unsigned(&bb[..31], &a[..31]);
    // a < b: (sa & !sb) | (both positive & mag_lt) | (both negative & mag_gt)
    let nsb = b.not(sb);
    let nsa = b.not(sa);
    let neg_only_a = b.and(sa, nsb);
    let both_pos = b.and(nsa, nsb);
    let both_neg = b.and(sa, sb);
    let t1 = b.and(both_pos, mag_lt);
    let t2 = b.and(both_neg, mag_gt);
    let o = b.or(neg_only_a, t1);
    b.or(o, t2)
}

fn pack(b: &mut Builder, s: crate::NetId, e: &[crate::NetId], m: &[crate::NetId]) -> Bus {
    let mut v: Bus = m.to_vec();
    v.extend_from_slice(e);
    v.push(s);
    debug_assert_eq!(v.len(), 32);
    let _ = b;
    v
}

/// Packs an FP32 stimulus into pattern bits (flat input order: `op`, `a`,
/// `b`).
#[must_use]
pub fn pack_pattern(op: u8, a: u32, b: u32) -> Vec<bool> {
    let mut bits = Vec::with_capacity(PATTERN_WIDTH);
    for i in 0..2 {
        bits.push((op >> i) & 1 == 1);
    }
    for v in [a, b] {
        for i in 0..32 {
            bits.push((v >> i) & 1 == 1);
        }
    }
    bits
}

/// The architectural function computed by the FP32 datapath (simplified
/// round-toward-zero single precision; see the module docs).
#[must_use]
pub fn reference(op: u8, a: u32, b: u32) -> u32 {
    let (sa, ea, ma) = ((a >> 31) & 1, (a >> 23) & 0xff, a & 0x7f_ffff);
    let (sb, eb, mb) = ((b >> 31) & 1, (b >> 23) & 0xff, b & 0x7f_ffff);
    let sig = |e: u32, m: u32| ((m >> 11) & 0xfff) | (((e != 0) as u32) << 12);
    let sig_a = sig(ea, ma);
    let sig_b = sig(eb, mb);
    match op {
        OP_FMUL => {
            let s = sa ^ sb;
            let mut e = (ea + eb).wrapping_sub(127) & 0x1ff;
            let prod = sig_a * sig_b; // <= 26 bits
            let norm = (prod >> 25) & 1;
            let prod_n = if norm == 1 { prod >> 1 } else { prod } & 0x1ff_ffff;
            if norm == 1 {
                e = (e + 1) & 0x1ff;
            }
            let m = (prod_n & 0xfff) << 11;
            (s << 31) | ((e & 0xff) << 23) | (m & 0x7f_ffff)
        }
        OP_FADD => {
            let a_ge_b = ea >= eb;
            let (e_big, ediff, sig_big, sig_small, s) = if a_ge_b {
                (ea, (ea.wrapping_sub(eb)) & 0xff, sig_a, sig_b, sa)
            } else {
                (eb, (eb.wrapping_sub(ea)) & 0xff, sig_b, sig_a, sb)
            };
            let sh = ediff & 0xf;
            let small_al = sig_small >> sh;
            let same = sa == sb;
            let (mag, carry) = if same {
                let s13 = (sig_big + small_al) & 0x1fff;
                let c = (sig_big + small_al) >> 13 & 1;
                (s13, c)
            } else {
                ((sig_big.wrapping_sub(small_al)) & 0x1fff, 0)
            };
            let mut e = e_big;
            let mag_n = if same && carry == 1 {
                e = (e + 1) & 0x1ff;
                (mag >> 1) | (carry << 12)
            } else {
                mag
            };
            let m = (mag_n & 0xfff) << 11;
            (s << 31) | ((e & 0xff) << 23) | (m & 0x7f_ffff)
        }
        OP_FMIN | OP_FMAX => {
            let mag_a = a & 0x7fff_ffff;
            let mag_b = b & 0x7fff_ffff;
            let a_lt_b = match (sa, sb) {
                (1, 0) => true,
                (0, 1) => false,
                (0, 0) => mag_a < mag_b,
                _ => mag_a > mag_b,
            };
            if (op == OP_FMIN) == a_lt_b {
                a
            } else {
                b
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;

    fn run(op: u8, a: u32, b: u32) -> u32 {
        let n = build();
        let mut sim = LogicSim::new(&n);
        sim.set_input_u64("op", op as u64);
        sim.set_input_u64("a", a as u64);
        sim.set_input_u64("b", b as u64);
        sim.eval_comb();
        sim.output_u64("y") as u32
    }

    #[test]
    fn netlist_matches_reference() {
        let vals = [
            0x3f80_0000u32, // 1.0
            0x4000_0000,    // 2.0
            0xbf00_0000,    // -0.5
            0x0000_0000,    // 0.0
            0x7f00_0000,    // huge
            0x1234_5678,
            0xdead_beef,
        ];
        for op in 0..4u8 {
            for &a in &vals {
                for &b in &vals {
                    assert_eq!(
                        run(op, a, b),
                        reference(op, a, b),
                        "op={op} a={a:#010x} b={b:#010x}"
                    );
                }
            }
        }
    }

    #[test]
    fn multiply_of_ones_is_near_one() {
        // 1.0 * 1.0 = 1.0 exactly in the simplified datapath.
        assert_eq!(run(OP_FMUL, 0x3f80_0000, 0x3f80_0000), 0x3f80_0000);
        // 2.0 * 2.0 = 4.0.
        assert_eq!(run(OP_FMUL, 0x4000_0000, 0x4000_0000), 0x4080_0000);
    }

    #[test]
    fn add_of_equal_magnitudes_doubles() {
        // 1.0 + 1.0 = 2.0.
        assert_eq!(run(OP_FADD, 0x3f80_0000, 0x3f80_0000), 0x4000_0000);
    }

    #[test]
    fn min_max_follow_ieee_ordering() {
        let one = 0x3f80_0000;
        let neg_half = 0xbf00_0000;
        assert_eq!(run(OP_FMIN, one, neg_half), neg_half);
        assert_eq!(run(OP_FMAX, one, neg_half), one);
        assert_eq!(run(OP_FMIN, neg_half, one), neg_half);
    }

    #[test]
    fn pattern_width_matches_port_map() {
        let n = build();
        assert_eq!(n.inputs().width(), PATTERN_WIDTH);
        assert_eq!(pack_pattern(1, 0, 0).len(), PATTERN_WIDTH);
    }
}
