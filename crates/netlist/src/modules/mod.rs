//! Gate-level generators for the GPU modules targeted by the paper's STL:
//! the Decoder Unit, the SP core, and the SFU datapath.
//!
//! The paper synthesizes these units from the FlexGripPlus RTL onto the
//! Nangate 15 nm library and fault-simulates the resulting netlists. We
//! construct equivalent gate-level structures directly: each generator
//! returns a [`Netlist`](crate::Netlist) whose inputs are exactly the values
//! the instruction stream drives into the unit, so the compaction flow's
//! per-cycle pattern capture and module-level fault observability work the
//! same way.
//!
//! | Module | Inputs | Outputs | Typical size |
//! |---|---|---|---|
//! | [`decoder_unit`] | instruction word + PC + scoreboard shadow | decoded control fields | ~1 k gates |
//! | [`sp_core`] | op/cmp select + three 32-bit operands | 32-bit result + flag | ~5 k gates |
//! | [`sfu`] | function select + 32-bit operand | 32-bit approximation | ~4 k gates |
//! | [`fp32`] | op select + two 32-bit operands | 32-bit FP result | ~3 k gates |

pub mod decoder_unit;
pub mod fp32;
pub mod sfu;
pub mod sp_core;

/// Identifies one of the generated GPU modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModuleKind {
    /// The instruction Decoder Unit.
    DecoderUnit,
    /// One SP (streaming processor) core.
    SpCore,
    /// One special function unit datapath.
    Sfu,
    /// One FP32 unit (paired with an SP core).
    Fp32,
}

impl ModuleKind {
    /// All module kinds.
    pub const ALL: [ModuleKind; 4] = [
        ModuleKind::DecoderUnit,
        ModuleKind::SpCore,
        ModuleKind::Sfu,
        ModuleKind::Fp32,
    ];

    /// The display name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModuleKind::DecoderUnit => "decoder_unit",
            ModuleKind::SpCore => "sp_core",
            ModuleKind::Sfu => "sfu",
            ModuleKind::Fp32 => "fp32",
        }
    }

    /// Builds the module's netlist.
    #[must_use]
    pub fn build(self) -> crate::Netlist {
        match self {
            ModuleKind::DecoderUnit => decoder_unit::build(),
            ModuleKind::SpCore => sp_core::build(),
            ModuleKind::Sfu => sfu::build(),
            ModuleKind::Fp32 => fp32::build(),
        }
    }

    /// How many instances of the module one SM contains (FlexGripPlus
    /// configured with 8 SP cores, 8 paired FP32 units and 2 SFUs, as in
    /// the paper).
    #[must_use]
    pub fn instances_per_sm(self) -> usize {
        match self {
            ModuleKind::DecoderUnit => 1,
            ModuleKind::SpCore | ModuleKind::Fp32 => 8,
            ModuleKind::Sfu => 2,
        }
    }
}

impl std::fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modules_build_and_validate() {
        for kind in ModuleKind::ALL {
            let n = kind.build();
            assert!(n.logic_gate_count() > 100, "{kind} too small: {n}");
            assert!(n.is_combinational(), "{kind} must be combinational");
        }
    }

    #[test]
    fn instance_counts_match_paper_configuration() {
        assert_eq!(ModuleKind::DecoderUnit.instances_per_sm(), 1);
        assert_eq!(ModuleKind::SpCore.instances_per_sm(), 8);
        assert_eq!(ModuleKind::Sfu.instances_per_sm(), 2);
        assert_eq!(ModuleKind::Fp32.instances_per_sm(), 8);
    }
}
