//! The Decoder Unit (DU): decodes the 64-bit instruction word fetched by the
//! SM front-end into control fields for the pipeline.
//!
//! This is the unit exercised by the IMM, MEM and CNTRL test programs. Its
//! single input is the instruction word (`word`, 64 bits — the exact
//! encoding of [`warpstl_isa::encoding`]); outputs are the decoded fields and
//! derived control signals. The raw opcode one-hot is *internal*: faults in
//! the decode tree are observable only through the compressed control
//! outputs, which keeps fault coverage realistically below 100 %.
//!
//! Besides the field decode, the unit contains the two datapath-heavy
//! sections a real decode stage carries: the *operand-routing network*
//! (selecting the 32-bit value forwarded to the execute stage's B input
//! from the immediate, the target or zero) and the *hazard scoreboard*
//! (comparing the source registers against the previous instruction's
//! destination, held in a shadow of the `word` fields).

use warpstl_isa::{ExecUnit, OpClass, Opcode};

use crate::{Builder, NetId, Netlist};

/// The pattern width of the DU: the instruction word, the fetch PC, and
/// the previous instruction's destination/write-enable (scoreboard shadow).
pub const PATTERN_WIDTH: usize = 64 + 16 + 6 + 1;

/// Builds the Decoder Unit netlist.
#[must_use]
pub fn build() -> Netlist {
    let mut b = Builder::new("decoder_unit");
    let word = b.input_bus("word", 64);
    let pc = b.input_bus("pc", 16);
    let prev_dst = b.input_bus("prev_dst", 6);
    let prev_we = b.input("prev_we");

    // Field slices (see warpstl_isa::encoding's layout).
    let opcode_bits = &word[58..64];
    let guard_pred = &word[55..58];
    let guard_neg = word[54];
    let dst = &word[48..54];
    let src_a = &word[42..48];
    let src_b = &word[36..42];
    let cmp = &word[33..36];
    let imm_flag = word[32];
    let low = &word[0..32];

    // Internal opcode one-hot (6 -> 64 decoder; entries beyond the ISA are
    // invalid).
    let onehot = b.decoder(opcode_bits);

    // Helper: OR of one-hot terms for opcodes satisfying a predicate.
    let or_where = |b: &mut Builder, pred: &dyn Fn(Opcode) -> bool| -> NetId {
        let terms: Vec<NetId> = Opcode::ALL
            .iter()
            .filter(|&&op| pred(op))
            .map(|&op| onehot[op.to_bits() as usize])
            .collect();
        if terms.is_empty() {
            b.const0()
        } else {
            b.or_many(&terms)
        }
    };

    let valid = or_where(&mut b, &|_| true);

    // Operation-class one-hot (8 classes).
    let classes = [
        OpClass::IntAlu,
        OpClass::Logic,
        OpClass::Fp32,
        OpClass::Convert,
        OpClass::Sfu,
        OpClass::Move,
        OpClass::Memory,
        OpClass::Control,
    ];
    let class_sigs: Vec<NetId> = classes
        .iter()
        .map(|&c| or_where(&mut b, &move |op| op.class() == c))
        .collect();

    // Execution-unit one-hot (5 units).
    let units = [
        ExecUnit::SpCore,
        ExecUnit::Fp32,
        ExecUnit::Sfu,
        ExecUnit::LoadStore,
        ExecUnit::Control,
    ];
    let unit_sigs: Vec<NetId> = units
        .iter()
        .map(|&u| or_where(&mut b, &move |op| ExecUnit::of(op) == u))
        .collect();

    // Derived control signals.
    let is_store = or_where(&mut b, &Opcode::is_store);
    let writes_pred = or_where(&mut b, &Opcode::writes_predicate);
    let has_target = or_where(&mut b, &Opcode::has_target);
    let has_imm32 = or_where(&mut b, &Opcode::has_imm32);
    let has_cmp = or_where(&mut b, &Opcode::has_cmp_modifier);
    let is_ctrl_flow = or_where(&mut b, &Opcode::is_control_flow);
    let no_dst = or_where(&mut b, &|op| {
        op.is_store() || op.is_control_flow() || op.writes_predicate() || op == Opcode::Nop
    });
    let nv = b.and(valid, valid); // keep `valid` observable through two paths
    let not_no_dst = b.not(no_dst);
    let reg_we = b.and(nv, not_no_dst);

    // Immediate datapath: select a 32-bit immediate (full word for the 32I
    // formats and branch targets, sign-extended low 16 bits otherwise),
    // gated by the short-imm flag for the register/imm16 formats.
    let wide = b.or(has_imm32, has_target);
    let sign = low[15];
    let mut imm16_ext: Vec<NetId> = low[..16].to_vec();
    for _ in 16..32 {
        imm16_ext.push(sign);
    }
    let imm_sel = b.mux_bus(wide, low, &imm16_ext);
    let use_imm = {
        let short_form = has_cmp_or_alu(&mut b, &onehot);
        let short_ok = b.and(imm_flag, short_form);
        b.or(wide, short_ok)
    };
    let imm_out: Vec<NetId> = imm_sel.iter().map(|&n| b.and(n, use_imm)).collect();

    // Gate the register fields by validity so fault effects in the decode
    // tree can mask or expose them (realistic observability).
    let dst_out: Vec<NetId> = dst.iter().map(|&n| b.and(n, reg_we)).collect();
    let src_a_out: Vec<NetId> = src_a.iter().map(|&n| b.and(n, nv)).collect();
    let src_b_out: Vec<NetId> = src_b.iter().map(|&n| b.and(n, nv)).collect();
    let cmp_out: Vec<NetId> = cmp.iter().map(|&n| b.and(n, has_cmp)).collect();
    let guard_out: Vec<NetId> = guard_pred.iter().map(|&n| b.and(n, nv)).collect();
    let three_src = or_where(&mut b, &|op| matches!(op, Opcode::Imad | Opcode::Ffma));
    let rc_out: Vec<NetId> = low[..6].iter().map(|&n| b.and(n, three_src)).collect();

    // Hazard scoreboard: RAW check of both source fields against the
    // previous instruction's destination.
    let eq_a = b.eq(src_a, &prev_dst);
    let eq_b = b.eq(src_b, &prev_dst);
    let raw_a = {
        let t = b.and(eq_a, prev_we);
        b.and(t, nv)
    };
    let raw_b = {
        let t = b.and(eq_b, prev_we);
        b.and(t, nv)
    };

    // Next-PC datapath: sequential increment, overridden by the branch
    // target when the instruction carries one.
    let one16 = b.constant(16, 1);
    let (pc_plus1, _) = b.add(&pc, &one16);
    let next_pc = b.mux_bus(has_target, &imm_sel[..16], &pc_plus1);

    // Word parity (the fetch-path integrity check of the decode stage).
    let parity = b.xor_many(&word);

    b.output("valid", valid);
    b.output_bus("class", &class_sigs);
    b.output_bus("unit", &unit_sigs);
    b.output_bus("dst", &dst_out);
    b.output_bus("src_a", &src_a_out);
    b.output_bus("src_b", &src_b_out);
    b.output_bus("rc", &rc_out);
    b.output_bus("guard_pred", &guard_out);
    b.output("guard_neg", guard_neg);
    b.output_bus("cmp", &cmp_out);
    b.output("imm_flag", imm_flag);
    b.output_bus("imm", &imm_out);
    b.output("is_store", is_store);
    b.output("writes_pred", writes_pred);
    b.output("has_target", has_target);
    b.output("is_ctrl_flow", is_ctrl_flow);
    b.output("reg_we", reg_we);
    b.output("raw_a", raw_a);
    b.output("raw_b", raw_b);
    b.output_bus("next_pc", &next_pc);
    b.output("parity", parity);
    b.finish()
}

/// OR of one-hot terms for opcodes that accept the short-immediate form.
fn has_cmp_or_alu(b: &mut Builder, onehot: &[NetId]) -> NetId {
    use Opcode::*;
    let short_imm_ops = [
        Iadd, Isub, Imul, Imnmx, And, Or, Xor, Shl, Shr, Fadd, Fmul, Fmnmx, Iset, Fset, Isetp,
        Fsetp,
    ];
    let terms: Vec<NetId> = short_imm_ops
        .iter()
        .map(|&op| onehot[op.to_bits() as usize])
        .collect();
    b.or_many(&terms)
}

/// Packs a decode-stage stimulus into pattern bits (flat input order:
/// `word`, `pc`, `prev_dst`, `prev_we`).
#[must_use]
pub fn pack_pattern(word: u64, pc: u16, prev_dst: u8, prev_we: bool) -> Vec<bool> {
    let mut bits: Vec<bool> = (0..64).map(|i| (word >> i) & 1 == 1).collect();
    bits.extend((0..16).map(|i| (pc >> i) & 1 == 1));
    bits.extend((0..6).map(|i| (prev_dst >> i) & 1 == 1));
    bits.push(prev_we);
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;
    use warpstl_isa::{encoding, Instruction, Reg};

    fn decode_outputs(word: u64) -> std::collections::HashMap<String, u64> {
        let n = build();
        let mut sim = LogicSim::new(&n);
        sim.set_input_u64("word", word);
        sim.eval_comb();
        n.outputs()
            .iter()
            .map(|(name, _)| (name.to_string(), sim.output_u64(name)))
            .collect()
    }

    #[test]
    fn decodes_valid_instruction_fields() {
        let i = Instruction::build(Opcode::Iadd)
            .dst(Reg::new(9))
            .src(Reg::new(17))
            .src(Reg::new(33))
            .finish()
            .unwrap();
        let out = decode_outputs(encoding::encode(&i));
        assert_eq!(out["valid"], 1);
        assert_eq!(out["class"], 1 << 0, "IntAlu is class bit 0");
        assert_eq!(out["unit"], 1 << 0, "SP unit");
        assert_eq!(out["dst"], 9);
        assert_eq!(out["src_a"], 17);
        assert_eq!(out["src_b"], 33);
        assert_eq!(out["reg_we"], 1);
        assert_eq!(out["is_store"], 0);
        assert_eq!(out["imm"], 0, "no immediate on register form");
    }

    #[test]
    fn reserved_opcodes_are_invalid() {
        let word = 0x3fu64 << 58;
        let out = decode_outputs(word);
        assert_eq!(out["valid"], 0);
        assert_eq!(out["class"], 0);
        assert_eq!(out["reg_we"], 0);
    }

    #[test]
    fn short_immediate_is_sign_extended() {
        let i = Instruction::build(Opcode::Iadd)
            .dst(Reg::new(0))
            .src(Reg::new(1))
            .src(-2)
            .finish()
            .unwrap();
        let out = decode_outputs(encoding::encode(&i));
        assert_eq!(out["imm"] as u32, (-2i32) as u32);
        assert_eq!(out["imm_flag"], 1);
    }

    #[test]
    fn wide_immediate_passes_through() {
        let i = Instruction::build(Opcode::Mov32i)
            .dst(Reg::new(0))
            .src(0x8000_0001u32 as i32)
            .finish()
            .unwrap();
        let out = decode_outputs(encoding::encode(&i));
        assert_eq!(out["imm"] as u32, 0x8000_0001);
    }

    #[test]
    fn store_and_control_have_no_reg_we() {
        let store = Instruction::build(Opcode::Stg)
            .mem(Reg::new(2), 4)
            .src(Reg::new(3))
            .finish()
            .unwrap();
        let out = decode_outputs(encoding::encode(&store));
        assert_eq!(out["is_store"], 1);
        assert_eq!(out["reg_we"], 0);
        assert_eq!(out["unit"], 1 << 3, "LSU");

        let exit = Instruction::bare(Opcode::Exit);
        let out = decode_outputs(encoding::encode(&exit));
        assert_eq!(out["is_ctrl_flow"], 1);
        assert_eq!(out["reg_we"], 0);
        assert_eq!(out["unit"], 1 << 4, "CTRL");
    }

    #[test]
    fn every_opcode_maps_to_exactly_one_class_and_unit() {
        for &op in &Opcode::ALL {
            let i = sample_instruction(op);
            let out = decode_outputs(encoding::encode(&i));
            assert_eq!(out["valid"], 1, "{op}");
            assert_eq!(out["class"].count_ones(), 1, "{op}");
            assert_eq!(out["unit"].count_ones(), 1, "{op}");
        }
    }

    fn sample_instruction(op: Opcode) -> Instruction {
        use warpstl_isa::{CmpOp, Pred, SpecialReg};
        let b = Instruction::build(op);
        let b = if op.has_cmp_modifier() {
            b.cmp(CmpOp::Lt)
        } else {
            b
        };
        let b = if op.writes_predicate() {
            b.pdst(Pred::new(0))
        } else if !(op.is_store() || op.is_control_flow() || op == Opcode::Nop) {
            b.dst(Reg::new(1))
        } else {
            b
        };
        use Opcode::*;
        let b = match op {
            Nop | Exit | Ret | Bar | Sync => b,
            Bra | Ssy | Cal => b.src(3),
            Mov32i => b.src(42),
            S2r => b.special(SpecialReg::TidX),
            Mov | Not | Iabs | I2f | F2i | F2f | I2i | Rcp | Rsq | Sin | Cos | Ex2 | Lg2 => {
                b.src(Reg::new(2))
            }
            Iadd32i | Imul32i | And32i | Or32i | Xor32i | Fadd32i | Fmul32i => {
                b.src(Reg::new(2)).src(77)
            }
            Imad | Ffma => b.src(Reg::new(2)).src(Reg::new(3)).src(Reg::new(4)),
            Sel => b.src(Reg::new(2)).src(Reg::new(3)).psrc(Pred::new(1)),
            Ldg | Lds | Ldc | Ldl => b.mem(Reg::new(2), 8),
            Stg | Sts | Stl => b.mem(Reg::new(2), 8).src(Reg::new(3)),
            _ => b.src(Reg::new(2)).src(Reg::new(3)),
        };
        b.finish().unwrap()
    }
}
