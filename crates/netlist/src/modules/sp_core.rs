//! The SP core: a 32-bit scalar datapath (integer ALU, shifter, 16×16
//! multiplier, comparator and select network).
//!
//! This is the unit exercised by the TPGEN and RAND test programs. Inputs:
//!
//! | port | width | meaning |
//! |---|---|---|
//! | `op`  | 4  | operation select (see the `OP_*` constants) |
//! | `cmp` | 3  | comparison select for `OP_SET`/`OP_MIN`/`OP_MAX` |
//! | `a`   | 32 | operand A |
//! | `b`   | 32 | operand B |
//! | `c`   | 32 | operand C (MAD addend; bit 0 selects for `OP_SEL`) |
//!
//! Outputs: `y` (32-bit result) and `flag` (the comparison result, always
//! computed — the SM uses it for `ISETP`).

use crate::{Builder, Netlist};

/// Operation select: `y = a + b`.
pub const OP_ADD: u8 = 0;
/// `y = a - b`.
pub const OP_SUB: u8 = 1;
/// `y = a & b`.
pub const OP_AND: u8 = 2;
/// `y = a | b`.
pub const OP_OR: u8 = 3;
/// `y = a ^ b`.
pub const OP_XOR: u8 = 4;
/// `y = !a`.
pub const OP_NOT: u8 = 5;
/// `y = a << b[5:0]` (amounts ≥ 32 give 0).
pub const OP_SHL: u8 = 6;
/// `y = a >> b[5:0]` (logical; amounts ≥ 32 give 0).
pub const OP_SHR: u8 = 7;
/// `y = a[15:0] * b[15:0]` (unsigned 16×16 product).
pub const OP_MUL: u8 = 8;
/// `y = a[15:0] * b[15:0] + c`.
pub const OP_MAD: u8 = 9;
/// `y = min(a, b)` signed.
pub const OP_MIN: u8 = 10;
/// `y = max(a, b)` signed.
pub const OP_MAX: u8 = 11;
/// `y = cmp(a, b) ? 1 : 0`.
pub const OP_SET: u8 = 12;
/// `y = a`.
pub const OP_MOV: u8 = 13;
/// `y = |a|` (two's complement).
pub const OP_ABS: u8 = 14;
/// `y = c[0] ? a : b`.
pub const OP_SEL: u8 = 15;

/// Comparison select values (match [`warpstl-isa`'s `CmpOp`](https://docs.rs)
/// encoding order: LT, LE, GT, GE, EQ, NE).
pub const CMP_LT: u8 = 0;
/// Less-or-equal.
pub const CMP_LE: u8 = 1;
/// Greater-than.
pub const CMP_GT: u8 = 2;
/// Greater-or-equal.
pub const CMP_GE: u8 = 3;
/// Equal.
pub const CMP_EQ: u8 = 4;
/// Not-equal.
pub const CMP_NE: u8 = 5;

/// The pattern width of the SP core (`op` + `cmp` + three operands).
pub const PATTERN_WIDTH: usize = 4 + 3 + 32 * 3;

/// Builds the SP core netlist.
#[must_use]
pub fn build() -> Netlist {
    let mut b = Builder::new("sp_core");
    let op = b.input_bus("op", 4);
    let cmp = b.input_bus("cmp", 3);
    let a = b.input_bus("a", 32);
    let bb = b.input_bus("b", 32);
    let c = b.input_bus("c", 32);

    let zero32 = b.constant(32, 0);

    // Arithmetic.
    let (add, _) = b.add(&a, &bb);
    let (sub, _) = b.sub(&a, &bb);

    // Logic.
    let and_r = b.and_bus(&a, &bb);
    let or_r = b.or_bus(&a, &bb);
    let xor_r = b.xor_bus(&a, &bb);
    let not_r = b.not_bus(&a);

    // Shifts by b[5:0]; six stages saturate amounts >= 32 to zero.
    let amount = &bb[..6];
    let shl = b.shl_barrel(&a, amount);
    let shr = b.shr_barrel(&a, amount);

    // 16x16 unsigned multiplier and MAD.
    let prod = b.mul(&a[..16], &bb[..16]);
    let (mad, _) = b.add(&prod, &c);

    // Comparisons.
    let lt = b.lt_signed(&a, &bb);
    let equ = b.eq(&a, &bb);
    let le = b.or(lt, equ);
    let gt = b.not(le);
    let ge = b.not(lt);
    let ne = b.not(equ);
    let cmp_onehot = b.decoder(&cmp);
    let cmp_terms = [
        b.and(cmp_onehot[CMP_LT as usize], lt),
        b.and(cmp_onehot[CMP_LE as usize], le),
        b.and(cmp_onehot[CMP_GT as usize], gt),
        b.and(cmp_onehot[CMP_GE as usize], ge),
        b.and(cmp_onehot[CMP_EQ as usize], equ),
        b.and(cmp_onehot[CMP_NE as usize], ne),
    ];
    let flag = b.or_many(&cmp_terms);

    // Min/max/abs/set/sel.
    let min_r = b.mux_bus(lt, &a, &bb);
    let max_r = b.mux_bus(lt, &bb, &a);
    let (neg_a, _) = b.sub(&zero32, &a);
    let abs_r = b.mux_bus(a[31], &neg_a, &a);
    let mut set_r = zero32.clone();
    set_r[0] = flag;
    let sel_r = b.mux_bus(c[0], &a, &bb);

    // Result selection: one-hot AND-OR network over the 16 candidates.
    let op_onehot = b.decoder(&op);
    let candidates: [&[crate::NetId]; 16] = [
        &add,
        &sub,
        &and_r,
        &or_r,
        &xor_r,
        &not_r,
        &shl,
        &shr,
        &prod[..32],
        &mad,
        &min_r,
        &max_r,
        &set_r,
        &a,
        &abs_r,
        &sel_r,
    ];
    let mut y = Vec::with_capacity(32);
    for bit in 0..32 {
        let terms: Vec<_> = candidates
            .iter()
            .enumerate()
            .map(|(k, cand)| b.and(op_onehot[k], cand[bit]))
            .collect();
        y.push(b.or_many(&terms));
    }

    b.output_bus("y", &y);
    b.output("flag", flag);
    b.finish()
}

/// Packs an SP-core stimulus into pattern bits (the flat input order of the
/// netlist's port map: `op`, `cmp`, `a`, `b`, `c`).
#[must_use]
pub fn pack_pattern(op: u8, cmp: u8, a: u32, b: u32, c: u32) -> Vec<bool> {
    let mut bits = Vec::with_capacity(PATTERN_WIDTH);
    for i in 0..4 {
        bits.push((op >> i) & 1 == 1);
    }
    for i in 0..3 {
        bits.push((cmp >> i) & 1 == 1);
    }
    for v in [a, b, c] {
        for i in 0..32 {
            bits.push((v >> i) & 1 == 1);
        }
    }
    bits
}

/// The reference (good-machine) function computed by the netlist; used by
/// tests and by ATPG pattern conversion checks.
#[must_use]
pub fn reference(op: u8, cmp: u8, a: u32, b: u32, c: u32) -> (u32, bool) {
    let lt = (a as i32) < (b as i32);
    let equ = a == b;
    let flag = match cmp {
        CMP_LT => lt,
        CMP_LE => lt || equ,
        CMP_GT => !(lt || equ),
        CMP_GE => !lt,
        CMP_EQ => equ,
        CMP_NE => !equ,
        _ => false,
    };
    let prod = (a & 0xffff).wrapping_mul(b & 0xffff);
    let sh = b & 0x3f;
    let y = match op {
        OP_ADD => a.wrapping_add(b),
        OP_SUB => a.wrapping_sub(b),
        OP_AND => a & b,
        OP_OR => a | b,
        OP_XOR => a ^ b,
        OP_NOT => !a,
        OP_SHL => {
            if sh >= 32 {
                0
            } else {
                a << sh
            }
        }
        OP_SHR => {
            if sh >= 32 {
                0
            } else {
                a >> sh
            }
        }
        OP_MUL => prod,
        OP_MAD => prod.wrapping_add(c),
        OP_MIN => {
            if lt {
                a
            } else {
                b
            }
        }
        OP_MAX => {
            if lt {
                b
            } else {
                a
            }
        }
        OP_SET => flag as u32,
        OP_MOV => a,
        OP_ABS => (a as i32).unsigned_abs(),
        OP_SEL => {
            if c & 1 == 1 {
                a
            } else {
                b
            }
        }
        _ => 0,
    };
    (y, flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;

    fn run(op: u8, cmp: u8, a: u32, b: u32, c: u32) -> (u32, bool) {
        let n = build();
        let mut sim = LogicSim::new(&n);
        sim.set_input_u64("op", op as u64);
        sim.set_input_u64("cmp", cmp as u64);
        sim.set_input_u64("a", a as u64);
        sim.set_input_u64("b", b as u64);
        sim.set_input_u64("c", c as u64);
        sim.eval_comb();
        (sim.output_u64("y") as u32, sim.output_u64("flag") == 1)
    }

    #[test]
    fn netlist_matches_reference_across_ops() {
        let cases = [
            (0x0000_0000u32, 0x0000_0000u32, 0u32),
            (0xffff_ffff, 0x0000_0001, 7),
            (0x8000_0000, 0x7fff_ffff, 0xffff_ffff),
            (0x1234_5678, 0x9abc_def0, 0x0f0f_0f0f),
            (5, 33, 2),
        ];
        for op in 0..16u8 {
            for &(a, b, c) in &cases {
                let got = run(op, CMP_LT, a, b, c);
                let want = reference(op, CMP_LT, a, b, c);
                assert_eq!(got, want, "op={op} a={a:#x} b={b:#x} c={c:#x}");
            }
        }
    }

    #[test]
    fn netlist_matches_reference_across_cmps() {
        for cmpv in 0..6u8 {
            for &(a, b) in &[(1u32, 2u32), (2, 1), (3, 3), (0x8000_0000, 1)] {
                let got = run(OP_SET, cmpv, a, b, 0);
                let want = reference(OP_SET, cmpv, a, b, 0);
                assert_eq!(got, want, "cmp={cmpv} a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn pattern_width_matches_port_map() {
        let n = build();
        assert_eq!(n.inputs().width(), PATTERN_WIDTH);
        assert_eq!(pack_pattern(3, 1, 0, 0, 0).len(), PATTERN_WIDTH);
    }

    #[test]
    fn pack_pattern_field_order() {
        let bits = pack_pattern(0b1010, 0b011, 1, 0, 0x8000_0000);
        assert!(!bits[0] && bits[1] && !bits[2] && bits[3]); // op
        assert!(bits[4] && bits[5] && !bits[6]); // cmp
        assert!(bits[7]); // a bit 0
        assert!(!bits[7 + 32]); // b bit 0
        assert!(bits[7 + 64 + 31]); // c bit 31
    }
}
