//! The SFU datapath: a fixed-point polynomial-approximation pipeline of the
//! kind used for transcendental functions (squarer, cross product, mixing
//! network, function-dependent pre/post transforms).
//!
//! This is the unit exercised by the SFU_IMM test program. Inputs:
//!
//! | port | width | meaning |
//! |---|---|---|
//! | `func` | 3  | function select (see the `F_*` constants) |
//! | `x`    | 32 | operand |
//!
//! Output: `y` (32-bit approximation result).
//!
//! The MiniGrip GPU model uses [`reference()`] as the *architectural* result of
//! the SFU opcodes, so the functional simulation and the gate-level fault
//! target agree bit-exactly (the paper's RTL and gate-level models agree the
//! same way because one is synthesized from the other).

use crate::{Builder, Netlist};

/// Function select for `RCP`.
pub const F_RCP: u8 = 0;
/// Function select for `RSQ`.
pub const F_RSQ: u8 = 1;
/// Function select for `SIN`.
pub const F_SIN: u8 = 2;
/// Function select for `COS`.
pub const F_COS: u8 = 3;
/// Function select for `EX2`.
pub const F_EX2: u8 = 4;
/// Function select for `LG2`.
pub const F_LG2: u8 = 5;

/// The pattern width of the SFU (`func` + `x`).
pub const PATTERN_WIDTH: usize = 3 + 32;

/// Per-function pre-mix constants (range-reduction seeds).
const PRE_MASK: [u32; 6] = [
    0x5f37_59df, // RCP (fast inverse-root-style seed)
    0x5f37_5a86, // RSQ
    0x3f22_f983, // SIN
    0x3fc9_0fdb, // COS
    0x3f80_0000, // EX2
    0x4b00_0000, // LG2
];

/// Builds the SFU netlist.
#[must_use]
pub fn build() -> Netlist {
    let mut b = Builder::new("sfu");
    let func = b.input_bus("func", 3);
    let x = b.input_bus("x", 32);

    let fsel = b.decoder(&func);

    // Pre-mix: x ^ PRE_MASK[func] via a one-hot AND-OR constant mux.
    let mut premask = Vec::with_capacity(32);
    for bit in 0..32 {
        let terms: Vec<_> = (0..6)
            .filter(|&f| (PRE_MASK[f] >> bit) & 1 == 1)
            .map(|f| fsel[f])
            .collect();
        premask.push(if terms.is_empty() {
            b.const0()
        } else {
            b.or_many(&terms)
        });
    }
    let xm = b.xor_bus(&x, &premask);

    // Mantissa split.
    let lo = &xm[0..12];
    let hi = &xm[12..24];
    let top = &xm[24..32];

    // Quadratic term (squarer) and cross term.
    let sq = b.mul(lo, lo); // 24 bits
    let cross = b.mul(hi, lo); // 24 bits
    let (s1, carry) = b.add(&sq, &cross);

    // Mixing: low 24 bits from the sum, high 8 from top ^ s1[8..16],
    // with the carry folded into bit 31.
    let mut y_pre = Vec::with_capacity(32);
    y_pre.extend_from_slice(&s1[..24]);
    for i in 0..8 {
        y_pre.push(b.xor(top[i], s1[8 + i]));
    }
    y_pre[31] = b.xor(y_pre[31], carry);

    // Post transform: function-dependent rotation of the result.
    let mut y = Vec::with_capacity(32);
    for bit in 0..32 {
        let terms: Vec<_> = (0..6)
            .map(|f| {
                let rot = f * 5; // distinct rotation per function
                b.and(fsel[f], y_pre[(bit + rot) % 32])
            })
            .collect();
        y.push(b.or_many(&terms));
    }

    b.output_bus("y", &y);
    b.finish()
}

/// Packs an SFU stimulus into pattern bits (flat input order: `func`, `x`).
#[must_use]
pub fn pack_pattern(func: u8, x: u32) -> Vec<bool> {
    let mut bits = Vec::with_capacity(PATTERN_WIDTH);
    for i in 0..3 {
        bits.push((func >> i) & 1 == 1);
    }
    for i in 0..32 {
        bits.push((x >> i) & 1 == 1);
    }
    bits
}

/// The architectural function computed by the SFU datapath.
///
/// Returns 0 for reserved function selects (6, 7), matching the netlist's
/// AND-OR selection network.
#[must_use]
pub fn reference(func: u8, x: u32) -> u32 {
    if func >= 6 {
        return 0;
    }
    let xm = x ^ PRE_MASK[func as usize];
    let lo = xm & 0xfff;
    let hi = (xm >> 12) & 0xfff;
    let top = (xm >> 24) & 0xff;
    let sq = lo * lo; // <= 24 bits
    let cross = hi * lo;
    let sum = sq.wrapping_add(cross);
    let s1 = sum & 0xff_ffff;
    let carry = (sum >> 24) & 1;
    let mixed_top = (top ^ ((s1 >> 8) & 0xff)) ^ (carry << 7);
    let y_pre = s1 | (mixed_top << 24);
    let rot = (func as u32) * 5;
    y_pre.rotate_right(rot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;

    fn run(func: u8, x: u32) -> u32 {
        let n = build();
        let mut sim = LogicSim::new(&n);
        sim.set_input_u64("func", func as u64);
        sim.set_input_u64("x", x as u64);
        sim.eval_comb();
        sim.output_u64("y") as u32
    }

    #[test]
    fn netlist_matches_reference() {
        let xs = [0u32, 1, 0x3f80_0000, 0xffff_ffff, 0x1234_5678, 0xdead_beef];
        for func in 0..6u8 {
            for &x in &xs {
                assert_eq!(run(func, x), reference(func, x), "f={func} x={x:#x}");
            }
        }
    }

    #[test]
    fn reserved_functions_yield_zero() {
        assert_eq!(run(6, 0x1234), 0);
        assert_eq!(run(7, 0xffff_ffff), 0);
        assert_eq!(reference(6, 0x1234), 0);
    }

    #[test]
    fn functions_differ_on_same_operand() {
        let x = 0x4048_f5c3;
        let mut results: Vec<u32> = (0..6).map(|f| reference(f, x)).collect();
        results.sort_unstable();
        results.dedup();
        assert_eq!(results.len(), 6, "functions must be distinguishable");
    }

    #[test]
    fn pattern_width_matches_port_map() {
        let n = build();
        assert_eq!(n.inputs().width(), PATTERN_WIDTH);
        assert_eq!(pack_pattern(2, 0).len(), PATTERN_WIDTH);
    }
}
