//! Netlist construction combinators: gates, buses and datapath blocks.

use crate::{Gate, GateKind, NetId, Netlist, PortMap};

/// A little-endian bundle of nets (`bus[0]` is the least significant bit).
pub type Bus = Vec<NetId>;

/// Builds a [`Netlist`] gate by gate.
///
/// All methods panic on misuse (wrong widths, dangling nets): builder misuse
/// is a programming error in a module generator, not a runtime condition.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("mux_demo");
/// let s = b.input("s");
/// let a = b.input_bus("a", 8);
/// let c = b.input_bus("b", 8);
/// let y = b.mux_bus(s, &a, &c);
/// b.output_bus("y", &y);
/// let netlist = b.finish();
/// assert_eq!(netlist.outputs().width(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    name: String,
    gates: Vec<Gate>,
    inputs: PortMap,
    outputs: PortMap,
}

impl Builder {
    /// Starts an empty netlist named `name`.
    #[must_use]
    pub fn new(name: &str) -> Builder {
        Builder {
            name: name.to_string(),
            gates: Vec::new(),
            inputs: PortMap::new(),
            outputs: PortMap::new(),
        }
    }

    fn push(&mut self, kind: GateKind, pins: &[NetId]) -> NetId {
        for &p in pins {
            assert!(
                p.index() < self.gates.len() || (kind == GateKind::Dff),
                "{kind}: pin {p} not yet created"
            );
        }
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate::new(kind, pins));
        id
    }

    /// Declares a 1-bit primary input.
    pub fn input(&mut self, name: &str) -> NetId {
        let n = self.push(GateKind::Input, &[]);
        self.inputs.push(name, &[n]);
        n
    }

    /// Declares a `width`-bit primary input bus.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Bus {
        let nets: Bus = (0..width)
            .map(|_| self.push(GateKind::Input, &[]))
            .collect();
        self.inputs.push(name, &nets);
        nets
    }

    /// Declares a 1-bit primary output.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.outputs.push(name, &[net]);
    }

    /// Declares a primary output bus.
    pub fn output_bus(&mut self, name: &str, bus: &[NetId]) {
        self.outputs.push(name, bus);
    }

    /// Constant 0 net.
    pub fn const0(&mut self) -> NetId {
        self.push(GateKind::Const0, &[])
    }

    /// Constant 1 net.
    pub fn const1(&mut self) -> NetId {
        self.push(GateKind::Const1, &[])
    }

    /// A `width`-bit bus holding `value`.
    pub fn constant(&mut self, width: usize, value: u64) -> Bus {
        (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.const1()
                } else {
                    self.const0()
                }
            })
            .collect()
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Buf, &[a])
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Not, &[a])
    }

    /// 2-input AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::And, &[a, b])
    }

    /// 2-input OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Or, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nand, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nor, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xor, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xnor, &[a, b])
    }

    /// 2:1 mux: `sel ? a : b`.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Mux, &[sel, a, b])
    }

    /// A D flip-flop whose `d` input is connected later via
    /// [`Builder::connect_dff`]; returns the `q` net.
    pub fn dff_placeholder(&mut self) -> NetId {
        // Temporarily points at itself; must be connected before finish().
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate::new(GateKind::Dff, &[id]));
        id
    }

    /// Connects the `d` input of flip-flop `q` (possibly to a later net,
    /// forming feedback).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a DFF.
    pub fn connect_dff(&mut self, q: NetId, d: NetId) {
        let g = &mut self.gates[q.index()];
        assert_eq!(g.kind, GateKind::Dff, "{q} is not a DFF");
        g.pins[0] = d;
    }

    /// A D flip-flop clocked from an already-built `d` net.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.push(GateKind::Dff, &[d])
    }

    /// AND-reduction of a non-empty slice (balanced tree).
    pub fn and_many(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, Builder::and)
    }

    /// OR-reduction of a non-empty slice (balanced tree).
    pub fn or_many(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, Builder::or)
    }

    /// XOR-reduction of a non-empty slice (balanced tree).
    pub fn xor_many(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, Builder::xor)
    }

    fn reduce(&mut self, nets: &[NetId], f: fn(&mut Builder, NetId, NetId) -> NetId) -> NetId {
        assert!(!nets.is_empty(), "reduction over empty bus");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    f(self, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Elementwise NOT of a bus.
    pub fn not_bus(&mut self, a: &[NetId]) -> Bus {
        a.iter().map(|&n| self.not(n)).collect()
    }

    /// Elementwise AND of equal-width buses.
    pub fn and_bus(&mut self, a: &[NetId], b: &[NetId]) -> Bus {
        self.zip(a, b, Builder::and)
    }

    /// Elementwise OR of equal-width buses.
    pub fn or_bus(&mut self, a: &[NetId], b: &[NetId]) -> Bus {
        self.zip(a, b, Builder::or)
    }

    /// Elementwise XOR of equal-width buses.
    pub fn xor_bus(&mut self, a: &[NetId], b: &[NetId]) -> Bus {
        self.zip(a, b, Builder::xor)
    }

    fn zip(&mut self, a: &[NetId], b: &[NetId], f: fn(&mut Builder, NetId, NetId) -> NetId) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| f(self, x, y)).collect()
    }

    /// Bus-wide 2:1 mux: `sel ? a : b`.
    pub fn mux_bus(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// Ripple-carry adder; returns `(sum, carry_out)`.
    pub fn add(&mut self, a: &[NetId], b: &[NetId]) -> (Bus, NetId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let mut carry = self.const0();
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor(a, b);
        let s = self.xor(axb, cin);
        let t1 = self.and(axb, cin);
        let t2 = self.and(a, b);
        let c = self.or(t1, t2);
        (s, c)
    }

    /// Two's-complement subtractor `a - b`; returns `(difference, carry_out)`
    /// (carry_out = 1 means no borrow, i.e. `a >= b` unsigned).
    pub fn sub(&mut self, a: &[NetId], b: &[NetId]) -> (Bus, NetId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let nb = self.not_bus(b);
        let mut carry = self.const1();
        let mut diff = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(&nb) {
            let (s, c) = self.full_adder(x, y, carry);
            diff.push(s);
            carry = c;
        }
        (diff, carry)
    }

    /// Equality comparator.
    pub fn eq(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let bits = self.zip(a, b, Builder::xnor);
        self.and_many(&bits)
    }

    /// Unsigned less-than: `a < b`.
    pub fn lt_unsigned(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let (_, carry) = self.sub(a, b);
        self.not(carry)
    }

    /// Signed less-than: `a < b` (two's complement).
    pub fn lt_signed(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert!(!a.is_empty());
        let lt_u = self.lt_unsigned(a, b);
        let sa = *a.last().expect("non-empty");
        let sb = *b.last().expect("non-empty");
        let signs_differ = self.xor(sa, sb);
        // If signs differ, a < b iff a is negative.
        self.mux(signs_differ, sa, lt_u)
    }

    /// Barrel shifter left: shifts `a` by the unsigned amount on `amount`
    /// (low `log2` bits used, wider amounts saturate the value to zero).
    pub fn shl_barrel(&mut self, a: &[NetId], amount: &[NetId]) -> Bus {
        self.barrel(a, amount, true)
    }

    /// Barrel shifter right (logical).
    pub fn shr_barrel(&mut self, a: &[NetId], amount: &[NetId]) -> Bus {
        self.barrel(a, amount, false)
    }

    fn barrel(&mut self, a: &[NetId], amount: &[NetId], left: bool) -> Bus {
        let zero = self.const0();
        let mut cur: Bus = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate() {
            let shift = 1usize << stage;
            if shift >= cur.len() {
                // Any set bit this high zeroes the result.
                let z: Bus = vec![zero; cur.len()];
                cur = self.mux_bus(sel, &z, &cur);
                continue;
            }
            let shifted: Bus = (0..cur.len())
                .map(|i| {
                    if left {
                        if i >= shift {
                            cur[i - shift]
                        } else {
                            zero
                        }
                    } else if i + shift < cur.len() {
                        cur[i + shift]
                    } else {
                        zero
                    }
                })
                .collect();
            cur = self.mux_bus(sel, &shifted, &cur);
        }
        cur
    }

    /// Unsigned array multiplier; returns the full `a.len() + b.len()`-bit
    /// product.
    pub fn mul(&mut self, a: &[NetId], b: &[NetId]) -> Bus {
        let zero = self.const0();
        let width = a.len() + b.len();
        let mut acc: Bus = vec![zero; width];
        for (j, &bj) in b.iter().enumerate() {
            // Partial product: (a & bj) << j, padded to `width`.
            let mut pp: Bus = vec![zero; width];
            for (i, &ai) in a.iter().enumerate() {
                pp[i + j] = self.and(ai, bj);
            }
            let (sum, _) = self.add(&acc, &pp);
            acc = sum;
        }
        acc
    }

    /// One-hot decoder: `2^sel.len()` outputs.
    pub fn decoder(&mut self, sel: &[NetId]) -> Bus {
        let inv: Bus = self.not_bus(sel);
        (0..(1usize << sel.len()))
            .map(|v| {
                let terms: Bus = sel
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| if (v >> i) & 1 == 1 { s } else { inv[i] })
                    .collect();
                self.and_many(&terms)
            })
            .collect()
    }

    /// The number of gates created so far.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Validates and returns the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the structure is invalid (dangling or non-causal nets,
    /// unconnected DFF placeholders); these are generator bugs.
    #[must_use]
    pub fn finish(self) -> Netlist {
        // `push` validates non-DFF pins at creation time, but DFF `d` pins
        // are connected late (`connect_dff`) and used to surface only as an
        // index panic deep inside a simulator. Re-check every pin here so
        // misuse fails at finish time with the offending gate named.
        for (i, g) in self.gates.iter().enumerate() {
            for (p, &pin) in g.inputs().iter().enumerate() {
                assert!(
                    pin.index() < self.gates.len(),
                    "finish: gate n{i} ({}) pin {p} references {pin}, \
                     but only {} gates exist",
                    g.kind,
                    self.gates.len()
                );
            }
            if g.kind == GateKind::Dff {
                assert!(
                    g.pins[0].index() != i || self.gates.len() == 1,
                    "DFF n{i} left unconnected"
                );
            }
        }
        Netlist::from_parts(self.name, self.gates, self.inputs, self.outputs)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;

    fn eval_comb(netlist: &Netlist, inputs: &[(&str, u64)]) -> Vec<(String, u64)> {
        let mut sim = LogicSim::new(netlist);
        for (name, v) in inputs {
            sim.set_input_u64(name, *v);
        }
        sim.eval_comb();
        netlist
            .outputs()
            .iter()
            .map(|(n, _)| (n.to_string(), sim.output_u64(n)))
            .collect()
    }

    #[test]
    fn adder_matches_arithmetic() {
        let mut b = Builder::new("add8");
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        for (a, bb) in [(0u64, 0u64), (255, 1), (127, 128), (200, 100)] {
            let out = eval_comb(&n, &[("x", a), ("y", bb)]);
            assert_eq!(out[0].1, (a + bb) & 0xff, "{a}+{bb}");
            assert_eq!(out[1].1, (a + bb) >> 8, "carry {a}+{bb}");
        }
    }

    #[test]
    fn subtractor_matches_arithmetic() {
        let mut b = Builder::new("sub8");
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (d, c) = b.sub(&x, &y);
        b.output_bus("d", &d);
        b.output("c", c);
        let n = b.finish();
        for (a, bb) in [(5u64, 3u64), (3, 5), (0, 0), (255, 255), (0, 1)] {
            let out = eval_comb(&n, &[("x", a), ("y", bb)]);
            assert_eq!(out[0].1, a.wrapping_sub(bb) & 0xff, "{a}-{bb}");
            assert_eq!(out[1].1, u64::from(a >= bb), "borrow {a}-{bb}");
        }
    }

    #[test]
    fn comparators_match_semantics() {
        let mut b = Builder::new("cmp4");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let eq = b.eq(&x, &y);
        let ltu = b.lt_unsigned(&x, &y);
        let lts = b.lt_signed(&x, &y);
        b.output("eq", eq);
        b.output("ltu", ltu);
        b.output("lts", lts);
        let n = b.finish();
        for a in 0..16u64 {
            for c in 0..16u64 {
                let out = eval_comb(&n, &[("x", a), ("y", c)]);
                assert_eq!(out[0].1, u64::from(a == c));
                assert_eq!(out[1].1, u64::from(a < c));
                let sa = (a as i64) << 60 >> 60;
                let sc = (c as i64) << 60 >> 60;
                assert_eq!(out[2].1, u64::from(sa < sc), "signed {sa} < {sc}");
            }
        }
    }

    #[test]
    fn barrel_shifters_match_semantics() {
        let mut b = Builder::new("sh8");
        let x = b.input_bus("x", 8);
        let amt = b.input_bus("amt", 4);
        let l = b.shl_barrel(&x, &amt);
        let r = b.shr_barrel(&x, &amt);
        b.output_bus("l", &l);
        b.output_bus("r", &r);
        let n = b.finish();
        for v in [0b1011_0110u64, 0xff, 1] {
            for s in 0..16u64 {
                let out = eval_comb(&n, &[("x", v), ("amt", s)]);
                let expect_l = if s >= 8 { 0 } else { (v << s) & 0xff };
                let expect_r = if s >= 8 { 0 } else { v >> s };
                assert_eq!(out[0].1, expect_l, "{v} << {s}");
                assert_eq!(out[1].1, expect_r, "{v} >> {s}");
            }
        }
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let mut b = Builder::new("mul6");
        let x = b.input_bus("x", 6);
        let y = b.input_bus("y", 6);
        let p = b.mul(&x, &y);
        b.output_bus("p", &p);
        let n = b.finish();
        for a in [0u64, 1, 7, 33, 63] {
            for c in [0u64, 1, 5, 63] {
                let out = eval_comb(&n, &[("x", a), ("y", c)]);
                assert_eq!(out[0].1, a * c, "{a}*{c}");
            }
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = Builder::new("dec3");
        let s = b.input_bus("s", 3);
        let d = b.decoder(&s);
        b.output_bus("d", &d);
        let n = b.finish();
        for v in 0..8u64 {
            let out = eval_comb(&n, &[("s", v)]);
            assert_eq!(out[0].1, 1 << v);
        }
    }

    #[test]
    fn reductions() {
        let mut b = Builder::new("red");
        let x = b.input_bus("x", 5);
        let a = b.and_many(&x);
        let o = b.or_many(&x);
        let e = b.xor_many(&x);
        b.output("a", a);
        b.output("o", o);
        b.output("e", e);
        let n = b.finish();
        for v in 0..32u64 {
            let out = eval_comb(&n, &[("x", v)]);
            assert_eq!(out[0].1, u64::from(v == 31));
            assert_eq!(out[1].1, u64::from(v != 0));
            assert_eq!(out[2].1, u64::from(v.count_ones() % 2 == 1));
        }
    }

    #[test]
    #[should_panic(expected = "unconnected")]
    fn unconnected_dff_placeholder_panics() {
        let mut b = Builder::new("bad");
        let a = b.input("a");
        let _q = b.dff_placeholder();
        b.output("y", a);
        let _ = b.finish();
    }

    #[test]
    fn dff_feedback_via_placeholder() {
        let mut b = Builder::new("toggle");
        let q = b.dff_placeholder();
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output("q", q);
        let n = b.finish();
        assert!(!n.is_combinational());
        assert_eq!(n.dffs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "gate n1 (DFF) pin 0 references n99")]
    fn finish_names_gate_with_dangling_dff_pin() {
        // `connect_dff` accepts any net (feedback may target later nets),
        // so a bogus target used to surface only as an index panic inside
        // a simulator. `finish` must name the offending gate instead.
        let mut b = Builder::new("bad");
        let a = b.input("a");
        let q = b.dff_placeholder();
        b.connect_dff(q, NetId(99));
        let z = b.xor(a, q);
        b.output("z", z);
        let _ = b.finish();
    }
}
