//! Bit-parallel good-machine logic simulation.

use crate::{GateKind, Netlist, PatternSeq};

/// A 64-lane bit-parallel logic simulator.
///
/// Every net holds a `u64` whose bit *k* is the net's value in simulation
/// lane *k*: the same netlist evaluates 64 independent stimuli per pass.
/// For single-stimulus use, the `*_u64` accessors broadcast to/read from all
/// lanes.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::{Builder, LogicSim};
///
/// let mut b = Builder::new("xor2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.xor(x, y);
/// b.output("z", z);
/// let n = b.finish();
///
/// let mut sim = LogicSim::new(&n);
/// sim.set_input_u64("x", 1);
/// sim.set_input_u64("y", 0);
/// sim.eval_comb();
/// assert_eq!(sim.output_u64("z"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LogicSim<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
    state: Vec<u64>,
}

impl<'a> LogicSim<'a> {
    /// Creates a simulator with all nets and state at 0.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> LogicSim<'a> {
        LogicSim {
            netlist,
            values: vec![0; netlist.gates().len()],
            state: vec![0; netlist.dffs().len()],
        }
    }

    /// Resets all nets and flip-flop state to 0.
    pub fn reset(&mut self) {
        self.values.fill(0);
        self.state.fill(0);
    }

    /// Sets an input bus from an integer, broadcasting each bit to all 64
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an input port.
    pub fn set_input_u64(&mut self, name: &str, value: u64) {
        let bus = self
            .netlist
            .inputs()
            .bus(name)
            .unwrap_or_else(|| panic!("no input port `{name}`"));
        for (i, &net) in bus.iter().enumerate() {
            self.values[net.index()] = if (value >> i) & 1 == 1 { !0 } else { 0 };
        }
    }

    /// Sets an input bus from per-bit lane words (`words[i]` holds bit `i`
    /// of the bus across the 64 lanes).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an input port or widths mismatch.
    pub fn set_input_words(&mut self, name: &str, words: &[u64]) {
        let bus = self
            .netlist
            .inputs()
            .bus(name)
            .unwrap_or_else(|| panic!("no input port `{name}`"));
        assert_eq!(bus.len(), words.len(), "width mismatch for `{name}`");
        for (&net, &w) in bus.iter().zip(words) {
            self.values[net.index()] = w;
        }
    }

    /// Sets a single flat input-bit position (across the whole input port
    /// map) to a lane word.
    pub fn set_input_bit(&mut self, flat_pos: usize, word: u64) {
        let net = self.netlist.inputs().nets()[flat_pos];
        self.values[net.index()] = word;
    }

    /// Evaluates all combinational logic (one topological pass). Flip-flop
    /// outputs present their current state.
    pub fn eval_comb(&mut self) {
        let gates = self.netlist.gates();
        let mut dff_i = 0;
        for (i, g) in gates.iter().enumerate() {
            let v = match g.kind {
                GateKind::Input => self.values[i],
                GateKind::Dff => {
                    let v = self.state[dff_i];
                    dff_i += 1;
                    v
                }
                kind => {
                    let p = g.pins;
                    let a = match kind.arity() {
                        0 => 0,
                        _ => self.values[p[0].index()],
                    };
                    let (b, c) = match kind.arity() {
                        2 => (self.values[p[1].index()], 0),
                        3 => (self.values[p[1].index()], self.values[p[2].index()]),
                        _ => (0, 0),
                    };
                    kind.eval(a, b, c)
                }
            };
            self.values[i] = v;
        }
    }

    /// Evaluates combinational logic, then clocks all flip-flops.
    pub fn step(&mut self) {
        self.eval_comb();
        for (s, &q) in self.state.iter_mut().zip(self.netlist.dffs()) {
            let d = self.netlist.gates()[q.index()].pins[0];
            *s = self.values[d.index()];
        }
    }

    /// Reads an output bus as an integer from lane 0.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an output port.
    #[must_use]
    pub fn output_u64(&self, name: &str) -> u64 {
        let bus = self
            .netlist
            .outputs()
            .bus(name)
            .unwrap_or_else(|| panic!("no output port `{name}`"));
        bus.iter().enumerate().fold(0, |acc, (i, &net)| {
            acc | ((self.values[net.index()] & 1) << i)
        })
    }

    /// Reads an output bus as per-bit lane words.
    #[must_use]
    pub fn output_words(&self, name: &str) -> Vec<u64> {
        let bus = self
            .netlist
            .outputs()
            .bus(name)
            .unwrap_or_else(|| panic!("no output port `{name}`"));
        bus.iter().map(|&net| self.values[net.index()]).collect()
    }

    /// The lane word currently on `net`.
    #[must_use]
    pub fn net_value(&self, net: crate::NetId) -> u64 {
        self.values[net.index()]
    }
}

/// Runs a pattern sequence through a netlist and captures the primary
/// outputs per cycle.
///
/// Combinational netlists are evaluated 64 patterns at a time; sequential
/// netlists are stepped serially to preserve state ordering.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::{Builder, PatternSeq, simulate_seq};
///
/// let mut b = Builder::new("inv");
/// let a = b.input_bus("a", 2);
/// let y = b.not_bus(&a);
/// b.output_bus("y", &y);
/// let n = b.finish();
///
/// let mut pats = PatternSeq::new(2);
/// pats.push_value(0, 0b01);
/// pats.push_value(1, 0b11);
/// let outs = simulate_seq(&n, &pats);
/// assert_eq!(outs.value(0), 0b10);
/// assert_eq!(outs.value(1), 0b00);
/// ```
#[must_use]
pub fn simulate_seq(netlist: &Netlist, patterns: &PatternSeq) -> PatternSeq {
    assert_eq!(
        patterns.width(),
        netlist.inputs().width(),
        "pattern width must match netlist inputs"
    );
    let out_w = netlist.outputs().width();
    let mut out = PatternSeq::new(out_w);
    let mut sim = LogicSim::new(netlist);

    // Scratch buffers hoisted out of the per-chunk / per-lane loops.
    let mut out_nets: Vec<u64> = Vec::with_capacity(out_w);
    let mut bits: Vec<bool> = vec![false; out_w];

    if netlist.is_combinational() {
        let n = patterns.len();
        let in_w = patterns.width();
        let mut chunk_start = 0;
        while chunk_start < n {
            let lanes = (n - chunk_start).min(64);
            for bit in 0..in_w {
                let mut w = 0u64;
                for lane in 0..lanes {
                    if patterns.bit(chunk_start + lane, bit) {
                        w |= 1 << lane;
                    }
                }
                sim.set_input_bit(bit, w);
            }
            sim.eval_comb();
            out_nets.clear();
            out_nets.extend(
                netlist
                    .outputs()
                    .nets()
                    .iter()
                    .map(|&nid| sim.net_value(nid)),
            );
            for lane in 0..lanes {
                let idx = chunk_start + lane;
                for (b, &w) in bits.iter_mut().zip(&out_nets) {
                    *b = (w >> lane) & 1 == 1;
                }
                out.push_bits(patterns.cc(idx), &bits);
            }
            chunk_start += lanes;
        }
    } else {
        for i in 0..patterns.len() {
            for bit in 0..patterns.width() {
                sim.set_input_bit(bit, if patterns.bit(i, bit) { !0 } else { 0 });
            }
            sim.step();
            for (b, &nid) in bits.iter_mut().zip(netlist.outputs().nets()) {
                *b = sim.net_value(nid) & 1 == 1;
            }
            out.push_bits(patterns.cc(i), &bits);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn lanes_are_independent() {
        let mut b = Builder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        b.output("z", z);
        let n = b.finish();
        let mut sim = LogicSim::new(&n);
        // Lane 0: 1&1, lane 1: 1&0, lane 2: 0&1, lane 3: 0&0.
        sim.set_input_words("x", &[0b0011]);
        sim.set_input_words("y", &[0b0101]);
        sim.eval_comb();
        assert_eq!(sim.output_words("z")[0] & 0xf, 0b0001);
    }

    #[test]
    fn sequential_counter_counts() {
        // 3-bit counter: q <- q + 1 each step.
        let mut b = Builder::new("cnt3");
        let q: Vec<_> = (0..3).map(|_| b.dff_placeholder()).collect();
        let one = b.constant(3, 1);
        let (next, _) = b.add(&q, &one);
        for (qi, di) in q.iter().zip(&next) {
            b.connect_dff(*qi, *di);
        }
        b.output_bus("q", &q);
        let n = b.finish();
        let mut sim = LogicSim::new(&n);
        let mut seen = Vec::new();
        for _ in 0..10 {
            sim.step();
            seen.push(sim.output_u64("q"));
        }
        // After the first step the state is 1 but outputs were sampled
        // before the clock edge, so we observe 0,1,2,...
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = Builder::new("ff");
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let n = b.finish();
        let mut sim = LogicSim::new(&n);
        sim.set_input_u64("d", 1);
        sim.step();
        sim.step();
        assert_eq!(sim.output_u64("q"), 1);
        sim.reset();
        sim.eval_comb();
        assert_eq!(sim.output_u64("q"), 0);
    }

    #[test]
    fn simulate_seq_combinational_chunks_beyond_64() {
        let mut b = Builder::new("buf8");
        let a = b.input_bus("a", 8);
        b.output_bus("y", &a);
        let n = b.finish();
        let mut pats = crate::PatternSeq::new(8);
        for i in 0..200u64 {
            pats.push_value(i, i & 0xff);
        }
        let out = simulate_seq(&n, &pats);
        assert_eq!(out.len(), 200);
        for i in 0..200u64 {
            assert_eq!(out.value(i as usize), i & 0xff);
            assert_eq!(out.cc(i as usize), i);
        }
    }

    #[test]
    fn simulate_seq_sequential_accumulates() {
        // Accumulator: q <- q ^ input.
        let mut b = Builder::new("acc1");
        let d_in = b.input("in");
        let q = b.dff_placeholder();
        let nxt = b.xor(q, d_in);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let n = b.finish();
        let mut pats = crate::PatternSeq::new(1);
        for (i, v) in [1u64, 0, 1, 1].iter().enumerate() {
            pats.push_value(i as u64, *v);
        }
        let out = simulate_seq(&n, &pats);
        // Output sampled before the edge: q starts 0, then toggles per 1.
        assert_eq!(
            (0..4).map(|i| out.value(i)).collect::<Vec<_>>(),
            vec![0, 1, 1, 0]
        );
    }
}
