//! The netlist container: gates, ports and structural queries.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::ops::Range;

use crate::{Gate, GateKind, NetId};

/// Maps named ports (buses) to contiguous bit positions.
///
/// Port order is the order of declaration; bit 0 of a bus is the least
/// significant bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortMap {
    names: Vec<String>,
    ranges: Vec<Range<usize>>,
    nets: Vec<NetId>,
}

impl PortMap {
    /// Creates an empty port map.
    #[must_use]
    pub fn new() -> PortMap {
        PortMap::default()
    }

    /// Appends a bus of `nets` under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already declared.
    pub fn push(&mut self, name: &str, nets: &[NetId]) {
        assert!(
            self.index_of(name).is_none(),
            "port `{name}` declared twice"
        );
        let start = self.nets.len();
        self.names.push(name.to_string());
        self.nets.extend_from_slice(nets);
        self.ranges.push(start..self.nets.len());
    }

    /// The flat position range of `name`, if declared.
    #[must_use]
    pub fn range(&self, name: &str) -> Option<Range<usize>> {
        self.index_of(name).map(|i| self.ranges[i].clone())
    }

    /// The nets of `name`, if declared.
    #[must_use]
    pub fn bus(&self, name: &str) -> Option<&[NetId]> {
        self.range(name).map(|r| &self.nets[r])
    }

    /// All nets, flattened in declaration order.
    #[must_use]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Total width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// Iterates `(name, range)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Range<usize>)> + '_ {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.ranges.iter().cloned())
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// A structural gate-level netlist.
///
/// Invariants (checked by [`Builder::finish`](crate::Builder::finish)):
///
/// - gate `i` drives net `i`;
/// - every non-DFF gate's inputs reference strictly earlier nets, so
///   creation order is a topological order of the combinational logic;
/// - DFF `d` pins may reference any net (feedback through state).
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: PortMap,
    outputs: PortMap,
    dffs: Vec<NetId>,
    fanout: Vec<u32>,
}

/// A structural validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistError(String);

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid netlist: {}", self.0)
    }
}

impl Error for NetlistError {}

impl Netlist {
    pub(crate) fn from_parts(
        name: String,
        gates: Vec<Gate>,
        inputs: PortMap,
        outputs: PortMap,
    ) -> Result<Netlist, NetlistError> {
        let mut dffs = Vec::new();
        let mut fanout = vec![0u32; gates.len()];
        for (i, g) in gates.iter().enumerate() {
            for &pin in g.inputs() {
                if pin.index() >= gates.len() {
                    return Err(NetlistError(format!(
                        "gate {i} ({}) reads dangling net {pin}",
                        g.kind
                    )));
                }
                if g.kind != GateKind::Dff && pin.index() >= i {
                    return Err(NetlistError(format!(
                        "gate {i} ({}) reads non-causal net {pin}",
                        g.kind
                    )));
                }
                fanout[pin.index()] += 1;
            }
            if g.kind == GateKind::Dff {
                dffs.push(NetId(i as u32));
            }
        }
        for &n in outputs.nets() {
            if n.index() >= gates.len() {
                return Err(NetlistError(format!("output reads dangling net {n}")));
            }
            fanout[n.index()] += 1;
        }
        for &n in inputs.nets() {
            if gates[n.index()].kind != GateKind::Input {
                return Err(NetlistError(format!(
                    "input port net {n} is not an Input gate"
                )));
            }
        }
        Ok(Netlist {
            name,
            gates,
            inputs,
            outputs,
            dffs,
            fanout,
        })
    }

    /// Like [`Netlist::from_parts`] but without the dangling-net and
    /// causality checks: the [`fixtures`](crate::fixtures) module builds
    /// deliberately malformed netlists (combinational loops, undriven
    /// pins) to exercise the static analyzer, and those violate exactly
    /// the invariants `from_parts` enforces. Fanout counting skips pins
    /// that point outside the gate array so the structural accessors stay
    /// panic-free; *simulating* such a netlist is still undefined.
    pub(crate) fn from_parts_relaxed(
        name: String,
        gates: Vec<Gate>,
        inputs: PortMap,
        outputs: PortMap,
    ) -> Netlist {
        let mut dffs = Vec::new();
        let mut fanout = vec![0u32; gates.len()];
        for (i, g) in gates.iter().enumerate() {
            for &pin in g.inputs() {
                if pin.index() < gates.len() {
                    fanout[pin.index()] += 1;
                }
            }
            if g.kind == GateKind::Dff {
                dffs.push(NetId(i as u32));
            }
        }
        for &n in outputs.nets() {
            if n.index() < gates.len() {
                fanout[n.index()] += 1;
            }
        }
        Netlist {
            name,
            gates,
            inputs,
            outputs,
            dffs,
            fanout,
        }
    }

    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The input port map.
    #[must_use]
    pub fn inputs(&self) -> &PortMap {
        &self.inputs
    }

    /// The output port map.
    #[must_use]
    pub fn outputs(&self) -> &PortMap {
        &self.outputs
    }

    /// Nets driven by D flip-flops.
    #[must_use]
    pub fn dffs(&self) -> &[NetId] {
        &self.dffs
    }

    /// Whether the netlist has no state elements.
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// The number of sinks reading each net (output ports count as one
    /// sink). Nets with fanout > 1 carry distinct fanout-branch faults.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> u32 {
        self.fanout[net.index()]
    }

    /// The number of gates, excluding primary inputs and constants.
    #[must_use]
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| {
                !matches!(
                    g.kind,
                    GateKind::Input | GateKind::Const0 | GateKind::Const1
                )
            })
            .count()
    }

    /// The longest combinational path, in gate levels (primary inputs,
    /// constants and flip-flop outputs are level 0; each logic gate is one
    /// more than its deepest input). A standard proxy for the module's
    /// critical path.
    #[must_use]
    pub fn logic_depth(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        let mut max = 0;
        for (i, g) in self.gates.iter().enumerate() {
            level[i] = match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => 0,
                _ => {
                    1 + g
                        .inputs()
                        .iter()
                        .map(|p| level.get(p.index()).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                }
            };
            max = max.max(level[i]);
        }
        max
    }

    /// Per-kind gate counts (useful for reporting module sizes).
    #[must_use]
    pub fn kind_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(kind_name(g.kind)).or_insert(0) += 1;
        }
        h
    }
}

fn kind_name(k: GateKind) -> &'static str {
    match k {
        GateKind::Input => "INPUT",
        GateKind::Const0 => "CONST0",
        GateKind::Const1 => "CONST1",
        GateKind::Buf => "BUF",
        GateKind::Not => "NOT",
        GateKind::And => "AND",
        GateKind::Or => "OR",
        GateKind::Nand => "NAND",
        GateKind::Nor => "NOR",
        GateKind::Xor => "XOR",
        GateKind::Xnor => "XNOR",
        GateKind::Mux => "MUX",
        GateKind::Dff => "DFF",
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} logic), {} inputs, {} outputs, {} DFFs",
            self.name,
            self.gates.len(),
            self.logic_gate_count(),
            self.inputs.width(),
            self.outputs.width(),
            self.dffs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn port_map_lookup() {
        let mut p = PortMap::new();
        p.push("a", &[NetId(0), NetId(1)]);
        p.push("b", &[NetId(2)]);
        assert_eq!(p.range("a"), Some(0..2));
        assert_eq!(p.range("b"), Some(2..3));
        assert_eq!(p.range("c"), None);
        assert_eq!(p.bus("b"), Some(&[NetId(2)][..]));
        assert_eq!(p.width(), 3);
        let names: Vec<_> = p.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn port_map_rejects_duplicates() {
        let mut p = PortMap::new();
        p.push("a", &[NetId(0)]);
        p.push("a", &[NetId(1)]);
    }

    #[test]
    fn fanout_counts_sinks() {
        let mut b = Builder::new("t");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.and(a, x);
        b.output("y", y);
        let n = b.finish();
        assert_eq!(n.fanout(a), 2);
        assert_eq!(n.fanout(x), 1);
        assert_eq!(n.fanout(y), 1);
        assert!(n.is_combinational());
        assert_eq!(n.logic_gate_count(), 2);
    }

    #[test]
    fn logic_depth_counts_levels() {
        let mut b = Builder::new("d");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and(x, y); // level 1
        let o = b.or(a, y); // level 2
        let n = b.not(o); // level 3
        b.output("n", n);
        assert_eq!(b.finish().logic_depth(), 3);

        // DFF outputs restart at level 0.
        let mut b = Builder::new("seq");
        let x = b.input("x");
        let a = b.not(x); // 1
        let q = b.dff(a); // 0
        let z = b.not(q); // 1
        b.output("z", z);
        assert_eq!(b.finish().logic_depth(), 1);
    }

    #[test]
    fn display_summarizes() {
        let mut b = Builder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish();
        let s = n.to_string();
        assert!(s.contains("m:"));
        assert!(s.contains("1 inputs"));
    }
}
