//! Gate and net primitives.

use std::fmt;

/// Identifies a net (equivalently, the gate driving it — every gate drives
/// exactly one net, and the net's id equals the driving gate's index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl NetId {
    /// The driving gate's index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The cell types of the gate library.
///
/// This is a small structural library in the spirit of a standard-cell
/// subset: constants, inverter/buffer, the 2-input basics, a 2:1 mux and a
/// D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input.
    Input,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer: output = `sel ? a : b` with pins `(sel, a, b)`.
    Mux,
    /// D flip-flop; pin 0 is `d` (connected after creation to allow
    /// feedback). The gate's net is `q`.
    Dff,
}

impl GateKind {
    /// The number of input pins.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not | GateKind::Dff => 1,
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => 2,
            GateKind::Mux => 3,
        }
    }

    /// Evaluates the gate on bit-parallel words (each bit lane is an
    /// independent simulation). Unused pins are ignored.
    ///
    /// `Dff` evaluates as a buffer of its captured state, which the
    /// simulator supplies in `a`.
    #[inline]
    #[must_use]
    pub fn eval(self, a: u64, b: u64, c: u64) -> u64 {
        match self {
            GateKind::Input | GateKind::Buf | GateKind::Dff => a,
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Not => !a,
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Nand => !(a & b),
            GateKind::Nor => !(a | b),
            GateKind::Xor => a ^ b,
            GateKind::Xnor => !(a ^ b),
            GateKind::Mux => (a & b) | (!a & c),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux => "MUX",
            GateKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// A gate instance: a cell type plus its input nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The cell type.
    pub kind: GateKind,
    /// Input nets; only the first [`GateKind::arity`] entries are meaningful.
    pub pins: [NetId; 3],
}

impl Gate {
    pub(crate) const NO_NET: NetId = NetId(u32::MAX);

    /// Creates a gate; unused pins are padded internally.
    ///
    /// # Panics
    ///
    /// Panics if `pins.len()` differs from the kind's arity.
    #[must_use]
    pub fn new(kind: GateKind, pins: &[NetId]) -> Gate {
        assert_eq!(pins.len(), kind.arity(), "{kind}: wrong pin count");
        let mut p = [Gate::NO_NET; 3];
        p[..pins.len()].copy_from_slice(pins);
        Gate { kind, pins: p }
    }

    /// The meaningful input pins.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.pins[..self.kind.arity()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_truth_tables() {
        let t = !0u64;
        assert_eq!(GateKind::And.eval(t, 0, 0), 0);
        assert_eq!(GateKind::And.eval(t, t, 0), t);
        assert_eq!(GateKind::Or.eval(0, 0, 0), 0);
        assert_eq!(GateKind::Or.eval(t, 0, 0), t);
        assert_eq!(GateKind::Nand.eval(t, t, 0), 0);
        assert_eq!(GateKind::Nor.eval(0, 0, 0), t);
        assert_eq!(GateKind::Xor.eval(t, t, 0), 0);
        assert_eq!(GateKind::Xnor.eval(t, 0, 0), 0);
        assert_eq!(GateKind::Not.eval(t, 0, 0), 0);
        assert_eq!(GateKind::Buf.eval(t, 0, 0), t);
        assert_eq!(GateKind::Const1.eval(0, 0, 0), t);
        assert_eq!(GateKind::Const0.eval(t, t, t), 0);
        // Mux: sel ? a : b — per-lane.
        assert_eq!(GateKind::Mux.eval(0b10, 0b11, 0b01), 0b11);
    }

    #[test]
    fn arity_matches_eval_usage() {
        assert_eq!(GateKind::Input.arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Xor.arity(), 2);
        assert_eq!(GateKind::Mux.arity(), 3);
        assert_eq!(GateKind::Dff.arity(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong pin count")]
    fn gate_new_checks_arity() {
        let _ = Gate::new(GateKind::And, &[NetId(0)]);
    }

    #[test]
    fn gate_inputs_slice() {
        let g = Gate::new(GateKind::Mux, &[NetId(0), NetId(1), NetId(2)]);
        assert_eq!(g.inputs(), &[NetId(0), NetId(1), NetId(2)]);
        let g = Gate::new(GateKind::Not, &[NetId(5)]);
        assert_eq!(g.inputs(), &[NetId(5)]);
    }
}
