//! Structural netlist text format.
//!
//! A small, ISCAS-flavoured exchange format so externally synthesized
//! modules can be fault-simulated and targeted by the compaction flow:
//!
//! ```text
//! NETLIST 1 adder4
//! input a 4          # declares nets n0..n3
//! input cin 1
//! gate XOR n0 n4     # nets are named by index; gate line: KIND pins...
//! gate DFF n9
//! dff n12 n7         # connects DFF n12's D input to n7 (feedback allowed)
//! output sum n5 n8 n11 n13
//! ```
//!
//! Gate lines appear in topological (creation) order; the k-th declared
//! net (inputs first, then gates) is `n<k>`.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::{Builder, GateKind, NetId, Netlist};

/// An error produced while parsing netlist text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    line: usize,
    msg: String,
}

impl ParseNetlistError {
    fn new(line: usize, msg: impl Into<String>) -> ParseNetlistError {
        ParseNetlistError {
            line,
            msg: msg.into(),
        }
    }

    /// The 1-based line of the error.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist text line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseNetlistError {}

fn kind_name(k: GateKind) -> &'static str {
    match k {
        GateKind::Input => "INPUT",
        GateKind::Const0 => "CONST0",
        GateKind::Const1 => "CONST1",
        GateKind::Buf => "BUF",
        GateKind::Not => "NOT",
        GateKind::And => "AND",
        GateKind::Or => "OR",
        GateKind::Nand => "NAND",
        GateKind::Nor => "NOR",
        GateKind::Xor => "XOR",
        GateKind::Xnor => "XNOR",
        GateKind::Mux => "MUX",
        GateKind::Dff => "DFF",
    }
}

fn kind_from_name(s: &str) -> Option<GateKind> {
    Some(match s {
        "CONST0" => GateKind::Const0,
        "CONST1" => GateKind::Const1,
        "BUF" => GateKind::Buf,
        "NOT" => GateKind::Not,
        "AND" => GateKind::And,
        "OR" => GateKind::Or,
        "NAND" => GateKind::Nand,
        "NOR" => GateKind::Nor,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        "MUX" => GateKind::Mux,
        "DFF" => GateKind::Dff,
        _ => return None,
    })
}

/// Serializes a netlist to the text format.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::{io, Builder};
///
/// let mut b = Builder::new("demo");
/// let x = b.input_bus("x", 2);
/// let y = b.xor(x[0], x[1]);
/// b.output("y", y);
/// let n = b.finish();
/// let text = io::to_text(&n);
/// let back = io::from_text(&text)?;
/// assert_eq!(back.gates(), n.gates());
/// assert_eq!(back.name(), "demo");
/// # Ok::<(), warpstl_netlist::io::ParseNetlistError>(())
/// ```
#[must_use]
pub fn to_text(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "NETLIST 1 {}", netlist.name());
    for (name, range) in netlist.inputs().iter() {
        let _ = writeln!(s, "input {name} {}", range.len());
    }
    for g in netlist.gates() {
        if g.kind == GateKind::Input {
            continue;
        }
        let _ = write!(s, "gate {}", kind_name(g.kind));
        if g.kind == GateKind::Dff {
            // The D pin may be a forward reference: connect it separately.
            s.push('\n');
            continue;
        }
        for &p in g.inputs() {
            let _ = write!(s, " n{}", p.0);
        }
        s.push('\n');
    }
    for &q in netlist.dffs() {
        let d = netlist.gates()[q.index()].pins[0];
        let _ = writeln!(s, "dff n{} n{}", q.0, d.0);
    }
    for (name, _) in netlist.outputs().iter() {
        let _ = write!(s, "output {name}");
        for &n in netlist.outputs().bus(name).expect("declared") {
            let _ = write!(s, " n{}", n.0);
        }
        s.push('\n');
    }
    s
}

/// Parses a netlist from the text format.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on malformed
/// input, unknown gate kinds, dangling nets, or non-topological order.
pub fn from_text(text: &str) -> Result<Netlist, ParseNetlistError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseNetlistError::new(1, "empty text"))?;
    let mut h = header.split_whitespace();
    if h.next() != Some("NETLIST") || h.next() != Some("1") {
        return Err(ParseNetlistError::new(1, "bad header"));
    }
    let name = h.next().unwrap_or("netlist");
    let mut b = Builder::new(name);
    let mut net_count = 0usize;
    let mut seen_gates = false;

    let parse_net = |lineno: usize, tok: &str, max: usize| -> Result<NetId, ParseNetlistError> {
        let idx: u32 = tok
            .strip_prefix('n')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseNetlistError::new(lineno, format!("bad net `{tok}`")))?;
        if (idx as usize) >= max {
            return Err(ParseNetlistError::new(
                lineno,
                format!("net `{tok}` not yet declared"),
            ));
        }
        Ok(NetId(idx))
    };

    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("input") => {
                if seen_gates {
                    return Err(ParseNetlistError::new(lineno, "inputs must precede gates"));
                }
                let pname = parts
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "missing input name"))?;
                let width: usize = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .ok_or_else(|| ParseNetlistError::new(lineno, "bad input width"))?;
                b.input_bus(pname, width);
                net_count += width;
            }
            Some("gate") => {
                seen_gates = true;
                let kname = parts
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "missing gate kind"))?;
                let kind = kind_from_name(kname).ok_or_else(|| {
                    ParseNetlistError::new(lineno, format!("unknown kind `{kname}`"))
                })?;
                if kind == GateKind::Dff {
                    b.dff_placeholder();
                    net_count += 1;
                    continue;
                }
                let pins: Vec<NetId> = parts
                    .map(|t| parse_net(lineno, t, net_count))
                    .collect::<Result<_, _>>()?;
                if pins.len() != kind.arity() {
                    return Err(ParseNetlistError::new(
                        lineno,
                        format!("{kname} needs {} pins, got {}", kind.arity(), pins.len()),
                    ));
                }
                match kind {
                    GateKind::Const0 => {
                        b.const0();
                    }
                    GateKind::Const1 => {
                        b.const1();
                    }
                    GateKind::Buf => {
                        b.buf(pins[0]);
                    }
                    GateKind::Not => {
                        b.not(pins[0]);
                    }
                    GateKind::And => {
                        b.and(pins[0], pins[1]);
                    }
                    GateKind::Or => {
                        b.or(pins[0], pins[1]);
                    }
                    GateKind::Nand => {
                        b.nand(pins[0], pins[1]);
                    }
                    GateKind::Nor => {
                        b.nor(pins[0], pins[1]);
                    }
                    GateKind::Xor => {
                        b.xor(pins[0], pins[1]);
                    }
                    GateKind::Xnor => {
                        b.xnor(pins[0], pins[1]);
                    }
                    GateKind::Mux => {
                        b.mux(pins[0], pins[1], pins[2]);
                    }
                    GateKind::Input | GateKind::Dff => unreachable!("handled above"),
                }
                net_count += 1;
            }
            Some("dff") => {
                let q = parse_net(lineno, parts.next().unwrap_or(""), net_count)?;
                let d = parse_net(lineno, parts.next().unwrap_or(""), net_count)?;
                b.connect_dff(q, d);
            }
            Some("output") => {
                let pname = parts
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "missing output name"))?;
                let nets: Vec<NetId> = parts
                    .map(|t| parse_net(lineno, t, net_count))
                    .collect::<Result<_, _>>()?;
                if nets.is_empty() {
                    return Err(ParseNetlistError::new(lineno, "empty output bus"));
                }
                b.output_bus(pname, &nets);
            }
            Some(other) => {
                return Err(ParseNetlistError::new(
                    lineno,
                    format!("unknown directive `{other}`"),
                ))
            }
            None => {}
        }
    }
    // Builder::finish panics on structural errors; catch them as parse
    // errors so malformed text cannot crash callers.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || b.finish()))
        .map_err(|_| ParseNetlistError::new(0, "structural validation failed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;

    fn sample() -> Netlist {
        let mut b = Builder::new("mix");
        let x = b.input_bus("x", 3);
        let s = b.input("s");
        let a = b.and(x[0], x[1]);
        let o = b.nor(a, x[2]);
        let m = b.mux(s, a, o);
        let q = b.dff_placeholder();
        let nx = b.xor(q, m);
        b.connect_dff(q, nx);
        b.output("m", m);
        b.output("q", q);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_structure_and_behaviour() {
        let n = sample();
        let text = to_text(&n);
        let back = from_text(&text).unwrap();
        assert_eq!(back.gates(), n.gates());
        assert_eq!(back.dffs(), n.dffs());
        // Behavioural check: same outputs for a few steps.
        let mut s1 = LogicSim::new(&n);
        let mut s2 = LogicSim::new(&back);
        for v in [0b1011u64, 0b0001, 0b1111, 0b0110] {
            s1.set_input_u64("x", v & 0b111);
            s1.set_input_u64("s", v >> 3);
            s2.set_input_u64("x", v & 0b111);
            s2.set_input_u64("s", v >> 3);
            s1.step();
            s2.step();
            assert_eq!(s1.output_u64("m"), s2.output_u64("m"));
            assert_eq!(s1.output_u64("q"), s2.output_u64("q"));
        }
    }

    #[test]
    fn module_generators_round_trip() {
        for kind in crate::modules::ModuleKind::ALL {
            let n = kind.build();
            let back = from_text(&to_text(&n)).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(back.gates().len(), n.gates().len(), "{kind}");
            assert_eq!(back.inputs().width(), n.inputs().width(), "{kind}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(from_text("").is_err());
        assert!(from_text("BOGUS").is_err());
        let e = from_text("NETLIST 1 t\ninput a 1\ngate FROB n0\n").unwrap_err();
        assert_eq!(e.line(), 3);
        let e = from_text("NETLIST 1 t\ninput a 1\ngate AND n0 n7\n").unwrap_err();
        assert_eq!(e.line(), 3);
        // The dangling pin is reported before anything else.
        let e = from_text("NETLIST 1 t\ngate AND n0 n1\ninput a 2\n").unwrap_err();
        assert_eq!(e.line(), 2);
        // Inputs after (pin-less) gates violate the section order.
        let e = from_text("NETLIST 1 t\ngate CONST0\ninput a 1\noutput y n0\n").unwrap_err();
        assert_eq!(e.line(), 3);
        // Unconnected DFF placeholder -> structural failure, not a panic.
        assert!(from_text("NETLIST 1 t\ninput a 1\ngate DFF\noutput y n1\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "NETLIST 1 c\n\ninput a 2   # two bits\ngate AND n0 n1\noutput y n2\n";
        let n = from_text(text).unwrap();
        assert_eq!(n.logic_gate_count(), 1);
    }
}
