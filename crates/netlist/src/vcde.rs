//! The "VCDE" pattern-sequence format.
//!
//! The paper's flow stores "the sequence of test patterns per clock cycle
//! applied to the target module" in VCDE files consumed by the fault
//! simulator. [`PatternSeq`] is the in-memory form: a timestamped sequence of
//! fixed-width bit vectors; [`PatternSeq::to_vcde`] / [`PatternSeq::from_vcde`]
//! give the text form:
//!
//! ```text
//! VCDE 1 <width>
//! <cc> <hex-vector>
//! ...
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A timestamped sequence of fixed-width test patterns.
///
/// Row `i` is the input vector applied at clock cycle [`PatternSeq::cc`]`(i)`.
/// Bit 0 is the first flat input-bit position of the target module's port
/// map. Rows are bit-packed.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::PatternSeq;
///
/// let mut p = PatternSeq::new(12);
/// p.push_value(100, 0xabc);
/// p.push_value(105, 0x123);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.value(0), 0xabc);
/// assert_eq!(p.cc(1), 105);
///
/// let text = p.to_vcde();
/// let back = PatternSeq::from_vcde(&text)?;
/// assert_eq!(back, p);
/// # Ok::<(), warpstl_netlist::ParseVcdeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSeq {
    width: usize,
    words_per_row: usize,
    ccs: Vec<u64>,
    data: Vec<u64>,
}

impl PatternSeq {
    /// An empty sequence of `width`-bit patterns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn new(width: usize) -> PatternSeq {
        assert!(width > 0, "pattern width must be positive");
        PatternSeq {
            width,
            words_per_row: width.div_ceil(64),
            ccs: Vec::new(),
            data: Vec::new(),
        }
    }

    /// The pattern width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ccs.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ccs.is_empty()
    }

    /// The clock-cycle stamp of row `i`.
    #[must_use]
    pub fn cc(&self, i: usize) -> u64 {
        self.ccs[i]
    }

    /// The packed words of row `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Bit `bit` of row `i`.
    #[must_use]
    pub fn bit(&self, i: usize, bit: usize) -> bool {
        debug_assert!(bit < self.width);
        (self.row(i)[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Row `i` as an integer (only valid for widths up to 64).
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    #[must_use]
    pub fn value(&self, i: usize) -> u64 {
        assert!(self.width <= 64, "value() requires width <= 64");
        let mask = if self.width == 64 {
            !0
        } else {
            (1u64 << self.width) - 1
        };
        self.row(i)[0] & mask
    }

    /// Appends a row from packed words.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong number of words.
    pub fn push_row(&mut self, cc: u64, row: &[u64]) {
        assert_eq!(row.len(), self.words_per_row, "wrong row width");
        self.ccs.push(cc);
        self.data.extend_from_slice(row);
        // Mask out bits beyond the width so Eq and hex round-trips are exact.
        if !self.width.is_multiple_of(64) {
            let last = self.data.len() - 1;
            self.data[last] &= (1u64 << (self.width % 64)) - 1;
        }
    }

    /// Appends a row from individual bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the width.
    pub fn push_bits(&mut self, cc: u64, bits: &[bool]) {
        assert_eq!(bits.len(), self.width, "wrong bit count");
        let mut row = vec![0u64; self.words_per_row];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                row[i / 64] |= 1 << (i % 64);
            }
        }
        self.push_row(cc, &row);
    }

    /// Appends a row from an integer (widths up to 64).
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    pub fn push_value(&mut self, cc: u64, value: u64) {
        assert!(self.width <= 64, "push_value() requires width <= 64");
        self.push_row(cc, &[value]);
    }

    /// A copy with the rows in reverse order (the paper applies the
    /// SFU_IMM patterns "in reverse order during the fault simulation").
    #[must_use]
    pub fn reversed(&self) -> PatternSeq {
        let mut out = PatternSeq::new(self.width);
        for i in (0..self.len()).rev() {
            let row = self.row(i).to_vec();
            out.push_row(self.cc(i), &row);
        }
        out
    }

    /// Serializes to VCDE text.
    #[must_use]
    pub fn to_vcde(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "VCDE 1 {}", self.width);
        let nibbles = self.width.div_ceil(4);
        for i in 0..self.len() {
            let _ = write!(s, "{} ", self.cc(i));
            // MSB-first hex.
            for n in (0..nibbles).rev() {
                let mut v = 0u8;
                for b in 0..4 {
                    let bit = n * 4 + b;
                    if bit < self.width && self.bit(i, bit) {
                        v |= 1 << b;
                    }
                }
                let _ = write!(s, "{v:x}");
            }
            s.push('\n');
        }
        s
    }

    /// Parses VCDE text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseVcdeError`] on malformed headers, rows, or hex fields.
    pub fn from_vcde(text: &str) -> Result<PatternSeq, ParseVcdeError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseVcdeError::new("empty file"))?;
        let mut parts = header.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("VCDE"), Some("1")) => {}
            _ => return Err(ParseVcdeError::new("bad header")),
        }
        let width: usize = parts
            .next()
            .and_then(|w| w.parse().ok())
            .filter(|&w| w > 0)
            .ok_or_else(|| ParseVcdeError::new("bad width"))?;
        let mut seq = PatternSeq::new(width);
        let nibbles = width.div_ceil(4);
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let cc: u64 = parts
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| ParseVcdeError::new(format!("row {}: bad cc", lineno + 2)))?;
            let hex = parts.next().ok_or_else(|| {
                ParseVcdeError::new(format!("row {}: missing vector", lineno + 2))
            })?;
            if hex.len() != nibbles {
                return Err(ParseVcdeError::new(format!(
                    "row {}: expected {nibbles} hex digits, got {}",
                    lineno + 2,
                    hex.len()
                )));
            }
            let mut bits = vec![false; width];
            for (pos, ch) in hex.chars().rev().enumerate() {
                let v = ch
                    .to_digit(16)
                    .ok_or_else(|| ParseVcdeError::new(format!("row {}: bad hex", lineno + 2)))?;
                for b in 0..4 {
                    let bit = pos * 4 + b;
                    if bit < width {
                        bits[bit] = (v >> b) & 1 == 1;
                    } else if (v >> b) & 1 == 1 {
                        return Err(ParseVcdeError::new(format!(
                            "row {}: set bit beyond width",
                            lineno + 2
                        )));
                    }
                }
            }
            seq.push_bits(cc, &bits);
        }
        Ok(seq)
    }
}

/// An error produced while parsing VCDE text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVcdeError(String);

impl ParseVcdeError {
    fn new(msg: impl Into<String>) -> ParseVcdeError {
        ParseVcdeError(msg.into())
    }
}

impl fmt::Display for ParseVcdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid VCDE: {}", self.0)
    }
}

impl Error for ParseVcdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_bits_wide() {
        let mut p = PatternSeq::new(100);
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        p.push_bits(7, &bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(p.bit(0, i), b, "bit {i}");
        }
        assert_eq!(p.cc(0), 7);
        assert_eq!(p.row(0).len(), 2);
    }

    #[test]
    fn vcde_round_trip_wide() {
        let mut p = PatternSeq::new(67);
        for i in 0..10u64 {
            let bits: Vec<bool> = (0..67).map(|b| (b as u64 + i) % 5 < 2).collect();
            p.push_bits(i * 3, &bits);
        }
        let text = p.to_vcde();
        assert_eq!(PatternSeq::from_vcde(&text).unwrap(), p);
    }

    #[test]
    fn vcde_rejects_garbage() {
        assert!(PatternSeq::from_vcde("").is_err());
        assert!(PatternSeq::from_vcde("VCDE 2 8\n").is_err());
        assert!(PatternSeq::from_vcde("VCDE 1 0\n").is_err());
        assert!(PatternSeq::from_vcde("VCDE 1 8\nxx ff\n").is_err());
        assert!(PatternSeq::from_vcde("VCDE 1 8\n0 f\n").is_err());
        assert!(PatternSeq::from_vcde("VCDE 1 8\n0 zz\n").is_err());
        // Set bit beyond declared width.
        assert!(PatternSeq::from_vcde("VCDE 1 7\n0 ff\n").is_err());
    }

    #[test]
    fn reversed_swaps_order_and_keeps_stamps() {
        let mut p = PatternSeq::new(8);
        p.push_value(1, 0x11);
        p.push_value(2, 0x22);
        p.push_value(3, 0x33);
        let r = p.reversed();
        assert_eq!(r.value(0), 0x33);
        assert_eq!(r.cc(0), 3);
        assert_eq!(r.value(2), 0x11);
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn push_row_masks_spare_bits() {
        let mut p = PatternSeq::new(4);
        p.push_row(0, &[0xff]);
        assert_eq!(p.value(0), 0xf);
        let mut q = PatternSeq::new(4);
        q.push_value(0, 0xf);
        assert_eq!(p, q);
    }

    #[test]
    fn width_64_value() {
        let mut p = PatternSeq::new(64);
        p.push_value(0, u64::MAX);
        assert_eq!(p.value(0), u64::MAX);
    }
}
