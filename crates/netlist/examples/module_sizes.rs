//! Prints the size of each generated GPU module.
fn main() {
    for k in warpstl_netlist::modules::ModuleKind::ALL {
        println!("{}", k.build());
    }
}
