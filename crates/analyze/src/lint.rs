//! Structural netlist lints: the analysis gate's rule passes.
//!
//! Four passes, each linear in gates + pins:
//!
//! 1. **undriven-net** (error) — pins or output ports referencing nets no
//!    gate drives. Impossible through [`Builder`](warpstl_netlist::Builder),
//!    but imported or fixture netlists can carry them.
//! 2. **comb-loop** (error) — cycles through combinational gates. DFF `d`
//!    pins are sequential boundaries and do not close loops.
//! 3. **dead-logic** (warning) — gates whose output is provably constant
//!    by three-valued constant propagation from `CONST0`/`CONST1` (e.g.
//!    the adder stage fed by a constant-0 carry-in). Their faults are
//!    partly untestable, which is worth surfacing but not fatal.
//! 4. **unreachable** (warning) — gates from which no primary output is
//!    reachable, including floating nets nothing reads. No fault on them
//!    can ever be observed.

use warpstl_netlist::{Gate, GateKind, NetId, Netlist};

use crate::diag::{AnalyzeReport, Diagnostic, Rule};

/// Runs every lint pass over `netlist` and collects the findings.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::fixtures;
///
/// let report = warpstl_analyze::lint(&fixtures::combinational_loop());
/// assert!(!report.is_clean());
/// ```
#[must_use]
pub fn lint(netlist: &Netlist) -> AnalyzeReport {
    let mut diagnostics = Vec::new();
    undriven_nets(netlist, &mut diagnostics);
    comb_loops(netlist, &mut diagnostics);
    dead_logic(netlist, &mut diagnostics);
    unreachable_gates(netlist, &mut diagnostics);
    AnalyzeReport {
        name: netlist.name().to_string(),
        gates: netlist.gates().len(),
        diagnostics,
        implications: crate::ImplicationStats::default(),
    }
}

/// Pass 1: pins and output ports must reference existing gates.
fn undriven_nets(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let n = netlist.gates().len();
    for (i, g) in netlist.gates().iter().enumerate() {
        for (p, &pin) in g.inputs().iter().enumerate() {
            if pin.index() >= n {
                out.push(Diagnostic::error(
                    Rule::UndrivenNet,
                    NetId(i as u32),
                    format!("gate n{i} ({}) pin {p} reads undriven net {pin}", g.kind),
                ));
            }
        }
    }
    for (name, range) in netlist.outputs().iter() {
        for &net in &netlist.outputs().nets()[range] {
            if net.index() >= n {
                out.push(Diagnostic::error(
                    Rule::UndrivenNet,
                    net,
                    format!("output port `{name}` reads undriven net {net}"),
                ));
            }
        }
    }
}

/// Pass 2: depth-first search for cycles over combinational edges.
///
/// Iterative (module netlists are thousands of gates deep), with the
/// classic three colors: white (unvisited), grey (on the current path),
/// black (done). A grey→grey edge closes a cycle; the grey path suffix
/// names it. DFF gates are skipped entirely — their `d` pin crosses a
/// register boundary, so feedback through them is legal.
fn comb_loops(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let gates = netlist.gates();
    let n = gates.len();
    fn comb_pins(g: &Gate) -> &[NetId] {
        if g.kind == GateKind::Dff {
            &[]
        } else {
            g.inputs()
        }
    }
    let mut color = vec![WHITE; n];
    // (gate, next pin to explore); doubles as the current DFS path.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        color[start] = GREY;
        stack.push((start, 0));
        while let Some(&mut (i, ref mut pin)) = stack.last_mut() {
            let pins = comb_pins(&gates[i]);
            if *pin >= pins.len() {
                color[i] = BLACK;
                stack.pop();
                continue;
            }
            let src = pins[*pin].index();
            *pin += 1;
            if src >= n {
                continue; // undriven; reported by pass 1
            }
            match color[src] {
                WHITE => {
                    color[src] = GREY;
                    stack.push((src, 0));
                }
                GREY => {
                    // The path suffix from `src` back to `i` is the cycle.
                    let from = stack
                        .iter()
                        .position(|&(g, _)| g == src)
                        .expect("grey gate is on the path");
                    let cycle: Vec<String> = stack[from..]
                        .iter()
                        .map(|&(g, _)| format!("n{g}"))
                        .collect();
                    out.push(Diagnostic::error(
                        Rule::CombLoop,
                        NetId(src as u32),
                        format!(
                            "combinational loop: {} -> n{src} (no flip-flop breaks the cycle)",
                            cycle.join(" -> ")
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Three-valued constant lattice for pass 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cv {
    Zero,
    One,
    Unknown,
}

impl Cv {
    fn not(self) -> Cv {
        match self {
            Cv::Zero => Cv::One,
            Cv::One => Cv::Zero,
            Cv::Unknown => Cv::Unknown,
        }
    }
}

/// Pass 3: constant propagation flags gates that can never toggle.
fn dead_logic(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let gates = netlist.gates();
    let n = gates.len();
    let mut cv = vec![Cv::Unknown; n];
    for (i, g) in gates.iter().enumerate() {
        let at = |cv: &[Cv], pin: usize| {
            let idx = g.pins[pin].index();
            // Dangling and forward (feedback) references are Unknown.
            if idx >= n || (idx >= i && g.kind != GateKind::Dff) {
                Cv::Unknown
            } else {
                cv[idx]
            }
        };
        let v = match g.kind {
            GateKind::Input | GateKind::Dff => Cv::Unknown,
            GateKind::Const0 => Cv::Zero,
            GateKind::Const1 => Cv::One,
            GateKind::Buf => at(&cv, 0),
            GateKind::Not => at(&cv, 0).not(),
            GateKind::And => match (at(&cv, 0), at(&cv, 1)) {
                (Cv::Zero, _) | (_, Cv::Zero) => Cv::Zero,
                (Cv::One, Cv::One) => Cv::One,
                _ => Cv::Unknown,
            },
            GateKind::Or => match (at(&cv, 0), at(&cv, 1)) {
                (Cv::One, _) | (_, Cv::One) => Cv::One,
                (Cv::Zero, Cv::Zero) => Cv::Zero,
                _ => Cv::Unknown,
            },
            GateKind::Nand => match (at(&cv, 0), at(&cv, 1)) {
                (Cv::Zero, _) | (_, Cv::Zero) => Cv::One,
                (Cv::One, Cv::One) => Cv::Zero,
                _ => Cv::Unknown,
            },
            GateKind::Nor => match (at(&cv, 0), at(&cv, 1)) {
                (Cv::One, _) | (_, Cv::One) => Cv::Zero,
                (Cv::Zero, Cv::Zero) => Cv::One,
                _ => Cv::Unknown,
            },
            GateKind::Xor => match (at(&cv, 0), at(&cv, 1)) {
                (Cv::Unknown, _) | (_, Cv::Unknown) => Cv::Unknown,
                (a, b) if a == b => Cv::Zero,
                _ => Cv::One,
            },
            GateKind::Xnor => match (at(&cv, 0), at(&cv, 1)) {
                (Cv::Unknown, _) | (_, Cv::Unknown) => Cv::Unknown,
                (a, b) if a == b => Cv::One,
                _ => Cv::Zero,
            },
            GateKind::Mux => match at(&cv, 0) {
                Cv::One => at(&cv, 1),
                Cv::Zero => at(&cv, 2),
                Cv::Unknown => {
                    let (a, b) = (at(&cv, 1), at(&cv, 2));
                    if a == b && a != Cv::Unknown {
                        a
                    } else {
                        Cv::Unknown
                    }
                }
            },
        };
        cv[i] = v;
        let is_const_kind = matches!(
            g.kind,
            GateKind::Const0 | GateKind::Const1 | GateKind::Input
        );
        if !is_const_kind && v != Cv::Unknown {
            out.push(Diagnostic::warning(
                Rule::DeadLogic,
                NetId(i as u32),
                format!(
                    "gate n{i} ({}) is constant {} behind constant gates",
                    g.kind,
                    if v == Cv::One { 1 } else { 0 }
                ),
            ));
        }
    }
}

/// Pass 4: backward reachability from the primary outputs over every edge
/// (including DFF `d` pins — a fault observable after a state update is
/// still observable).
fn unreachable_gates(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let gates = netlist.gates();
    let n = gates.len();
    let mut reached = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &o in netlist.outputs().nets() {
        if o.index() < n && !reached[o.index()] {
            reached[o.index()] = true;
            stack.push(o.index());
        }
    }
    while let Some(i) = stack.pop() {
        for &pin in gates[i].inputs() {
            let src = pin.index();
            if src < n && !reached[src] {
                reached[src] = true;
                stack.push(src);
            }
        }
    }
    for (i, g) in gates.iter().enumerate() {
        if reached[i] || g.kind == GateKind::Input {
            continue;
        }
        let floating = netlist.fanout(NetId(i as u32)) == 0;
        out.push(Diagnostic::warning(
            Rule::Unreachable,
            NetId(i as u32),
            if floating {
                format!("gate n{i} ({}) drives a floating net (no readers)", g.kind)
            } else {
                format!("gate n{i} ({}) cannot reach any primary output", g.kind)
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use warpstl_netlist::{fixtures, Builder};

    fn diags_for(report: &AnalyzeReport, rule: Rule) -> Vec<&Diagnostic> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule)
            .collect()
    }

    #[test]
    fn clean_netlist_is_clean() {
        let mut b = Builder::new("clean");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        let r = lint(&b.finish());
        assert!(r.is_clean());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn loop_fixture_flags_comb_loop_error() {
        let r = lint(&fixtures::combinational_loop());
        assert!(!r.is_clean());
        let loops = diags_for(&r, Rule::CombLoop);
        assert_eq!(loops.len(), 1, "one cycle, one diagnostic: {r}");
        assert_eq!(loops[0].severity, Severity::Error);
        assert!(loops[0].message.contains("n2"), "{}", loops[0].message);
        assert!(loops[0].message.contains("n3"), "{}", loops[0].message);
    }

    #[test]
    fn undriven_fixture_flags_undriven_error() {
        let r = lint(&fixtures::undriven());
        assert!(!r.is_clean());
        let und = diags_for(&r, Rule::UndrivenNet);
        assert_eq!(und.len(), 1);
        assert!(und[0].message.contains("n7"), "{}", und[0].message);
    }

    #[test]
    fn dff_feedback_is_not_a_loop() {
        let mut b = Builder::new("toggle");
        let q = b.dff_placeholder();
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output("q", q);
        let r = lint(&b.finish());
        assert!(diags_for(&r, Rule::CombLoop).is_empty(), "{r}");
    }

    #[test]
    fn constant_fed_and_is_dead_logic_warning() {
        let mut b = Builder::new("dead");
        let x = b.input("x");
        let k = b.const0();
        let dead = b.and(x, k); // constant 0
        let alive = b.or(x, k); // follows x: not constant
        let z = b.or(dead, alive);
        b.output("z", z);
        let r = lint(&b.finish());
        // Warnings do not gate.
        assert!(r.is_clean());
        let dl = diags_for(&r, Rule::DeadLogic);
        assert_eq!(dl.len(), 1, "{r}");
        assert_eq!(dl[0].net, Some(dead));
        assert!(dl[0].message.contains("constant 0"));
    }

    #[test]
    fn unreachable_and_floating_gates_warn() {
        let mut b = Builder::new("un");
        let x = b.input("x");
        let y = b.input("y");
        let float = b.and(x, y); // nothing reads it
        let feeder = b.or(x, y);
        let sink = b.not(feeder); // read by nothing on an output path
        let _ = sink;
        let z = b.xor(x, y);
        b.output("z", z);
        let r = lint(&b.finish());
        assert!(r.is_clean());
        let un = diags_for(&r, Rule::Unreachable);
        let nets: Vec<_> = un.iter().filter_map(|d| d.net).collect();
        assert!(nets.contains(&float));
        assert!(nets.contains(&feeder));
        assert!(nets.contains(&sink));
        assert!(un.iter().any(|d| d.message.contains("floating net")), "{r}");
    }

    #[test]
    fn bundled_modules_have_no_lint_errors() {
        for kind in warpstl_netlist::modules::ModuleKind::ALL {
            let r = lint(&kind.build());
            assert!(r.is_clean(), "{}: {r}", kind.name());
            assert!(diags_for(&r, Rule::CombLoop).is_empty());
            assert!(diags_for(&r, Rule::UndrivenNet).is_empty());
        }
    }
}
