//! SCOAP testability measures: controllability and observability per net.
//!
//! The classic Sandia Controllability/Observability Analysis Program
//! metrics (Goldstein 1979), computed structurally in two linear passes
//! over the netlist:
//!
//! - **CC0/CC1** (combinational 0/1-controllability): a lower bound on how
//!   many pin assignments it takes to drive a net to 0/1. Primary inputs
//!   cost 1; every gate adds 1 plus the cost of justifying its inputs.
//! - **CO** (combinational observability): how many pin assignments it
//!   takes to propagate a net's value to a primary output. Outputs cost 0;
//!   side pins must be set to non-controlling values, paid for with their
//!   controllabilities.
//!
//! Creation order is a topological order of the combinational logic, so
//! one ascending pass computes controllability and one descending pass
//! computes observability. Sequential feedback (DFF `d` pins referencing
//! later nets) is approximated, not iterated to a fixpoint: a forward
//! reference reads [`Scoap::INF`] and a flip-flop adds one time-frame
//! cost. The paper's modules are purely combinational, where the passes
//! are exact.
//!
//! High CO = hard to observe. The fault engine sorts its targets
//! hardest-first by CO so fault-dropping batches stay homogeneous and
//! early-exit sooner; PODEM picks the cheapest-to-justify pin by CC.

use warpstl_netlist::{GateKind, NetId, Netlist};

/// Per-net SCOAP scores for one netlist.
///
/// # Examples
///
/// ```
/// use warpstl_analyze::Scoap;
/// use warpstl_netlist::Builder;
///
/// let mut b = Builder::new("c");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.and(x, y);
/// b.output("z", z);
/// let n = b.finish();
/// let s = Scoap::compute(&n);
/// // AND output: 1 to set either input to 0, plus the gate's own level.
/// assert_eq!(s.cc0(z), 2);
/// // ...but both inputs must be 1 for a 1 at the output.
/// assert_eq!(s.cc1(z), 3);
/// // The output is directly observable.
/// assert_eq!(s.co(z), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

/// Saturating sum, so [`Scoap::INF`] is absorbing.
fn add(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

/// Saturating three-way sum.
fn add3(a: u32, b: u32, c: u32) -> u32 {
    a.saturating_add(b).saturating_add(c)
}

impl Scoap {
    /// The sentinel for "not controllable/observable from here": constant
    /// nets' impossible value, nets cut off from every output, and
    /// unresolved sequential feedback.
    pub const INF: u32 = u32::MAX;

    /// Computes the scores for `netlist` (one forward pass, one backward
    /// pass). Robust to fixture netlists: dangling pins read [`Scoap::INF`].
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Scoap {
        let n = netlist.gates().len();
        let mut cc0 = vec![Scoap::INF; n];
        let mut cc1 = vec![Scoap::INF; n];

        // Forward pass: controllability in creation (topological) order.
        for (i, g) in netlist.gates().iter().enumerate() {
            let at = |v: &[u32], pin: usize| {
                let idx = g.pins[pin].index();
                v.get(idx).copied().unwrap_or(Scoap::INF)
            };
            let (z, o) = match g.kind {
                GateKind::Input => (1, 1),
                GateKind::Const0 => (0, Scoap::INF),
                GateKind::Const1 => (Scoap::INF, 0),
                GateKind::Buf => (add(at(&cc0, 0), 1), add(at(&cc1, 0), 1)),
                GateKind::Not => (add(at(&cc1, 0), 1), add(at(&cc0, 0), 1)),
                GateKind::And => (
                    add(at(&cc0, 0).min(at(&cc0, 1)), 1),
                    add3(at(&cc1, 0), at(&cc1, 1), 1),
                ),
                GateKind::Or => (
                    add3(at(&cc0, 0), at(&cc0, 1), 1),
                    add(at(&cc1, 0).min(at(&cc1, 1)), 1),
                ),
                GateKind::Nand => (
                    add3(at(&cc1, 0), at(&cc1, 1), 1),
                    add(at(&cc0, 0).min(at(&cc0, 1)), 1),
                ),
                GateKind::Nor => (
                    add(at(&cc1, 0).min(at(&cc1, 1)), 1),
                    add3(at(&cc0, 0), at(&cc0, 1), 1),
                ),
                GateKind::Xor => (
                    add(
                        add(at(&cc0, 0), at(&cc0, 1)).min(add(at(&cc1, 0), at(&cc1, 1))),
                        1,
                    ),
                    add(
                        add(at(&cc0, 0), at(&cc1, 1)).min(add(at(&cc1, 0), at(&cc0, 1))),
                        1,
                    ),
                ),
                GateKind::Xnor => (
                    add(
                        add(at(&cc0, 0), at(&cc1, 1)).min(add(at(&cc1, 0), at(&cc0, 1))),
                        1,
                    ),
                    add(
                        add(at(&cc0, 0), at(&cc0, 1)).min(add(at(&cc1, 0), at(&cc1, 1))),
                        1,
                    ),
                ),
                // Mux pins are (sel, a, b) with output = sel ? a : b.
                GateKind::Mux => (
                    add(
                        add(at(&cc1, 0), at(&cc0, 1)).min(add(at(&cc0, 0), at(&cc0, 2))),
                        1,
                    ),
                    add(
                        add(at(&cc1, 0), at(&cc1, 1)).min(add(at(&cc0, 0), at(&cc1, 2))),
                        1,
                    ),
                ),
                // One time-frame of cost; feedback reads INF (single pass).
                GateKind::Dff => (add(at(&cc0, 0), 1), add(at(&cc1, 0), 1)),
            };
            cc0[i] = z;
            cc1[i] = o;
        }

        // Backward pass: observability against the creation order.
        let mut co = vec![Scoap::INF; n];
        for &out in netlist.outputs().nets() {
            if out.index() < n {
                co[out.index()] = 0;
            }
        }
        for i in (0..n).rev() {
            let g = &netlist.gates()[i];
            let here = co[i];
            let ctrl = |v: &[u32], pin: usize| {
                let idx = g.pins[pin].index();
                v.get(idx).copied().unwrap_or(Scoap::INF)
            };
            for (p, &src) in g.inputs().iter().enumerate() {
                if src.index() >= n {
                    continue;
                }
                let branch = match g.kind {
                    GateKind::Buf | GateKind::Not => add(here, 1),
                    GateKind::And | GateKind::Nand => add3(here, ctrl(&cc1, 1 - p), 1),
                    GateKind::Or | GateKind::Nor => add3(here, ctrl(&cc0, 1 - p), 1),
                    GateKind::Xor | GateKind::Xnor => {
                        add3(here, ctrl(&cc0, 1 - p).min(ctrl(&cc1, 1 - p)), 1)
                    }
                    GateKind::Mux => match p {
                        // Observing sel needs the data inputs to differ.
                        0 => add3(
                            here,
                            add(ctrl(&cc1, 1), ctrl(&cc0, 2))
                                .min(add(ctrl(&cc0, 1), ctrl(&cc1, 2))),
                            1,
                        ),
                        // A data input is observed when sel selects it.
                        1 => add3(here, ctrl(&cc1, 0), 1),
                        _ => add3(here, ctrl(&cc0, 0), 1),
                    },
                    GateKind::Dff => add(here, 1),
                    GateKind::Input | GateKind::Const0 | GateKind::Const1 => continue,
                };
                // A net's observability is its best fanout branch.
                co[src.index()] = co[src.index()].min(branch);
            }
        }
        Scoap { cc0, cc1, co }
    }

    /// 0-controllability of `net`.
    #[must_use]
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc0[net.index()]
    }

    /// 1-controllability of `net`.
    #[must_use]
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc1[net.index()]
    }

    /// Observability of `net`.
    #[must_use]
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net.index()]
    }

    /// The cost of controlling `net` to `value`.
    #[must_use]
    pub fn control_cost(&self, net: NetId, value: bool) -> u32 {
        if value {
            self.cc1(net)
        } else {
            self.cc0(net)
        }
    }

    /// A per-net test-hardness proxy: observability plus the worse
    /// controllability, saturating at [`Scoap::INF`].
    #[must_use]
    pub fn difficulty(&self, net: NetId) -> u32 {
        add(self.co(net), self.cc0(net).max(self.cc1(net)))
    }

    /// Per-net observability as `f64` sort keys for the fault engine's
    /// hardest-first target ordering (index = net id).
    #[must_use]
    pub fn observability_keys(&self) -> Vec<f64> {
        self.co.iter().map(|&v| f64::from(v)).collect()
    }

    /// `(max, mean)` of the finite observability scores — the summary the
    /// CLI prints. Returns `(0, 0.0)` when nothing is observable.
    #[must_use]
    pub fn co_summary(&self) -> (u32, f64) {
        let finite: Vec<u32> = self
            .co
            .iter()
            .copied()
            .filter(|&v| v < Scoap::INF)
            .collect();
        if finite.is_empty() {
            return (0, 0.0);
        }
        let max = *finite.iter().max().expect("non-empty");
        let mean = f64::from(finite.iter().sum::<u32>()) / finite.len() as f64;
        (max, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    #[test]
    fn input_costs_one() {
        let mut b = Builder::new("i");
        let x = b.input("x");
        b.output("y", x);
        let s = Scoap::compute(&b.finish());
        assert_eq!(s.cc0(x), 1);
        assert_eq!(s.cc1(x), 1);
        assert_eq!(s.co(x), 0);
    }

    #[test]
    fn and_or_duality() {
        let mut b = Builder::new("ao");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and(x, y);
        let o = b.or(x, y);
        b.output("a", a);
        b.output("o", o);
        let s = Scoap::compute(&b.finish());
        assert_eq!(s.cc1(a), 3); // both inputs to 1
        assert_eq!(s.cc0(a), 2); // either input to 0
        assert_eq!(s.cc0(o), 3);
        assert_eq!(s.cc1(o), 2);
        // Observing x through the AND needs y=1 (cost 1) + 1.
        assert_eq!(s.co(x), 2);
    }

    #[test]
    fn inverters_swap_controllabilities() {
        let mut b = Builder::new("n");
        let x = b.input("x");
        let y = b.input("y"); // make x's cc asymmetric via an AND
        let a = b.and(x, y);
        let n = b.not(a);
        b.output("n", n);
        let s = Scoap::compute(&b.finish());
        assert_eq!(s.cc0(n), add(s.cc1(a), 1));
        assert_eq!(s.cc1(n), add(s.cc0(a), 1));
        assert_eq!(s.co(a), 1);
    }

    #[test]
    fn xor_takes_cheapest_parity() {
        let mut b = Builder::new("x");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        let s = Scoap::compute(&b.finish());
        // 0 via (0,0) or (1,1): 1+1+1; 1 via (0,1) or (1,0): 1+1+1.
        assert_eq!(s.cc0(z), 3);
        assert_eq!(s.cc1(z), 3);
        // Observing x needs y at either value: min(1,1)+1.
        assert_eq!(s.co(x), 2);
    }

    #[test]
    fn constants_are_one_sided() {
        let mut b = Builder::new("c");
        let x = b.input("x");
        let k = b.const0();
        let z = b.or(x, k);
        b.output("z", z);
        let s = Scoap::compute(&b.finish());
        assert_eq!(s.cc0(k), 0);
        assert_eq!(s.cc1(k), Scoap::INF);
        // z = x | 0: cc0 = 1 + 0 + 1.
        assert_eq!(s.cc0(z), 2);
    }

    #[test]
    fn observability_grows_with_depth() {
        let mut b = Builder::new("deep");
        let x = b.input("x");
        let y = b.input("y");
        let mut v = x;
        for _ in 0..5 {
            v = b.and(v, y);
        }
        b.output("v", v);
        let s = Scoap::compute(&b.finish());
        // Each AND level adds at least cost 2 on the path from x.
        assert!(s.co(x) >= 10, "co(x) = {}", s.co(x));
        assert_eq!(s.co(v), 0);
    }

    #[test]
    fn unobservable_net_is_inf() {
        let mut b = Builder::new("u");
        let x = b.input("x");
        let y = b.input("y");
        let dead = b.and(x, y); // never read, not an output
        let z = b.or(x, y);
        b.output("z", z);
        let s = Scoap::compute(&b.finish());
        assert_eq!(s.co(dead), Scoap::INF);
        assert_eq!(s.difficulty(dead), Scoap::INF);
    }

    #[test]
    fn mux_steering_costs() {
        let mut b = Builder::new("m");
        let sel = b.input("s");
        let a = b.input("a");
        let c = b.input("b");
        let m = b.mux(sel, a, c);
        b.output("m", m);
        let s = Scoap::compute(&b.finish());
        // Data input a observed when sel=1: co(m)=0 + cc1(sel)=1 + 1.
        assert_eq!(s.co(a), 2);
        assert_eq!(s.co(c), 2);
        // sel observed when the data inputs differ: 0 + (1+1) + 1.
        assert_eq!(s.co(sel), 3);
    }

    #[test]
    fn fixture_netlists_do_not_panic() {
        let s = Scoap::compute(&warpstl_netlist::fixtures::combinational_loop());
        // The loop gate's forward reference reads INF.
        assert_eq!(s.cc1(NetId(2)), Scoap::INF);
        let s = Scoap::compute(&warpstl_netlist::fixtures::undriven());
        assert_eq!(s.cc1(NetId(2)), Scoap::INF);
    }

    #[test]
    fn module_keys_are_plausible() {
        // The bundled decoder: every net scored, outputs observable.
        let n = warpstl_netlist::modules::ModuleKind::DecoderUnit.build();
        let s = Scoap::compute(&n);
        let keys = s.observability_keys();
        assert_eq!(keys.len(), n.gates().len());
        for &out in n.outputs().nets() {
            assert_eq!(s.co(out), 0);
        }
        let (max, mean) = s.co_summary();
        assert!(max > 0 && mean > 0.0);
    }
}
