//! Static testability analysis for warpstl netlists.
//!
//! One pass over a [`Netlist`] yields an
//! [`Analysis`] with two halves:
//!
//! - [`Scoap`] — SCOAP controllability (`CC0`/`CC1`) and observability
//!   (`CO`) scores per net (Goldstein 1979). Downstream consumers use
//!   them to guide PODEM pin choices and to order fault-simulation
//!   targets hardest-first.
//! - [`AnalyzeReport`] — structural lints (combinational loops, undriven
//!   nets, dead logic behind constants, gates unreachable from any
//!   output) as structured [`Diagnostic`]s. Error-severity findings gate
//!   the compaction pipeline before any fault simulation runs.
//!
//! The analysis is purely structural: it never simulates, so it is safe
//! to run on malformed netlists (that is the point of the lint gate).

#![warn(missing_docs)]

mod diag;
mod lint;
mod scoap;

pub use diag::{AnalyzeReport, AnalyzeStats, Diagnostic, Rule, Severity};
pub use lint::lint;
pub use scoap::Scoap;

use warpstl_netlist::Netlist;
use warpstl_obs::{Obs, ObsExt};

/// The combined result of one analysis pass: SCOAP scores plus lints.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// SCOAP controllability/observability scores per net.
    pub scoap: Scoap,
    /// Structural lint findings.
    pub report: AnalyzeReport,
}

impl Analysis {
    /// Whether the netlist passed the lint gate (no error-severity
    /// diagnostics; warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// Analyzes `netlist`: computes SCOAP scores and runs every lint pass.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::modules::ModuleKind;
///
/// let netlist = ModuleKind::DecoderUnit.build();
/// let analysis = warpstl_analyze::analyze(&netlist);
/// assert!(analysis.is_clean());
/// assert_eq!(analysis.scoap.observability_keys().len(), netlist.gates().len());
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist) -> Analysis {
    analyze_observed(netlist, None)
}

/// [`analyze`] with observability: emits `analyze.scoap` / `analyze.lint`
/// spans under `analyze.run`, plus `analyze.errors` / `analyze.warnings`
/// counters and one `analyze.rule.<name>` counter per rule that fired.
#[must_use]
pub fn analyze_observed(netlist: &Netlist, obs: Obs<'_>) -> Analysis {
    let run = obs.span("analyze", "analyze.run");
    let scoap = {
        let _s = obs.span("analyze", "analyze.scoap");
        Scoap::compute(netlist)
    };
    let report = {
        let _s = obs.span("analyze", "analyze.lint");
        lint::lint(netlist)
    };
    let stats = report.stats();
    obs.add("analyze.errors", stats.total_errors() as u64);
    obs.add("analyze.warnings", stats.total_warnings() as u64);
    for rule in Rule::ALL {
        let i = rule.index();
        let fired = stats.errors[i] + stats.warnings[i];
        if fired > 0 {
            obs.add(&format!("analyze.rule.{}", rule.name()), fired as u64);
        }
    }
    drop(run.with_arg("gates", netlist.gates().len()));
    Analysis { scoap, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::{fixtures, modules::ModuleKind};
    use warpstl_obs::Recorder;

    #[test]
    fn bundled_modules_are_clean() {
        for kind in ModuleKind::ALL {
            let netlist = kind.build();
            let a = analyze(&netlist);
            assert!(a.is_clean(), "{}: {}", kind.name(), a.report);
            assert_eq!(a.scoap.observability_keys().len(), netlist.gates().len());
        }
    }

    #[test]
    fn loop_fixture_fails_the_gate() {
        let a = analyze(&fixtures::combinational_loop());
        assert!(!a.is_clean());
    }

    #[test]
    fn observed_run_emits_spans_and_counters() {
        let rec = Recorder::new();
        let a = analyze_observed(&fixtures::combinational_loop(), Some(&rec));
        assert!(!a.is_clean());
        let spans = rec.spans();
        for name in ["analyze.run", "analyze.scoap", "analyze.lint"] {
            assert_eq!(
                spans.iter().filter(|s| s.name == name).count(),
                1,
                "expected exactly one {name} span"
            );
        }
        let metrics = rec.metrics();
        assert_eq!(
            metrics.counter("analyze.errors"),
            a.report.error_count() as u64
        );
        assert!(metrics.counter("analyze.rule.comb-loop") >= 1);
    }
}
