//! Static testability analysis for warpstl netlists.
//!
//! One pass over a [`Netlist`] yields an
//! [`Analysis`] with two halves:
//!
//! - [`Scoap`] — SCOAP controllability (`CC0`/`CC1`) and observability
//!   (`CO`) scores per net (Goldstein 1979). Downstream consumers use
//!   them to guide PODEM pin choices and to order fault-simulation
//!   targets hardest-first.
//! - [`AnalyzeReport`] — structural lints (combinational loops, undriven
//!   nets, dead logic behind constants, gates unreachable from any
//!   output, implication-proven redundant logic) as structured
//!   [`Diagnostic`]s. Error-severity findings gate the compaction
//!   pipeline before any fault simulation runs.
//! - [`Implications`] and [`Untestability`] — a FIRE-style static
//!   implication graph over (net, value) literals, and the
//!   fault-independent untestability proofs plus equivalence merges it
//!   yields. Downstream consumers prune proven-redundant faults from the
//!   fault universe before any simulation and hand PODEM implied
//!   assignments.
//!
//! The analysis is purely structural: it never simulates, so it is safe
//! to run on malformed netlists (that is the point of the lint gate).

#![warn(missing_docs)]

mod diag;
mod implications;
mod lint;
mod scoap;
mod untestable;

pub use diag::{AnalyzeReport, AnalyzeStats, Diagnostic, ImplicationStats, Rule, Severity};
pub use implications::{literal, literal_parts, Implications};
pub use lint::lint;
pub use scoap::Scoap;
pub use untestable::{EquivMerge, Untestability};

use warpstl_netlist::Netlist;
use warpstl_obs::{Obs, ObsExt};

/// The combined result of one analysis pass: SCOAP scores, lints, and the
/// static implication products.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// SCOAP controllability/observability scores per net.
    pub scoap: Scoap,
    /// Structural lint findings (including implication-derived
    /// `redundant-logic` warnings), with implication counts attached.
    pub report: AnalyzeReport,
    /// The static implication graph.
    pub implications: Implications,
    /// Untestability proofs and equivalence merges.
    pub untestable: Untestability,
}

impl Analysis {
    /// Whether the netlist passed the lint gate (no error-severity
    /// diagnostics; warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// Analyzes `netlist`: computes SCOAP scores and runs every lint pass.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::modules::ModuleKind;
///
/// let netlist = ModuleKind::DecoderUnit.build();
/// let analysis = warpstl_analyze::analyze(&netlist);
/// assert!(analysis.is_clean());
/// assert_eq!(analysis.scoap.observability_keys().len(), netlist.gates().len());
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist) -> Analysis {
    analyze_observed(netlist, None)
}

/// [`analyze`] with observability: emits `analyze.scoap` /
/// `analyze.lint` / `analyze.implications` spans under `analyze.run`,
/// plus `analyze.errors` / `analyze.warnings` / `untestable.proven`
/// counters and one `analyze.rule.<name>` counter per rule that fired.
#[must_use]
pub fn analyze_observed(netlist: &Netlist, obs: Obs<'_>) -> Analysis {
    let run = obs.span("analyze", "analyze.run");
    let scoap = {
        let _s = obs.span("analyze", "analyze.scoap");
        Scoap::compute(netlist)
    };
    let mut report = {
        let _s = obs.span("analyze", "analyze.lint");
        lint::lint(netlist)
    };
    let (implications, untestable) = {
        let _s = obs.span("analyze", "analyze.implications");
        let imp = Implications::compute(netlist);
        let unt = Untestability::compute(netlist, &imp);
        (imp, unt)
    };
    report
        .diagnostics
        .extend(untestable.diagnostics().iter().cloned());
    report.implications = ImplicationStats {
        edges: implications.edge_count(),
        impossible: implications.impossible_count(),
        untestable: untestable.proven_count(),
        merges: untestable.merges().len(),
    };
    obs.add("untestable.proven", untestable.proven_count() as u64);
    let stats = report.stats();
    obs.add("analyze.errors", stats.total_errors() as u64);
    obs.add("analyze.warnings", stats.total_warnings() as u64);
    for rule in Rule::ALL {
        let i = rule.index();
        let fired = stats.errors[i] + stats.warnings[i];
        if fired > 0 {
            obs.add(&format!("analyze.rule.{}", rule.name()), fired as u64);
        }
    }
    drop(run.with_arg("gates", netlist.gates().len()));
    Analysis {
        scoap,
        report,
        implications,
        untestable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::{fixtures, modules::ModuleKind};
    use warpstl_obs::Recorder;

    #[test]
    fn bundled_modules_are_clean() {
        for kind in ModuleKind::ALL {
            let netlist = kind.build();
            let a = analyze(&netlist);
            assert!(a.is_clean(), "{}: {}", kind.name(), a.report);
            assert_eq!(a.scoap.observability_keys().len(), netlist.gates().len());
        }
    }

    #[test]
    fn loop_fixture_fails_the_gate() {
        let a = analyze(&fixtures::combinational_loop());
        assert!(!a.is_clean());
    }

    #[test]
    fn redundant_fixture_yields_untestable_counts_and_lint() {
        let a = analyze(&fixtures::redundant_logic());
        // Warnings only: the fixture is valid, so the gate stays open.
        assert!(a.is_clean());
        let st = a.report.implications;
        assert!(st.untestable > 0, "no untestable faults proven");
        assert!(st.impossible > 0, "no impossible literals");
        assert!(st.edges > 0);
        assert!(st.merges > 0, "mux select degeneracy should merge pin 1");
        assert!(
            a.report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::RedundantLogic),
            "{}",
            a.report
        );
        let j = a.report.to_json();
        assert!(j.contains("\"untestable\":"), "{j}");
        assert!(j.contains("redundant-logic"), "{j}");
    }

    #[test]
    fn observed_run_emits_spans_and_counters() {
        let rec = Recorder::new();
        let a = analyze_observed(&fixtures::combinational_loop(), Some(&rec));
        assert!(!a.is_clean());
        let spans = rec.spans();
        for name in [
            "analyze.run",
            "analyze.scoap",
            "analyze.lint",
            "analyze.implications",
        ] {
            assert_eq!(
                spans.iter().filter(|s| s.name == name).count(),
                1,
                "expected exactly one {name} span"
            );
        }
        let metrics = rec.metrics();
        assert_eq!(
            metrics.counter("analyze.errors"),
            a.report.error_count() as u64
        );
        assert!(metrics.counter("analyze.rule.comb-loop") >= 1);
    }
}
