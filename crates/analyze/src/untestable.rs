//! Fault-independent untestability proofs from the implication closure.
//!
//! A stuck-at fault is *untestable* (redundant) when no input pattern can
//! both activate it and propagate its effect to an observation point. The
//! implication engine proves that statically for three situations, each a
//! *sound* (never-wrong) but incomplete rule:
//!
//! 1. **Activation impossible** — testing `line` stuck-at-`s` requires the
//!    fault-free circuit to drive the line to `!s`; if the literal
//!    `line = !s` is [impossible](crate::Implications::is_impossible), no
//!    pattern activates the fault.
//! 2. **Propagation contradiction** — the fault effect must pass through
//!    the gate reading the faulty line, which pins the gate's *other*
//!    inputs to their non-controlling values (AND/NAND sides at 1, OR/NOR
//!    sides at 0, a MUX data pin needs its select value). If that literal
//!    set together with the activation literal is
//!    [contradictory](crate::Implications::contradicts), no pattern tests
//!    the fault. Applied one gate deep: to every input-pin fault, and to
//!    stem faults whose net has exactly one reader and is not itself a
//!    primary output.
//! 3. **Unobservable** — a fault on a gate from which no primary output is
//!    reachable (treating DFFs as transparent — the optimistic direction,
//!    which keeps the proof sound) can never be observed.
//!
//! The same degeneracy that drives rule 2 yields **equivalence merges**:
//! when one input of a 2-input gate is implied constant at its
//! non-controlling value, the gate degenerates to a buffer or inverter of
//! the other pin, making that pin's faults behaviorally identical to the
//! output's — extra edges for the dominance view, beyond what structural
//! collapsing sees. Nets that are *reachable* yet have both stem
//! polarities proven untestable are flagged by the `redundant-logic` lint:
//! the logic they compute provably never influences an output under any
//! input.

use warpstl_netlist::{GateKind, NetId, Netlist};

use crate::diag::{Diagnostic, Rule};
use crate::Implications;

/// One implication-derived fault equivalence: the input-pin fault
/// `pin` stuck-at-`pin_polarity` of gate `gate` behaves identically to the
/// gate's output fault stuck-at-`out_polarity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivMerge {
    /// The gate whose pin fault is merged.
    pub gate: usize,
    /// The pin index.
    pub pin: u8,
    /// The pin fault's stuck value.
    pub pin_polarity: bool,
    /// The equivalent output fault's stuck value.
    pub out_polarity: bool,
}

/// Untestability proofs and equivalence merges for every fault site of one
/// netlist, derived from its [`Implications`].
///
/// Sites are addressed the way the fault universe addresses them: the
/// *output* (stem) fault of the gate driving net `n`, and the *input-pin*
/// fault of gate `g` at pin `p`. Constant gates and constant-tied pins are
/// skipped — they carry no enumerated faults.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::Builder;
///
/// // r = OR(x, NOT x) is always 1: r stuck-at-1 changes nothing.
/// let mut b = Builder::new("red");
/// let x = b.input("x");
/// let nx = b.not(x);
/// let r = b.or(x, nx);
/// let w = b.input("w");
/// let y = b.and(w, r);
/// b.output("y", y);
/// let netlist = b.finish();
/// let imp = warpstl_analyze::Implications::compute(&netlist);
/// let unt = warpstl_analyze::Untestability::compute(&netlist, &imp);
/// assert!(unt.output_untestable(r.index(), true));
/// assert!(!unt.output_untestable(r.index(), false));
/// ```
#[derive(Debug, Clone)]
pub struct Untestability {
    /// Per gate: output/stem fault proven untestable, `[sa0, sa1]`.
    out: Vec<[bool; 2]>,
    /// Per gate, per pin: input-pin fault proven untestable, `[sa0, sa1]`.
    pins: Vec<[[bool; 2]; 3]>,
    /// Implication-derived fault equivalences.
    merges: Vec<EquivMerge>,
    /// `redundant-logic` findings: reachable nets with both stem faults
    /// proven untestable.
    diagnostics: Vec<Diagnostic>,
    /// Total site flags proven (outputs and pins, both polarities).
    proven: usize,
}

impl Untestability {
    /// Runs every proof rule over `netlist` using the closure queries of
    /// `imp` (which must come from the same netlist).
    #[must_use]
    pub fn compute(netlist: &Netlist, imp: &Implications) -> Untestability {
        let gates = netlist.gates();
        let n = gates.len();
        let is_const = |idx: usize| matches!(gates[idx].kind, GateKind::Const0 | GateKind::Const1);

        // Reader index: (gate, pin) pairs per net, for the stem rule.
        let mut readers: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n];
        for (i, g) in gates.iter().enumerate() {
            for (p, &pin) in g.inputs().iter().enumerate() {
                if pin.index() < n {
                    readers[pin.index()].push((i as u32, p as u8));
                }
            }
        }
        // Observation reachability, backward from the primary outputs
        // through every edge (DFFs transparent).
        let mut reached = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for &o in netlist.outputs().nets() {
            if o.index() < n && !reached[o.index()] {
                reached[o.index()] = true;
                stack.push(o.index());
            }
        }
        while let Some(i) = stack.pop() {
            for &pin in gates[i].inputs() {
                if pin.index() < n && !reached[pin.index()] {
                    reached[pin.index()] = true;
                    stack.push(pin.index());
                }
            }
        }
        let mut is_output = vec![false; n];
        for &o in netlist.outputs().nets() {
            if o.index() < n {
                is_output[o.index()] = true;
            }
        }

        // The non-controlling side literals propagation through (gate,
        // pin) requires; `None` when the gate cannot propagate a
        // single-pin condition (conservatively no constraint).
        let side_literals = |gate: usize, pin: usize| -> Vec<(usize, bool)> {
            let g = &gates[gate];
            let other = |p: usize| {
                let idx = g.pins[p].index();
                (idx < n).then_some(idx)
            };
            match (g.kind, pin) {
                (GateKind::And | GateKind::Nand, p @ (0 | 1)) => {
                    other(1 - p).map(|o| (o, true)).into_iter().collect()
                }
                (GateKind::Or | GateKind::Nor, p @ (0 | 1)) => {
                    other(1 - p).map(|o| (o, false)).into_iter().collect()
                }
                // A MUX data pin only propagates while selected.
                (GateKind::Mux, 1) => other(0).map(|s| (s, true)).into_iter().collect(),
                (GateKind::Mux, 2) => other(0).map(|s| (s, false)).into_iter().collect(),
                // XOR/XNOR propagate under any side value; BUF/NOT/DFF
                // have no sides; the MUX select pin needs a two-literal
                // condition (a != b) this engine does not model.
                _ => Vec::new(),
            }
        };

        let mut out = vec![[false; 2]; n];
        let mut pins = vec![[[false; 2]; 3]; n];
        let mut proven = 0usize;

        for (i, g) in gates.iter().enumerate() {
            if is_const(i) {
                continue;
            }
            // Output (stem) faults of net i.
            for s in [false, true] {
                let activation = (i, !s);
                let untestable = !reached[i]
                    || imp.is_impossible(i, !s)
                    || (!is_output[i] && readers[i].len() == 1 && {
                        let (rg, rp) = readers[i][0];
                        let mut req = side_literals(rg as usize, rp as usize);
                        req.push(activation);
                        imp.contradicts(&req)
                    });
                if untestable {
                    out[i][usize::from(s)] = true;
                    proven += 1;
                }
            }
            // Input-pin faults of gate i.
            for (p, &pin) in g.inputs().iter().enumerate() {
                let src = pin.index();
                if src >= n || is_const(src) {
                    continue;
                }
                for s in [false, true] {
                    let untestable = !reached[i] || imp.is_impossible(src, !s) || {
                        let mut req = side_literals(i, p);
                        req.push((src, !s));
                        imp.contradicts(&req)
                    };
                    if untestable {
                        pins[i][p][usize::from(s)] = true;
                        proven += 1;
                    }
                }
            }
        }

        // Equivalence merges: a 2-input gate whose other pin is implied
        // constant at the listed value degenerates to BUF (inverted =
        // false) or NOT (inverted = true) of the remaining pin.
        let mut merges = Vec::new();
        for (i, g) in gates.iter().enumerate() {
            let degeneracies: &[(bool, bool)] = match g.kind {
                GateKind::And => &[(true, false)],
                GateKind::Or => &[(false, false)],
                GateKind::Nand => &[(true, true)],
                GateKind::Nor => &[(false, true)],
                GateKind::Xor => &[(false, false), (true, true)],
                GateKind::Xnor => &[(true, false), (false, true)],
                _ => &[],
            };
            for p in 0..2usize {
                let other = g.pins[1 - p].index();
                if other >= n || g.pins[p].index() >= n {
                    continue;
                }
                for &(fixed, inverted) in degeneracies {
                    // `other` is implied constant `fixed` iff the opposite
                    // literal is impossible; skip degenerate nets where
                    // both literals are impossible.
                    if imp.is_impossible(other, !fixed) && !imp.is_impossible(other, fixed) {
                        for s in [false, true] {
                            merges.push(EquivMerge {
                                gate: i,
                                pin: p as u8,
                                pin_polarity: s,
                                out_polarity: s ^ inverted,
                            });
                        }
                    }
                }
            }
            // MUX with an implied-constant select degenerates to the
            // selected data pin.
            if g.kind == GateKind::Mux {
                let sel = g.pins[0].index();
                if sel < n {
                    for (sel_value, data_pin) in [(true, 1u8), (false, 2u8)] {
                        if imp.is_impossible(sel, !sel_value) && !imp.is_impossible(sel, sel_value)
                        {
                            let data = g.pins[data_pin as usize].index();
                            if data < n {
                                for s in [false, true] {
                                    merges.push(EquivMerge {
                                        gate: i,
                                        pin: data_pin,
                                        pin_polarity: s,
                                        out_polarity: s,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // redundant-logic: reachable, non-constant nets with both stem
        // polarities proven untestable. Unreachable gates already carry an
        // `unreachable` warning; re-flagging them here would be noise.
        let mut diagnostics = Vec::new();
        for (i, g) in gates.iter().enumerate() {
            if reached[i] && !is_const(i) && out[i][0] && out[i][1] {
                diagnostics.push(Diagnostic::warning(
                    Rule::RedundantLogic,
                    NetId(i as u32),
                    format!(
                        "gate n{i} ({}) is redundant: both stuck-at faults are \
                         provably untestable",
                        g.kind
                    ),
                ));
            }
        }

        Untestability {
            out,
            pins,
            merges,
            diagnostics,
            proven,
        }
    }

    /// Whether the output (stem) fault of `gate` stuck-at the given value
    /// is proven untestable.
    #[must_use]
    pub fn output_untestable(&self, gate: usize, stuck: bool) -> bool {
        self.out
            .get(gate)
            .is_some_and(|flags| flags[usize::from(stuck)])
    }

    /// Whether the input-pin fault of `gate` at `pin` stuck-at the given
    /// value is proven untestable.
    #[must_use]
    pub fn pin_untestable(&self, gate: usize, pin: usize, stuck: bool) -> bool {
        pin < 3
            && self
                .pins
                .get(gate)
                .is_some_and(|flags| flags[pin][usize::from(stuck)])
    }

    /// Number of site/polarity pairs proven untestable.
    #[must_use]
    pub fn proven_count(&self) -> usize {
        self.proven
    }

    /// The implication-derived fault equivalences.
    #[must_use]
    pub fn merges(&self) -> &[EquivMerge] {
        &self.merges
    }

    /// The `redundant-logic` findings (warning severity).
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::Builder;

    /// `r = OR(x, NOT x)` (always 1) gating `y = AND(w, r)`.
    fn tautology_netlist() -> (Netlist, NetId, NetId) {
        let mut b = Builder::new("taut");
        let x = b.input("x");
        let nx = b.not(x);
        let r = b.or(x, nx);
        let w = b.input("w");
        let y = b.and(w, r);
        b.output("y", y);
        (b.finish(), r, y)
    }

    #[test]
    fn activation_rule_proves_stuck_at_constant_untestable() {
        let (netlist, r, _) = tautology_netlist();
        let imp = Implications::compute(&netlist);
        let unt = Untestability::compute(&netlist, &imp);
        // r is always 1: stuck-at-1 can never be activated...
        assert!(unt.output_untestable(r.index(), true));
        // ...but stuck-at-0 forces y to 0 with w = 1 — testable.
        assert!(!unt.output_untestable(r.index(), false));
        assert!(unt.proven_count() > 0);
    }

    #[test]
    fn degenerate_and_produces_equivalence_merges() {
        let (netlist, _, y) = tautology_netlist();
        let imp = Implications::compute(&netlist);
        let unt = Untestability::compute(&netlist, &imp);
        // AND(w, r) with r implied 1 degenerates to BUF(w): pin-0 faults
        // merge with the output faults at the same polarity.
        let m: Vec<_> = unt
            .merges()
            .iter()
            .filter(|m| m.gate == y.index() && m.pin == 0)
            .collect();
        assert_eq!(m.len(), 2, "{:?}", unt.merges());
        assert!(m.iter().all(|m| m.pin_polarity == m.out_polarity));
    }

    #[test]
    fn deselected_mux_input_is_redundant_logic() {
        // s = OR(a, NOT a) is always 1, so MUX(s, w, g2) never selects g2:
        // g2's stem faults cannot propagate.
        let mut b = Builder::new("mux_red");
        let a = b.input("a");
        let na = b.not(a);
        let s = b.or(a, na);
        let c = b.input("c");
        let d = b.input("d");
        let g2 = b.and(c, d);
        let w = b.input("w");
        let m = b.mux(s, w, g2);
        b.output("m", m);
        let netlist = b.finish();
        let imp = Implications::compute(&netlist);
        let unt = Untestability::compute(&netlist, &imp);
        assert!(unt.output_untestable(g2.index(), false));
        assert!(unt.output_untestable(g2.index(), true));
        assert!(unt.pin_untestable(m.index(), 2, false));
        assert!(unt.pin_untestable(m.index(), 2, true));
        // The selected path stays testable.
        assert!(!unt.pin_untestable(m.index(), 1, false));
        let redundant: Vec<_> = unt.diagnostics().iter().filter_map(|d| d.net).collect();
        assert!(redundant.contains(&g2), "{:?}", unt.diagnostics());
        // The select degeneracy also merges the selected pin's faults.
        assert!(unt
            .merges()
            .iter()
            .any(|e| e.gate == m.index() && e.pin == 1));
    }

    #[test]
    fn healthy_logic_is_left_alone() {
        let mut b = Builder::new("clean");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor(x, y);
        b.output("z", z);
        let netlist = b.finish();
        let imp = Implications::compute(&netlist);
        let unt = Untestability::compute(&netlist, &imp);
        assert_eq!(unt.proven_count(), 0);
        assert!(unt.merges().is_empty());
        assert!(unt.diagnostics().is_empty());
    }
}
