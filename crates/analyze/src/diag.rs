//! Diagnostics: lint rules, severities, and the analysis report.
//!
//! The shapes deliberately mirror `warpstl-verify`'s diagnostics so the
//! two gates of the pipeline (netlist analysis before fault simulation,
//! program verification after reduction) read the same way: a small rule
//! enum with stable kebab-case names, per-rule count arrays, and a
//! hand-rolled JSON serialization (the build environment has no serde).

use std::fmt;

use warpstl_netlist::NetId;

/// The analyzer's lint rule set. Each diagnostic belongs to exactly one
/// rule; [`AnalyzeStats`] counts diagnostics per rule so reports can show
/// where a netlist is malformed at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A cycle through combinational gates (no flip-flop on the path).
    /// Logic values would oscillate or latch; simulation is undefined.
    CombLoop,
    /// A gate pin (or output port) references a net no gate drives.
    UndrivenNet,
    /// A non-constant gate whose output is provably constant because of
    /// constant gates upstream — dead logic that can never toggle.
    DeadLogic,
    /// A gate from which no primary output is reachable (including
    /// floating nets nothing reads); its faults are untestable.
    Unreachable,
    /// A reachable gate whose stem faults are all provably untestable
    /// (implication-based proof): the logic it computes never influences
    /// any output under any input.
    RedundantLogic,
}

impl Rule {
    /// The number of rules.
    pub const COUNT: usize = 5;

    /// All rules, in report order.
    pub const ALL: [Rule; Rule::COUNT] = [
        Rule::CombLoop,
        Rule::UndrivenNet,
        Rule::DeadLogic,
        Rule::Unreachable,
        Rule::RedundantLogic,
    ];

    /// The stable kebab-case rule name (used in human and JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::CombLoop => "comb-loop",
            Rule::UndrivenNet => "undriven-net",
            Rule::DeadLogic => "dead-logic",
            Rule::Unreachable => "unreachable",
            Rule::RedundantLogic => "redundant-logic",
        }
    }

    /// The rule's index into [`AnalyzeStats`] arrays.
    #[must_use]
    pub fn index(self) -> usize {
        Rule::ALL.iter().position(|&r| r == self).expect("listed")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How severe a diagnostic is. Errors gate the compaction pipeline (and
/// give `warpstl analyze` a nonzero exit); warnings are reported but do
/// not block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Reported, but does not gate the pipeline.
    Warning,
    /// Gates the pipeline: the netlist is considered malformed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Error or warning.
    pub severity: Severity,
    /// The net (gate) the finding anchors to, when there is one.
    pub net: Option<NetId>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error diagnostic at `net`.
    #[must_use]
    pub fn error(rule: Rule, net: NetId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            net: Some(net),
            message: message.into(),
        }
    }

    /// A warning diagnostic at `net`.
    #[must_use]
    pub fn warning(rule: Rule, net: NetId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            net: Some(net),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(net) = self.net {
            write!(f, " {net}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Per-rule diagnostic counts — the structured summary recorded in
/// `CompactionReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Errors per rule, indexed by [`Rule::index`].
    pub errors: [usize; Rule::COUNT],
    /// Warnings per rule, indexed by [`Rule::index`].
    pub warnings: [usize; Rule::COUNT],
}

impl AnalyzeStats {
    /// Total errors across all rules.
    #[must_use]
    pub fn total_errors(&self) -> usize {
        self.errors.iter().sum()
    }

    /// Total warnings across all rules.
    #[must_use]
    pub fn total_warnings(&self) -> usize {
        self.warnings.iter().sum()
    }

    /// Element-wise sum (for combined report rows).
    #[must_use]
    pub fn merged(&self, other: &AnalyzeStats) -> AnalyzeStats {
        let mut out = *self;
        for i in 0..Rule::COUNT {
            out.errors[i] += other.errors[i];
            out.warnings[i] += other.warnings[i];
        }
        out
    }
}

impl fmt::Display for AnalyzeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for rule in Rule::ALL {
            let i = rule.index();
            write!(f, "{sep}{rule} {}/{}", self.errors[i], self.warnings[i])?;
            sep = " | ";
        }
        Ok(())
    }
}

/// Implication-engine counts carried by the report. All zero when the
/// implication pass has not run (a bare [`lint`](crate::lint) call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImplicationStats {
    /// Directed implication edges (contrapositives included).
    pub edges: usize,
    /// Literals proven impossible.
    pub impossible: usize,
    /// Fault sites (site/polarity pairs) proven untestable.
    pub untestable: usize,
    /// Implication-derived fault equivalences.
    pub merges: usize,
}

/// The analyzer's findings for one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeReport {
    /// The analyzed netlist's name.
    pub name: String,
    /// The analyzed netlist's gate count.
    pub gates: usize,
    /// Every finding, in rule order then net order.
    pub diagnostics: Vec<Diagnostic>,
    /// Implication-engine counts for the module.
    pub implications: ImplicationStats,
}

impl AnalyzeReport {
    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the netlist passed (no errors; warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// The per-rule counts.
    #[must_use]
    pub fn stats(&self) -> AnalyzeStats {
        let mut stats = AnalyzeStats::default();
        for d in &self.diagnostics {
            let i = d.rule.index();
            match d.severity {
                Severity::Error => stats.errors[i] += 1,
                Severity::Warning => stats.warnings[i] += 1,
            }
        }
        stats
    }

    /// Serializes the report as a single JSON object (hand-rolled: the
    /// build environment has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"netlist\":\"{}\",", escape_json(&self.name)));
        out.push_str(&format!("\"gates\":{},", self.gates));
        out.push_str(&format!("\"errors\":{},", self.error_count()));
        out.push_str(&format!("\"warnings\":{},", self.warning_count()));
        out.push_str(&format!(
            "\"implication_edges\":{},",
            self.implications.edges
        ));
        out.push_str(&format!(
            "\"impossible_literals\":{},",
            self.implications.impossible
        ));
        out.push_str(&format!("\"untestable\":{},", self.implications.untestable));
        out.push_str(&format!("\"equiv_merges\":{},", self.implications.merges));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"net\":{},\"message\":\"{}\"}}",
                d.rule,
                d.severity,
                d.net
                    .map_or_else(|| "null".to_string(), |n| n.index().to_string()),
                escape_json(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{}: {} error(s), {} warning(s) over {} gate(s)",
            self.name,
            self.error_count(),
            self.warning_count(),
            self.gates
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AnalyzeReport {
        AnalyzeReport {
            name: "T".into(),
            gates: 9,
            diagnostics: vec![
                Diagnostic::error(Rule::CombLoop, NetId(3), "cycle n3 -> n4 -> n3"),
                Diagnostic::warning(Rule::DeadLogic, NetId(5), "constant 0"),
            ],
            implications: ImplicationStats {
                edges: 12,
                impossible: 1,
                untestable: 2,
                merges: 0,
            },
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = report();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        let stats = r.stats();
        assert_eq!(stats.errors[Rule::CombLoop.index()], 1);
        assert_eq!(stats.warnings[Rule::DeadLogic.index()], 1);
        assert_eq!(stats.total_errors(), 1);
        assert_eq!(stats.total_warnings(), 1);
    }

    #[test]
    fn stats_merge_elementwise() {
        let a = report().stats();
        let b = a.merged(&a);
        assert_eq!(b.total_errors(), 2);
        assert_eq!(b.total_warnings(), 2);
    }

    #[test]
    fn json_is_well_formed() {
        let j = report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"comb-loop\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"net\":3"));
        assert!(j.contains("\"untestable\":2"));
        assert!(j.contains("\"implication_edges\":12"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn display_names_rule_and_severity() {
        let d = Diagnostic::error(Rule::UndrivenNet, NetId(7), "pin floats");
        assert_eq!(d.to_string(), "error[undriven-net] n7: pin floats");
        let s = report().to_string();
        assert!(s.contains("1 error(s)"));
    }

    #[test]
    fn rule_indices_are_stable() {
        for (i, rule) in Rule::ALL.iter().enumerate() {
            assert_eq!(rule.index(), i);
        }
    }
}
