//! FIRE-style static implication analysis over (net, value) literals.
//!
//! Every net `n` contributes two *literals*: `n = 0` and `n = 1`. Gate
//! semantics yield *direct* implications between single literals — for
//! `y = AND(a, b)`, `a = 0` forces `y = 0`, and contrapositively `y = 1`
//! forces `a = 1`. [`Implications::compute`] collects every such edge
//! (the direct relation is closed under contraposition by construction:
//! each rule is inserted together with its contrapositive) and answers
//! closure queries by breadth-first search, which realises the transitive
//! closure — the "static learning" step — without materialising the
//! quadratic closure matrix.
//!
//! From the closure the engine derives **impossible literals**: a literal
//! whose closure contains both polarities of some net, or the opposite
//! polarity of a constant gate, can hold under *no* input assignment.
//! Because reachability is transitive, a single pass suffices: if literal
//! `M` is impossible via a contradiction in `closure(M)` and `M` is in
//! `closure(L)`, that same contradiction already sits in `closure(L)`.
//!
//! Soundness is the only contract (completeness is not): every implication
//! edge follows from a single gate's truth table, so any input assignment
//! satisfying a literal satisfies its whole closure, and an impossible
//! literal genuinely never occurs. XOR/XNOR and MUX gates contribute no
//! single-literal implications (no single pin value determines the
//! output), and DFF state is treated as a free variable — both
//! over-approximations of the satisfiable assignments, which is exactly
//! the safe direction for the untestability proofs built on top (see
//! [`Untestability`](crate::Untestability)).

use warpstl_netlist::{GateKind, Netlist};

/// The literal index of `net = value`: bit 0 holds the value, the upper
/// bits the driving gate's index.
#[inline]
#[must_use]
pub fn literal(net: usize, value: bool) -> usize {
    net * 2 + usize::from(value)
}

/// Splits a literal index back into `(net, value)`.
#[inline]
#[must_use]
pub fn literal_parts(lit: usize) -> (usize, bool) {
    (lit / 2, lit % 2 == 1)
}

/// The static implication graph of one netlist: direct single-literal
/// implications (contraposition-closed) plus the derived impossible-literal
/// bitmap.
///
/// # Examples
///
/// ```
/// use warpstl_netlist::Builder;
///
/// // y = OR(x, NOT x) is constant 1, so the literal y = 0 is impossible.
/// let mut b = Builder::new("taut");
/// let x = b.input("x");
/// let nx = b.not(x);
/// let y = b.or(x, nx);
/// b.output("y", y);
/// let imp = warpstl_analyze::Implications::compute(&b.finish());
/// assert!(imp.is_impossible(y.index(), false));
/// assert!(!imp.is_impossible(y.index(), true));
/// ```
#[derive(Debug, Clone)]
pub struct Implications {
    /// Direct implication adjacency, indexed by [`literal`].
    direct: Vec<Vec<u32>>,
    /// Literals that cannot hold under any input assignment.
    impossible: Vec<bool>,
    /// Total directed edges in `direct`.
    edges: usize,
}

impl Implications {
    /// Builds the implication graph for `netlist` and derives the
    /// impossible-literal set.
    ///
    /// Robust against malformed (fixture) netlists: dangling pin
    /// references contribute no edges, and cycles are harmless to the
    /// BFS closure.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Implications {
        let gates = netlist.gates();
        let n = gates.len();
        let mut direct: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        let mut edges = 0usize;
        // Inserts `from -> to` together with its contrapositive
        // `!to -> !from`; every gate rule below states one direction only.
        let mut imply = |direct: &mut Vec<Vec<u32>>, from: usize, to: usize| {
            direct[from].push(to as u32);
            direct[to ^ 1].push((from ^ 1) as u32);
            edges += 2;
        };
        for (i, g) in gates.iter().enumerate() {
            // A dangling pin (fixture netlists) yields no edges.
            let pin = |p: usize| {
                let idx = g.pins[p].index();
                (idx < n).then_some(idx)
            };
            let y = i;
            match g.kind {
                // No structure to exploit: inputs and constants have no
                // pins (constants instead seed the impossible set), XOR/
                // XNOR/MUX outputs are not determined by any single pin,
                // and DFF state is a free variable across patterns.
                GateKind::Input
                | GateKind::Const0
                | GateKind::Const1
                | GateKind::Xor
                | GateKind::Xnor
                | GateKind::Mux
                | GateKind::Dff => {}
                GateKind::Buf => {
                    if let Some(a) = pin(0) {
                        imply(&mut direct, literal(a, false), literal(y, false));
                        imply(&mut direct, literal(a, true), literal(y, true));
                    }
                }
                GateKind::Not => {
                    if let Some(a) = pin(0) {
                        imply(&mut direct, literal(a, false), literal(y, true));
                        imply(&mut direct, literal(a, true), literal(y, false));
                    }
                }
                GateKind::And => {
                    for p in 0..2 {
                        if let Some(a) = pin(p) {
                            imply(&mut direct, literal(a, false), literal(y, false));
                        }
                    }
                }
                GateKind::Or => {
                    for p in 0..2 {
                        if let Some(a) = pin(p) {
                            imply(&mut direct, literal(a, true), literal(y, true));
                        }
                    }
                }
                GateKind::Nand => {
                    for p in 0..2 {
                        if let Some(a) = pin(p) {
                            imply(&mut direct, literal(a, false), literal(y, true));
                        }
                    }
                }
                GateKind::Nor => {
                    for p in 0..2 {
                        if let Some(a) = pin(p) {
                            imply(&mut direct, literal(a, true), literal(y, false));
                        }
                    }
                }
            }
        }

        // Constants seed the impossible set: a CONST0 net is never 1.
        let mut seed = vec![false; 2 * n];
        for (i, g) in gates.iter().enumerate() {
            match g.kind {
                GateKind::Const0 => seed[literal(i, true)] = true,
                GateKind::Const1 => seed[literal(i, false)] = true,
                _ => {}
            }
        }

        // One BFS per literal: impossible iff the closure reaches a seed
        // literal or both polarities of some net. Transitivity of
        // reachability makes a single pass complete for these two rules.
        let mut impossible = vec![false; 2 * n];
        let mut visited = vec![false; 2 * n];
        let mut queue: Vec<u32> = Vec::new();
        for (l, slot) in impossible.iter_mut().enumerate() {
            let contradiction = closure_scan(&direct, &seed, l, &mut visited, &mut queue);
            for &v in &queue {
                visited[v as usize] = false;
            }
            *slot = contradiction;
        }

        Implications {
            direct,
            impossible,
            edges,
        }
    }

    /// Whether `net = value` can hold under no input assignment.
    #[must_use]
    pub fn is_impossible(&self, net: usize, value: bool) -> bool {
        self.impossible
            .get(literal(net, value))
            .copied()
            .unwrap_or(false)
    }

    /// Whether the conjunction of `literals` is statically contradictory:
    /// the union of their closures contains an impossible literal or both
    /// polarities of some net. Sound for untestability reasoning — all
    /// the literals of an activation/propagation condition must hold in
    /// the same assignment.
    #[must_use]
    pub fn contradicts(&self, literals: &[(usize, bool)]) -> bool {
        let n_lits = self.direct.len();
        let mut visited = vec![false; n_lits];
        let mut queue: Vec<u32> = Vec::new();
        for &(net, value) in literals {
            let l = literal(net, value);
            if l >= n_lits {
                continue;
            }
            if self.impossible[l] {
                return true;
            }
            if !visited[l] {
                visited[l] = true;
                queue.push(l as u32);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head] as usize;
            head += 1;
            if visited[l ^ 1] || self.impossible[l] {
                return true;
            }
            for &m in &self.direct[l] {
                if !visited[m as usize] {
                    visited[m as usize] = true;
                    queue.push(m);
                }
            }
        }
        false
    }

    /// The transitive closure of `net = value` as `(net, value)` pairs
    /// (including the seed), in BFS order. Every returned literal holds in
    /// *any* input assignment where the seed holds.
    #[must_use]
    pub fn closure(&self, net: usize, value: bool) -> Vec<(usize, bool)> {
        let n_lits = self.direct.len();
        let seed = literal(net, value);
        if seed >= n_lits {
            return Vec::new();
        }
        let mut visited = vec![false; n_lits];
        let mut queue: Vec<u32> = vec![seed as u32];
        visited[seed] = true;
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head] as usize;
            head += 1;
            for &m in &self.direct[l] {
                if !visited[m as usize] {
                    visited[m as usize] = true;
                    queue.push(m);
                }
            }
        }
        queue.iter().map(|&l| literal_parts(l as usize)).collect()
    }

    /// Number of directed implication edges (contrapositives included).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of literals proven impossible.
    #[must_use]
    pub fn impossible_count(&self) -> usize {
        self.impossible.iter().filter(|&&b| b).count()
    }

    /// Number of literals (two per net).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.direct.len()
    }
}

/// BFS from `seed` over `direct`; returns whether the closure contains a
/// contradiction (a seed-impossible literal or both polarities of a net).
/// `visited` must be all-false on entry; the caller clears it via `queue`,
/// which holds every visited literal on return.
fn closure_scan(
    direct: &[Vec<u32>],
    seed_impossible: &[bool],
    seed: usize,
    visited: &mut [bool],
    queue: &mut Vec<u32>,
) -> bool {
    queue.clear();
    queue.push(seed as u32);
    visited[seed] = true;
    let mut contradiction = false;
    let mut head = 0;
    while head < queue.len() {
        let l = queue[head] as usize;
        head += 1;
        if seed_impossible[l] || visited[l ^ 1] {
            contradiction = true;
            break;
        }
        for &m in &direct[l] {
            if !visited[m as usize] {
                visited[m as usize] = true;
                queue.push(m);
            }
        }
    }
    contradiction
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpstl_netlist::{fixtures, Builder};

    #[test]
    fn and_gate_implications_close_transitively() {
        // y = AND(a, b); z = AND(y, c). a=0 -> y=0 -> z=0.
        let mut b = Builder::new("chain");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let y = b.and(a, bb);
        let z = b.and(y, c);
        b.output("z", z);
        let imp = Implications::compute(&b.finish());
        let cl = imp.closure(a.index(), false);
        assert!(cl.contains(&(y.index(), false)));
        assert!(cl.contains(&(z.index(), false)));
        // Contrapositive: z=1 -> y=1 -> a=1 and b=1 and c=1.
        let cl = imp.closure(z.index(), true);
        for net in [y, a, bb, c] {
            assert!(cl.contains(&(net.index(), true)), "missing {net}=1");
        }
        assert_eq!(imp.impossible_count(), 0);
    }

    #[test]
    fn tautology_output_literal_is_impossible() {
        let mut b = Builder::new("taut");
        let x = b.input("x");
        let nx = b.not(x);
        let y = b.or(x, nx);
        b.output("y", y);
        let imp = Implications::compute(&b.finish());
        assert!(imp.is_impossible(y.index(), false));
        assert!(!imp.is_impossible(y.index(), true));
        assert!(!imp.is_impossible(x.index(), false));
        // The impossible literal also poisons any conjunction it joins.
        assert!(imp.contradicts(&[(y.index(), false), (x.index(), true)]));
        assert!(!imp.contradicts(&[(y.index(), true), (x.index(), true)]));
    }

    #[test]
    fn constant_gates_seed_impossibility() {
        let mut b = Builder::new("const");
        let x = b.input("x");
        let k1 = b.const1();
        let y = b.and(x, k1); // y follows x
        b.output("y", y);
        let imp = Implications::compute(&b.finish());
        assert!(imp.is_impossible(k1.index(), false));
        assert!(!imp.is_impossible(y.index(), false));
        assert!(!imp.is_impossible(y.index(), true));
    }

    #[test]
    fn contradictory_pair_detected_across_literals() {
        // y = AND(a, b): {y=1, a=0} is contradictory even though neither
        // literal is impossible alone.
        let mut b = Builder::new("pair");
        let a = b.input("a");
        let bb = b.input("b");
        let y = b.and(a, bb);
        b.output("y", y);
        let imp = Implications::compute(&b.finish());
        assert_eq!(imp.impossible_count(), 0);
        assert!(imp.contradicts(&[(y.index(), true), (a.index(), false)]));
        assert!(!imp.contradicts(&[(y.index(), false), (a.index(), false)]));
    }

    #[test]
    fn fixture_netlists_are_handled() {
        // Cycles and dangling pins must not panic or hang.
        let imp = Implications::compute(&fixtures::combinational_loop());
        assert!(imp.literal_count() > 0);
        let imp = Implications::compute(&fixtures::undriven());
        assert_eq!(imp.literal_count(), 6);
    }

    #[test]
    fn literal_round_trip() {
        for net in [0usize, 1, 17] {
            for value in [false, true] {
                assert_eq!(literal_parts(literal(net, value)), (net, value));
            }
        }
    }
}
