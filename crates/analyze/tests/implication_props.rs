//! Hand-rolled property tests for the static implication engine: random
//! small netlists (few enough inputs that the whole 2^n input space is
//! enumerable) are checked against an independent exhaustive simulator.
//!
//! No property-testing crate is involved on purpose — the generator is a
//! seeded xorshift walk, so every run replays the exact same cases and a
//! failure message pins the offending seed.
//!
//! Properties:
//!
//! - **Impossibility is sound**: a literal the engine marks impossible is
//!   never produced by any input vector.
//! - **Closure is sound**: every literal in `closure(a, v)` holds in every
//!   fault-free simulation where net `a` carries `v`.
//! - **Contradiction is sound**: the literal set realized by an actual
//!   simulation is never flagged as contradictory.
//! - **Untestability is sound**: a proven fault changes no primary output
//!   under any input vector (exhaustive fault injection).
//! - **Equivalence merges are sound**: the merged pin fault and the kept
//!   output fault are detected by exactly the same input vectors.

use warpstl_analyze::{Implications, Untestability};
use warpstl_netlist::{Builder, GateKind, NetId, Netlist};

/// The classic xorshift64 generator — deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A single injected stuck-at fault for the exhaustive simulator.
#[derive(Clone, Copy)]
enum Inject {
    Out(usize, bool),
    Pin(usize, usize, bool),
}

/// Builds a random combinational netlist with at most 6 inputs. Constants
/// appear as operands now and then (exercising the activation-impossible
/// rule) and only a few nets become outputs, so unobservable logic is
/// common (exercising the observability rule).
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = XorShift(seed | 1);
    let mut b = Builder::new("prop");
    let n_inputs = 2 + rng.below(5);
    let mut nets: Vec<NetId> = (0..n_inputs).map(|i| b.input(&format!("i{i}"))).collect();
    if rng.below(2) == 0 {
        nets.push(b.const0());
    }
    if rng.below(2) == 0 {
        nets.push(b.const1());
    }
    let n_gates = 4 + rng.below(21);
    for _ in 0..n_gates {
        let a = nets[rng.below(nets.len())];
        let c = nets[rng.below(nets.len())];
        let d = nets[rng.below(nets.len())];
        let out = match rng.below(9) {
            0 => b.buf(a),
            1 => b.not(a),
            2 => b.and(a, c),
            3 => b.or(a, c),
            4 => b.nand(a, c),
            5 => b.nor(a, c),
            6 => b.xor(a, c),
            7 => b.xnor(a, c),
            _ => b.mux(a, c, d),
        };
        nets.push(out);
    }
    let n_outputs = 1 + rng.below(3);
    for i in 0..n_outputs {
        let pick = nets[nets.len() - 1 - rng.below(nets.len().min(6))];
        b.output(&format!("o{i}"), pick);
    }
    b.finish()
}

/// Exhaustive two-valued evaluation of one input vector (bit `p` of
/// `vector` feeds flat input position `p`), optionally with one injected
/// fault; returns every net's value.
fn evaluate(netlist: &Netlist, vector: u64, fault: Option<Inject>) -> Vec<bool> {
    let gates = netlist.gates();
    let mut pi_pos = vec![usize::MAX; gates.len()];
    for (pos, &net) in netlist.inputs().nets().iter().enumerate() {
        pi_pos[net.index()] = pos;
    }
    let mut val = vec![false; gates.len()];
    for (i, g) in gates.iter().enumerate() {
        let pin = |p: usize| {
            let raw = val[g.pins[p].index()];
            match fault {
                Some(Inject::Pin(fg, fp, stuck)) if fg == i && fp == p => stuck,
                _ => raw,
            }
        };
        let mut v = match g.kind {
            GateKind::Input => (vector >> pi_pos[i]) & 1 == 1,
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf | GateKind::Dff => pin(0),
            GateKind::Not => !pin(0),
            GateKind::And => pin(0) & pin(1),
            GateKind::Or => pin(0) | pin(1),
            GateKind::Nand => !(pin(0) & pin(1)),
            GateKind::Nor => !(pin(0) | pin(1)),
            GateKind::Xor => pin(0) ^ pin(1),
            GateKind::Xnor => !(pin(0) ^ pin(1)),
            GateKind::Mux => {
                if pin(0) {
                    pin(1)
                } else {
                    pin(2)
                }
            }
        };
        if let Some(Inject::Out(fg, stuck)) = fault {
            if fg == i {
                v = stuck;
            }
        }
        val[i] = v;
    }
    val
}

/// True when `fault` flips at least one primary output for `vector`.
fn detects(netlist: &Netlist, vector: u64, good: &[bool], fault: Inject) -> bool {
    let faulty = evaluate(netlist, vector, Some(fault));
    netlist
        .outputs()
        .nets()
        .iter()
        .any(|&o| good[o.index()] != faulty[o.index()])
}

#[test]
fn implication_closure_is_sound_on_random_netlists() {
    let mut total_edges_checked = 0usize;
    let mut total_impossible = 0usize;
    for seed in 1..=120u64 {
        let netlist = random_netlist(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let imp = Implications::compute(&netlist);
        let n = netlist.gates().len();
        let vectors = 1u64 << netlist.inputs().width();
        let sims: Vec<Vec<bool>> = (0..vectors).map(|v| evaluate(&netlist, v, None)).collect();

        // Impossibility: a marked literal is never realized.
        for net in 0..n {
            for value in [false, true] {
                if imp.is_impossible(net, value) {
                    total_impossible += 1;
                    assert!(
                        sims.iter().all(|s| s[net] != value),
                        "seed {seed}: impossible literal n{net}={value} realized"
                    );
                }
            }
        }

        // Closure: implied literals hold whenever the antecedent does.
        for net in 0..n {
            for value in [false, true] {
                for (b, vb) in imp.closure(net, value) {
                    total_edges_checked += 1;
                    for s in &sims {
                        if s[net] == value {
                            assert_eq!(
                                s[b], vb,
                                "seed {seed}: n{net}={value} => n{b}={vb} violated"
                            );
                        }
                    }
                }
            }
        }

        // Contradiction: a realized assignment is never contradictory.
        for s in &sims {
            let lits: Vec<(usize, bool)> = s.iter().copied().enumerate().collect();
            assert!(
                !imp.contradicts(&lits),
                "seed {seed}: realized assignment flagged contradictory"
            );
        }
    }
    assert!(
        total_edges_checked > 1000,
        "generator too tame: {total_edges_checked} edges"
    );
    assert!(
        total_impossible > 10,
        "generator too tame: {total_impossible} impossible"
    );
}

#[test]
fn untestability_proofs_are_sound_on_random_netlists() {
    let mut total_proven = 0usize;
    let mut total_merges = 0usize;
    for seed in 1..=120u64 {
        let netlist = random_netlist(seed.wrapping_mul(0xd134_2543_de82_ef95));
        let imp = Implications::compute(&netlist);
        let unt = Untestability::compute(&netlist, &imp);
        let vectors = 1u64 << netlist.inputs().width();
        let sims: Vec<Vec<bool>> = (0..vectors).map(|v| evaluate(&netlist, v, None)).collect();

        // A proven fault is silent on every primary output, everywhere.
        for (i, g) in netlist.gates().iter().enumerate() {
            for stuck in [false, true] {
                if unt.output_untestable(i, stuck) {
                    total_proven += 1;
                    for v in 0..vectors {
                        assert!(
                            !detects(&netlist, v, &sims[v as usize], Inject::Out(i, stuck)),
                            "seed {seed}: proven n{i}/SA{} detected by {v:#b}",
                            u8::from(stuck)
                        );
                    }
                }
                for p in 0..g.kind.arity() {
                    if unt.pin_untestable(i, p, stuck) {
                        total_proven += 1;
                        for v in 0..vectors {
                            assert!(
                                !detects(&netlist, v, &sims[v as usize], Inject::Pin(i, p, stuck)),
                                "seed {seed}: proven n{i}.{p}/SA{} detected by {v:#b}",
                                u8::from(stuck)
                            );
                        }
                    }
                }
            }
        }

        // A merged pin fault is detected by exactly the vectors that
        // detect its kept output fault.
        for m in unt.merges() {
            total_merges += 1;
            for v in 0..vectors {
                let good = &sims[v as usize];
                let pin = detects(
                    &netlist,
                    v,
                    good,
                    Inject::Pin(m.gate, m.pin as usize, m.pin_polarity),
                );
                let out = detects(&netlist, v, good, Inject::Out(m.gate, m.out_polarity));
                assert_eq!(
                    pin,
                    out,
                    "seed {seed}: merge n{}.{}/SA{} vs n{}/SA{} diverges on {v:#b}",
                    m.gate,
                    m.pin,
                    u8::from(m.pin_polarity),
                    m.gate,
                    u8::from(m.out_polarity)
                );
            }
        }
    }
    assert!(
        total_proven > 100,
        "generator too tame: {total_proven} proofs"
    );
    assert!(
        total_merges > 20,
        "generator too tame: {total_merges} merges"
    );
}
