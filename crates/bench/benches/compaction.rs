//! Criterion benches for the compaction pipeline and its substrates.
//!
//! One bench group per paper artifact:
//!
//! - `table1`: PTP feature evaluation on the Decoder Unit programs
//!   (generation + trace + standalone FC);
//! - `table2`: the DU compaction flow (IMM → MEM → CNTRL, shared list);
//! - `table3`: the SFU compaction flow (reverse-order patterns);
//! - `method_vs_baseline`: proposed single-fault-simulation compaction
//!   versus the iterative prior-art baseline on the same PTP;
//! - `substrates`: the building blocks (logic sim, fault sim, PODEM).
//!
//! The SP-core experiments (8 instances × 13 k faults each) cost minutes
//! per evaluation on one core and are exercised by the `table3` *binary*
//! rather than timed here; these benches use the Decoder Unit and the SFU,
//! whose costs fit Criterion's sampling budget.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use warpstl_bench::{compact_group, Scale};
use warpstl_core::baseline::IterativeCompactor;
use warpstl_core::Compactor;
use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{simulate_seq, PatternSeq};
use warpstl_programs::generators::{
    generate_cntrl, generate_imm, generate_mem, generate_sfu_imm, ImmConfig,
};
use warpstl_programs::Ptp;

/// Bench scale: small fixed divisor so runs finish in seconds.
fn bench_scale() -> Scale {
    Scale::new(128)
}

/// The Decoder-Unit PTP group at bench scale.
fn du_group() -> Vec<Ptp> {
    let scale = bench_scale();
    vec![
        generate_imm(&scale.imm()),
        generate_mem(&scale.mem()),
        generate_cntrl(&scale.cntrl()),
    ]
}

fn bench_table1(c: &mut Criterion) {
    let du = du_group();
    let compactor = Compactor::default();
    let ctx = compactor.context_for(ModuleKind::DecoderUnit);
    c.bench_function("table1/du_features", |b| {
        b.iter(|| {
            du.iter()
                .map(|ptp| compactor.features(ptp, &ctx).expect("runs"))
                .collect::<Vec<_>>()
        });
    });
}

fn bench_table2(c: &mut Criterion) {
    let du = du_group();
    let compactor = Compactor::default();
    c.bench_function("table2/du_group", |b| {
        b.iter(|| compact_group(&du, ModuleKind::DecoderUnit, &compactor));
    });
}

fn bench_table3(c: &mut Criterion) {
    let scale = bench_scale();
    let sfu = vec![generate_sfu_imm(&scale.sfu_imm())];
    let sfu_compactor = Compactor {
        reverse_patterns: true,
        ..Compactor::default()
    };
    c.bench_function("table3/sfu_group", |b| {
        b.iter(|| compact_group(&sfu, ModuleKind::Sfu, &sfu_compactor));
    });
}

fn bench_method_vs_baseline(c: &mut Criterion) {
    let ptp = generate_imm(&ImmConfig {
        sb_count: 8,
        ..ImmConfig::default()
    });
    let compactor = Compactor::default();
    let baseline = IterativeCompactor::default();
    c.bench_function("method_vs_baseline/proposed", |b| {
        b.iter_batched(
            || compactor.context_for(ModuleKind::DecoderUnit),
            |mut ctx| compactor.compact(&ptp, &mut ctx).expect("compacts"),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("method_vs_baseline/iterative", |b| {
        b.iter_batched(
            || compactor.context_for(ModuleKind::DecoderUnit),
            |ctx| baseline.compact(&ptp, &ctx).expect("compacts"),
            BatchSize::SmallInput,
        );
    });
}

fn bench_substrates(c: &mut Criterion) {
    // Gate-level logic simulation of the Decoder Unit over 1 k patterns.
    let du = ModuleKind::DecoderUnit.build();
    let width = du.inputs().width();
    let mut pats = PatternSeq::new(width);
    let mut x = 0x1234_5678_9abc_def0u64;
    for cc in 0..1000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let bits: Vec<bool> = (0..width).map(|b| (x >> (b % 64)) & 1 == 1).collect();
        pats.push_bits(cc, &bits);
    }
    c.bench_function("substrates/logic_sim_du_1k", |b| {
        b.iter(|| simulate_seq(&du, &pats));
    });

    // Fault simulation of the same patterns against the full DU list.
    let universe = FaultUniverse::enumerate(&du);
    c.bench_function("substrates/fault_sim_du_1k", |b| {
        b.iter_batched(
            || FaultList::new(&universe),
            |mut list| fault_simulate(&du, &pats, &mut list, &FaultSimConfig::default()),
            BatchSize::SmallInput,
        );
    });

    // PODEM on the SP core (a handful of targets).
    let sp = ModuleKind::SpCore.build();
    let sp_universe = FaultUniverse::enumerate(&sp);
    let podem = warpstl_atpg::Podem::new(&sp).with_backtrack_limit(50);
    let targets: Vec<_> = sp_universe.faults().iter().step_by(1997).copied().collect();
    c.bench_function("substrates/podem_sp_sample", |b| {
        b.iter(|| {
            for &f in &targets {
                let _ = podem.generate(f);
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_method_vs_baseline, bench_substrates
}
criterion_main!(benches);
