//! Criterion benches for the parallel fault-simulation engine.
//!
//! Compares the serial reference (`fault_simulate_reference`, no cone
//! pruning) against the cone-pruned engine (`fault_simulate`) at several
//! thread counts, on a combinational module and on the SFU datapath.
//! Non-drop mode is used so every run processes the same work regardless
//! of detection order, making the comparison load-stable.
//!
//! `scripts/bench_fsim.sh` runs these benches and then the `bench_fsim`
//! binary, which emits machine-readable timings to `BENCH_fsim.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use warpstl_analyze::Scoap;
use warpstl_fault::{
    fault_simulate, fault_simulate_guided, fault_simulate_observed, fault_simulate_reference,
    FaultList, FaultSimConfig, FaultUniverse, SimBackend, SimGuide,
};
use warpstl_netlist::modules::ModuleKind;
use warpstl_netlist::{Netlist, PatternSeq};
use warpstl_obs::Recorder;

fn pseudorandom_patterns(width: usize, count: usize, mut seed: u64) -> PatternSeq {
    let mut p = PatternSeq::new(width);
    for cc in 0..count as u64 {
        let bits: Vec<bool> = (0..width)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed & 1 == 1
            })
            .collect();
        p.push_bits(cc, &bits);
    }
    p
}

// The `engine/*` benches pin the event backend so their names keep meaning
// what they measured before the kernel landed; `kernel/*` benches compare
// the backends explicitly.
fn non_drop() -> FaultSimConfig {
    FaultSimConfig {
        drop_detected: false,
        early_exit: false,
        backend: SimBackend::Event,
        ..FaultSimConfig::default()
    }
}

fn bench_module(c: &mut Criterion, name: &str, netlist: &Netlist, patterns: usize) {
    let pats = pseudorandom_patterns(
        netlist.inputs().width(),
        patterns,
        0xb5eed ^ patterns as u64,
    );
    let universe = FaultUniverse::enumerate(netlist);

    c.bench_function(&format!("fsim/{name}/reference"), |b| {
        b.iter_batched(
            || FaultList::new(&universe),
            |mut list| {
                fault_simulate_reference(
                    netlist,
                    &pats,
                    &mut list,
                    &FaultSimConfig {
                        threads: 1,
                        ..non_drop()
                    },
                )
            },
            BatchSize::SmallInput,
        );
    });

    // Oversubscribed thread counts resolve to the host core count; only
    // bench distinct effective configurations.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1usize, 2, 4, 8].into_iter().filter(|&t| t <= cores) {
        c.bench_function(&format!("fsim/{name}/engine/{threads}"), |b| {
            b.iter_batched(
                || FaultList::new(&universe),
                |mut list| {
                    fault_simulate(
                        netlist,
                        &pats,
                        &mut list,
                        &FaultSimConfig {
                            threads,
                            ..non_drop()
                        },
                    )
                },
                BatchSize::SmallInput,
            );
        });
    }

    // The observability guard: `engine/1` above is the Obs=None path (what
    // every caller gets without --trace-out); this is the same run with a
    // live recorder. The two must stay within noise of each other, and
    // `engine_observed` bounds the enabled cost.
    let recorder = Recorder::new();
    c.bench_function(&format!("fsim/{name}/engine_observed/1"), |b| {
        b.iter_batched(
            || FaultList::new(&universe),
            |mut list| {
                fault_simulate_observed(
                    netlist,
                    &pats,
                    &mut list,
                    &FaultSimConfig {
                        threads: 1,
                        ..non_drop()
                    },
                    Some(&recorder),
                )
            },
            BatchSize::SmallInput,
        );
    });

    // Dominance collapsing + hardest-first ordering vs the equivalence-only
    // baseline, both in drop mode (dominance only activates there): the
    // static-analysis payoff the `bench_fsim` binary quantifies.
    let dominance = universe.dominance(netlist);
    let keys = Scoap::compute(netlist).observability_keys();
    let drop1 = FaultSimConfig {
        threads: 1,
        backend: SimBackend::Event,
        ..FaultSimConfig::default()
    };
    c.bench_function(&format!("fsim/{name}/drop/baseline"), |b| {
        b.iter_batched(
            || FaultList::new(&universe),
            |mut list| fault_simulate(netlist, &pats, &mut list, &drop1),
            BatchSize::SmallInput,
        );
    });
    let guide = SimGuide {
        dominance: Some(&dominance),
        order_keys: Some(&keys),
        ..SimGuide::default()
    };
    c.bench_function(&format!("fsim/{name}/drop/guided"), |b| {
        b.iter_batched(
            || FaultList::new(&universe),
            |mut list| fault_simulate_guided(netlist, &pats, &mut list, &drop1, None, &guide),
            BatchSize::SmallInput,
        );
    });
}

/// The levelized SoA batch kernel against the event path, single thread in
/// non-drop mode at 512 patterns (so the 256-bit wide path sees full
/// blocks): `kernel/<module>/{event,kernel64,kernel256}`.
fn bench_kernel_module(c: &mut Criterion, name: &str, netlist: &Netlist, patterns: usize) {
    let pats = pseudorandom_patterns(netlist.inputs().width(), patterns, 0x5e7e ^ patterns as u64);
    let universe = FaultUniverse::enumerate(netlist);
    let backends = [
        ("event", SimBackend::Event),
        ("kernel64", SimBackend::Kernel64),
        ("kernel256", SimBackend::Kernel),
    ];
    for (bname, backend) in backends {
        let cfg = FaultSimConfig {
            drop_detected: false,
            early_exit: false,
            threads: 1,
            backend,
        };
        c.bench_function(&format!("kernel/{name}/{bname}"), |b| {
            b.iter_batched(
                || FaultList::new(&universe),
                |mut list| fault_simulate(netlist, &pats, &mut list, &cfg),
                BatchSize::SmallInput,
            );
        });
    }
}

/// The analyzer itself (SCOAP + all four lint passes) per bundled module —
/// the pipeline runs this once per compaction as its gate, so its cost must
/// stay negligible next to a fault simulation.
fn bench_analyze(c: &mut Criterion) {
    for kind in ModuleKind::ALL {
        let netlist = kind.build();
        c.bench_function(&format!("analyze/{}", kind.name()), |b| {
            b.iter(|| warpstl_analyze::analyze(&netlist));
        });
    }
}

fn bench_fsim(c: &mut Criterion) {
    bench_module(c, "du_256", &ModuleKind::DecoderUnit.build(), 256);
    bench_module(c, "sfu_128", &ModuleKind::Sfu.build(), 128);
    bench_kernel_module(c, "du_512", &ModuleKind::DecoderUnit.build(), 512);
    bench_kernel_module(c, "sfu_512", &ModuleKind::Sfu.build(), 512);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fsim, bench_analyze
}
criterion_main!(benches);
