//! # warpstl-bench
//!
//! Benchmark harness: regenerates the paper's Tables I–III and runs the
//! method-versus-baseline comparison and the ablations. Binaries in
//! `src/bin/` print the same rows the paper reports; Criterion benches time
//! the pipeline stages.
//!
//! ## Scale
//!
//! The paper's PTPs span 16 k–55 k instructions and its fault-injection
//! campaigns hundreds of thousands of faults, run for hours on a 32-core
//! workstation. All workloads here scale with the `WARPSTL_SCALE` divisor
//! (default 32): the generated PTPs are `1/scale` of the paper's sizes.
//! `WARPSTL_SCALE=1` reproduces paper-sized programs (slow). Compaction
//! *ratios* are size-independent for the regular PTPs, so the table shapes
//! hold at every scale.

use std::time::Instant;

use warpstl_core::{CompactionReport, Compactor, PtpFeatures};
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::{
    generate_cntrl, generate_imm, generate_mem, generate_rand_sp, generate_sfu_imm, generate_tpgen,
    CntrlConfig, ImmConfig, MemConfig, RandConfig, SfuImmConfig, TpgenConfig,
};
use warpstl_programs::Ptp;

/// Workload scaling: paper sizes divided by `divisor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// The divisor applied to the paper's PTP sizes.
    pub divisor: usize,
}

impl Scale {
    /// Reads `WARPSTL_SCALE` (default 32).
    #[must_use]
    pub fn from_env() -> Scale {
        let divisor = std::env::var("WARPSTL_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&d| d >= 1)
            .unwrap_or(32);
        Scale { divisor }
    }

    /// A fixed divisor.
    #[must_use]
    pub fn new(divisor: usize) -> Scale {
        assert!(divisor >= 1, "divisor must be positive");
        Scale { divisor }
    }

    fn div(&self, paper: usize, min: usize) -> usize {
        (paper / self.divisor).max(min)
    }

    /// The IMM generator config at this scale (paper: 32 736 instructions ≈
    /// 2 046 SBs).
    #[must_use]
    pub fn imm(&self) -> ImmConfig {
        ImmConfig {
            sb_count: self.div(2046, 8),
            ..ImmConfig::default()
        }
    }

    /// The MEM config (paper: 32 581 instructions ≈ 1 916 SBs).
    #[must_use]
    pub fn mem(&self) -> MemConfig {
        MemConfig {
            sb_count: self.div(1916, 8),
            ..MemConfig::default()
        }
    }

    /// The CNTRL config (paper: 336 instructions, 1 024 threads). CNTRL is
    /// small; only the thread count scales below divisor 8.
    #[must_use]
    pub fn cntrl(&self) -> CntrlConfig {
        CntrlConfig {
            regions: 16,
            loops: 2,
            threads: if self.divisor > 8 { 128 } else { 1024 },
            ..CntrlConfig::default()
        }
    }

    /// The TPGEN config (paper: 19 604 instructions from ATPG patterns).
    #[must_use]
    pub fn tpgen(&self) -> TpgenConfig {
        TpgenConfig {
            max_patterns: self.div(4000, 24),
            ..TpgenConfig::default()
        }
    }

    /// The RAND config (paper: 55 000 instructions ≈ 3 437 SBs).
    #[must_use]
    pub fn rand(&self) -> RandConfig {
        RandConfig {
            sb_count: self.div(3437, 8),
            ..RandConfig::default()
        }
    }

    /// The SFU_IMM config (paper: 16 856 instructions ≈ 5 618 patterns).
    #[must_use]
    pub fn sfu_imm(&self) -> SfuImmConfig {
        SfuImmConfig {
            max_patterns: self.div(5618, 24),
            ..SfuImmConfig::default()
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::new(32)
    }
}

/// The six PTPs of the evaluated STL, in the paper's compaction order.
#[derive(Debug, Clone)]
pub struct PaperStl {
    /// IMM, MEM, CNTRL (Decoder Unit, in dropping order).
    pub du: Vec<Ptp>,
    /// TPGEN, RAND (SP cores, in dropping order).
    pub sp: Vec<Ptp>,
    /// SFU_IMM.
    pub sfu: Vec<Ptp>,
}

impl PaperStl {
    /// Generates the full STL at `scale`.
    #[must_use]
    pub fn generate(scale: &Scale) -> PaperStl {
        PaperStl {
            du: vec![
                generate_imm(&scale.imm()),
                generate_mem(&scale.mem()),
                generate_cntrl(&scale.cntrl()),
            ],
            sp: vec![
                generate_tpgen(&scale.tpgen()),
                generate_rand_sp(&scale.rand()),
            ],
            sfu: vec![generate_sfu_imm(&scale.sfu_imm())],
        }
    }

    /// All PTPs in table order.
    #[must_use]
    pub fn all(&self) -> Vec<&Ptp> {
        self.du.iter().chain(&self.sp).chain(&self.sfu).collect()
    }
}

/// Table I: features of the evaluated PTPs, plus the combined rows.
pub struct Table1 {
    /// One row per PTP, in the paper's order.
    pub rows: Vec<PtpFeatures>,
    /// `IMM+MEM+CNTRL` combined coverage.
    pub du_combined_fc: f64,
    /// `TPGEN+RAND` combined coverage.
    pub sp_combined_fc: f64,
}

/// Computes Table I.
///
/// # Panics
///
/// Panics if a generated PTP fails to execute (generator bug).
#[must_use]
pub fn table1(stl: &PaperStl, compactor: &Compactor) -> Table1 {
    let du_ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let sp_ctx = compactor.context_for(ModuleKind::SpCore);
    let sfu_ctx = compactor.context_for(ModuleKind::Sfu);
    let ctx_of = |ptp: &Ptp| match ptp.target {
        ModuleKind::DecoderUnit => &du_ctx,
        ModuleKind::SpCore | ModuleKind::Fp32 => &sp_ctx,
        ModuleKind::Sfu => &sfu_ctx,
    };
    let rows = stl
        .all()
        .iter()
        .map(|ptp| compactor.features(ptp, ctx_of(ptp)).expect("PTP runs"))
        .collect();
    let du_refs: Vec<&Ptp> = stl.du.iter().collect();
    let sp_refs: Vec<&Ptp> = stl.sp.iter().collect();
    Table1 {
        rows,
        du_combined_fc: compactor
            .combined_coverage(&du_refs, &du_ctx)
            .expect("DU PTPs run"),
        sp_combined_fc: compactor
            .combined_coverage(&sp_refs, &sp_ctx)
            .expect("SP PTPs run"),
    }
}

/// The compaction results for one module group (Table II is the DU group,
/// Table III the functional-unit groups).
pub struct GroupCompaction {
    /// Per-PTP rows, in compaction order.
    pub rows: Vec<CompactionReport>,
    /// The compacted PTPs.
    pub compacted: Vec<Ptp>,
    /// Combined standalone FC of the original PTPs.
    pub combined_fc_before: f64,
    /// Combined standalone FC of the compacted PTPs.
    pub combined_fc_after: f64,
}

impl GroupCompaction {
    /// The combined row (e.g. `IMM+MEM+CNTRL`).
    #[must_use]
    pub fn combined_row(&self, name: &str) -> CompactionReport {
        let refs: Vec<&CompactionReport> = self.rows.iter().collect();
        CompactionReport::combined(name, &refs, self.combined_fc_before, self.combined_fc_after)
    }
}

/// Compacts a group of PTPs sharing a target module, in order, with the
/// shared dropping fault list — the paper's per-module flow.
///
/// # Panics
///
/// Panics if a PTP fails to execute.
#[must_use]
pub fn compact_group(ptps: &[Ptp], module: ModuleKind, compactor: &Compactor) -> GroupCompaction {
    let mut ctx = compactor.context_for(module);
    let mut rows = Vec::new();
    let mut compacted = Vec::new();
    for ptp in ptps {
        let out = compactor.compact(ptp, &mut ctx).expect("PTP runs");
        rows.push(out.report);
        compacted.push(out.compacted);
    }
    // The shared dropping list has, at this point, seen exactly the original
    // PTPs in order: its coverage *is* the combined before-FC.
    let combined_fc_before = ctx.coverage();
    let eval_ctx = compactor.context_for(module);
    let after_refs: Vec<&Ptp> = compacted.iter().collect();
    GroupCompaction {
        combined_fc_before,
        combined_fc_after: compactor
            .combined_coverage(&after_refs, &eval_ctx)
            .expect("compacted run"),
        rows,
        compacted,
    }
}

/// Formats a Table II/III-style block.
#[must_use]
pub fn format_compaction_table(title: &str, rows: &[CompactionReport]) -> String {
    let mut s = String::new();
    s.push_str(&format!("## {title}\n"));
    s.push_str(&format!(
        "{:<16} {:>8} {:>7} {:>12} {:>7} {:>7} {:>9}\n",
        "PTP", "instr", "(%)", "ccs", "(%)", "ΔFC", "time"
    ));
    for r in rows {
        s.push_str(&format!("{r}\n"));
    }
    s
}

/// Formats a Table I-style block.
#[must_use]
pub fn format_features_table(t: &Table1) -> String {
    let mut s = String::new();
    s.push_str("## Table I: main features of the evaluated PTPs\n");
    s.push_str(&format!(
        "{:<16} {:>9} {:>7} {:>12} {:>7}\n",
        "PTP", "size", "ARC%", "ccs", "FC%"
    ));
    for row in &t.rows {
        s.push_str(&format!("{row}\n"));
    }
    s.push_str(&format!(
        "{:<16} combined FC: {:.2}%\n",
        "IMM+MEM+CNTRL",
        t.du_combined_fc * 100.0
    ));
    s.push_str(&format!(
        "{:<16} combined FC: {:.2}%\n",
        "TPGEN+RAND",
        t.sp_combined_fc * 100.0
    ));
    s
}

/// Runs a closure, reporting its wall time (used by the bin targets).
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.2?}]", start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_divides_with_minimums() {
        let s = Scale::new(1000);
        assert_eq!(s.imm().sb_count, 8);
        let s = Scale::new(2);
        assert_eq!(s.imm().sb_count, 1023);
        assert_eq!(s.mem().sb_count, 958);
    }

    #[test]
    fn tiny_end_to_end_tables() {
        // A minimal smoke run of the whole harness path.
        let scale = Scale::new(512);
        let stl = PaperStl::generate(&scale);
        let compactor = Compactor::default();
        let t1 = table1(&stl, &compactor);
        assert_eq!(t1.rows.len(), 6);
        assert!(t1.du_combined_fc > 0.0);
        let text = format_features_table(&t1);
        assert!(text.contains("IMM"));
        assert!(text.contains("SFU_IMM"));

        let g = compact_group(&stl.du, ModuleKind::DecoderUnit, &compactor);
        assert_eq!(g.rows.len(), 3);
        let table = format_compaction_table("Table II", &g.rows);
        assert!(table.contains("CNTRL"));
        let combined = g.combined_row("IMM+MEM+CNTRL");
        assert_eq!(combined.fault_sim_runs, 3);
    }
}
