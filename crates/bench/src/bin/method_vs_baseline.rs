//! The paper's §IV complexity claim: the proposed method uses **one** logic
//! simulation and **one** fault simulation per PTP, while prior-art
//! iterative compaction needs one fault simulation per candidate — "usually
//! in the order of hundreds or thousands of them".
//!
//! Runs both compactors on the same (small) IMM PTP and reports simulation
//! counts and wall time. Scale the PTP with `WARPSTL_SCALE` (this
//! comparison defaults to a smaller program than the tables because the
//! baseline's cost grows quadratically).

use warpstl_bench::Scale;
use warpstl_core::baseline::IterativeCompactor;
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::{generate_imm, ImmConfig};

fn main() {
    let scale = Scale::from_env();
    // The baseline re-fault-simulates per SB: keep the workload modest but
    // large enough that compaction has something to remove.
    let sb_count = (512 / scale.divisor).max(24);
    eprintln!("[IMM with {sb_count} SBs]");
    let ptp = generate_imm(&ImmConfig {
        sb_count,
        ..ImmConfig::default()
    });

    let compactor = Compactor::default();
    let mut ctx = compactor.context_for(ModuleKind::DecoderUnit);
    let fast = compactor.compact(&ptp, &mut ctx).expect("method runs");

    let ctx2 = compactor.context_for(ModuleKind::DecoderUnit);
    let (_, slow) = IterativeCompactor::default()
        .compact(&ptp, &ctx2)
        .expect("baseline runs");

    println!(
        "## Method vs. baseline (same IMM PTP, {} instructions)",
        ptp.size()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "compactor", "logic sims", "fault sims", "instr out", "wall time"
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12.2?}",
        "proposed (1+1)",
        fast.report.logic_sim_runs,
        fast.report.fault_sim_runs,
        fast.report.compacted_size,
        fast.report.compaction_time
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12.2?}",
        "iterative baseline",
        slow.logic_sim_runs,
        slow.fault_sim_runs,
        slow.compacted_size,
        slow.compaction_time
    );
    let speedup =
        slow.compaction_time.as_secs_f64() / fast.report.compaction_time.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.1}x fewer wall-clock seconds");
}
