//! Extension experiment: Small-Block *reordering* (the technique of the
//! paper's ref. 17, rebuilt on this paper's single-fault-simulation data).
//! Reorders the IMM PTP so the most fault-productive SBs run first and
//! reports how much earlier the test reaches 50 / 90 / 100 % of its
//! achievable coverage.

use warpstl_bench::{timed, Scale};
use warpstl_core::{reorder_ptp, time_to_fraction, Compactor};
use warpstl_fault::{fault_simulate, FaultList, FaultSimConfig, FaultUniverse};
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::generate_imm;
use warpstl_programs::Ptp;

fn sim(
    ptp: &Ptp,
    compactor: &Compactor,
) -> (warpstl_gpu::RunResult, warpstl_fault::FaultSimReport) {
    let run = compactor.trace(ptp).expect("runs");
    let netlist = ModuleKind::DecoderUnit.build();
    let universe = FaultUniverse::enumerate(&netlist);
    let mut list = FaultList::new(&universe);
    let report = fault_simulate(
        &netlist,
        &run.patterns.du,
        &mut list,
        &FaultSimConfig::default(),
    );
    (run, report)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let ptp = generate_imm(&scale.imm());
    let compactor = Compactor::default();

    let (run, before) = timed("trace + fault-simulate original", || sim(&ptp, &compactor));
    let reorder = reorder_ptp(&ptp, &run.trace, &before).expect("straight-line IMM");
    let (_, after) = timed("trace + fault-simulate reordered", || {
        sim(&reorder.reordered, &compactor)
    });

    println!(
        "## Extension: Small-Block reordering (IMM, {} SBs)",
        reorder.sb_detections.len()
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "time to reach (ccs)", "original", "reordered"
    );
    for frac in [0.5, 0.9, 1.0] {
        println!(
            "{:<28} {:>12} {:>12}",
            format!("{:.0} % of achievable FC", frac * 100.0),
            time_to_fraction(&before, frac).unwrap_or(0),
            time_to_fraction(&after, frac).unwrap_or(0)
        );
    }
    println!(
        "total detections unchanged: {} == {}",
        before.detections().len(),
        after.detections().len()
    );
}
