//! Regenerates **Table II**: compaction results for the Decoder Unit test
//! programs (IMM → MEM → CNTRL with the shared dropping fault list), plus
//! the combined `IMM+MEM+CNTRL` row.
//!
//! Scale with `WARPSTL_SCALE` (default 32; 1 = paper-sized programs).

use warpstl_bench::{compact_group, format_compaction_table, timed, PaperStl, Scale};
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let stl = timed("generate STL", || PaperStl::generate(&scale));
    let compactor = Compactor::default();
    let group = timed("compact DU PTPs", || {
        compact_group(&stl.du, ModuleKind::DecoderUnit, &compactor)
    });
    let mut rows = group.rows.clone();
    rows.push(group.combined_row("IMM+MEM+CNTRL"));
    print!(
        "{}",
        format_compaction_table(
            "Table II: compaction results for the Decoder Unit PTPs",
            &rows
        )
    );
}
