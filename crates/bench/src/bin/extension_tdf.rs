//! Extension experiment: the paper's future work includes "targeting other
//! fault models". The compaction pipeline is fault-model-agnostic — the
//! labeling stage only consumes "detections per clock cycle" — so this
//! binary compacts the IMM PTP against **transition-delay faults** of the
//! Decoder Unit: one traced run, one TDF simulation, the same labeling and
//! reduction stages.

use warpstl_bench::{timed, Scale};
use warpstl_core::{label_instructions, reduce_ptp, Compactor};
use warpstl_fault::tdf::{tdf_simulate, TdfList};
use warpstl_fault::FaultSimConfig;
use warpstl_netlist::modules::ModuleKind;
use warpstl_programs::generators::generate_imm;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let ptp = generate_imm(&scale.imm());
    let compactor = Compactor::default();
    let netlist = ModuleKind::DecoderUnit.build();

    // Stage 2: one logic simulation with the hardware monitor.
    let run = timed("trace", || compactor.trace(&ptp).expect("runs"));

    // Stage 3 under the transition-delay model: one TDF simulation.
    let mut list = TdfList::enumerate(&netlist);
    let report = timed("TDF simulation", || {
        tdf_simulate(
            &netlist,
            &run.patterns.du,
            &mut list,
            &FaultSimConfig::default(),
        )
    });
    let fc_before = list.coverage();

    // Stages 3b-5: unchanged labeling and reduction.
    let labels = label_instructions(ptp.program.len(), &run.trace, &report);
    let reduction = reduce_ptp(&ptp, &labels);
    let mut compacted = ptp.clone();
    compacted.program = reduction.program;
    compacted.global_init = reduction.global_init;

    // Evaluate the compacted PTP's standalone TDF coverage.
    let comp_run = compactor.trace(&compacted).expect("compacted runs");
    let mut comp_list = TdfList::enumerate(&netlist);
    tdf_simulate(
        &netlist,
        &comp_run.patterns.du,
        &mut comp_list,
        &FaultSimConfig::default(),
    );

    println!("## Extension: compaction under the transition-delay fault model");
    println!("target: decoder_unit, {} transition faults", list.len());
    println!(
        "size:     {} -> {} instructions ({:.2} % reduction)",
        ptp.size(),
        compacted.size(),
        100.0 * (1.0 - compacted.size() as f64 / ptp.size() as f64)
    );
    println!("duration: {} -> {} ccs", run.cycles, comp_run.cycles);
    println!(
        "TDF coverage: {:.2}% -> {:.2}% (Δ {:+.2} pp)",
        fc_before * 100.0,
        comp_list.coverage() * 100.0,
        (comp_list.coverage() - fc_before) * 100.0
    );
    println!(
        "SBs removed: {}/{}; essential instructions: {}",
        reduction.removed_sbs,
        reduction.total_sbs,
        labels.essential_count()
    );
}
