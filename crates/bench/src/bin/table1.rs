//! Regenerates **Table I**: main features of the evaluated PTPs (size,
//! ARC %, duration in ccs, standalone FC %), plus the combined rows.
//!
//! Scale with `WARPSTL_SCALE` (default 32; 1 = paper-sized programs).

use warpstl_bench::{format_features_table, table1, timed, PaperStl, Scale};
use warpstl_core::Compactor;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let stl = timed("generate STL", || PaperStl::generate(&scale));
    let compactor = Compactor::default();
    let t1 = timed("evaluate features", || table1(&stl, &compactor));
    print!("{}", format_features_table(&t1));
}
