//! Regenerates **Table III**: compaction results for the functional-unit
//! test programs — TPGEN → RAND on the SP cores (shared dropping list; the
//! RAND row's standalone-FC drop is the paper's fault-dropping effect) and
//! SFU_IMM on the SFUs with the patterns applied in reverse order during
//! fault simulation, as in the paper.
//!
//! Scale with `WARPSTL_SCALE` (default 32; 1 = paper-sized programs).

use warpstl_bench::{compact_group, format_compaction_table, timed, PaperStl, Scale};
use warpstl_core::Compactor;
use warpstl_netlist::modules::ModuleKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scale: 1/{} of paper sizes]", scale.divisor);
    let stl = timed("generate STL", || PaperStl::generate(&scale));

    let compactor = Compactor::default();
    let sp = timed("compact SP PTPs", || {
        compact_group(&stl.sp, ModuleKind::SpCore, &compactor)
    });

    let sfu_compactor = Compactor {
        reverse_patterns: true,
        ..Compactor::default()
    };
    let sfu = timed("compact SFU PTPs", || {
        compact_group(&stl.sfu, ModuleKind::Sfu, &sfu_compactor)
    });

    let mut rows = sp.rows.clone();
    rows.push(sp.combined_row("TPGEN+RAND"));
    rows.extend(sfu.rows.clone());
    print!(
        "{}",
        format_compaction_table(
            "Table III: compaction results for the functional-unit PTPs",
            &rows
        )
    );
}
